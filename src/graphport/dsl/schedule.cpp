#include "graphport/dsl/schedule.hpp"

#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/strings.hpp"

namespace graphport {
namespace dsl {

namespace {

unsigned
fuseIndex(unsigned fuse)
{
    switch (fuse) {
      case 1:
        return 0;
      case 2:
        return 1;
      case 4:
        return 2;
      default:
        panic("Schedule: invalid fuse count " + std::to_string(fuse));
    }
}

unsigned
fuseFromIndex(unsigned idx)
{
    static const unsigned counts[3] = {1, 2, 4};
    panicIf(idx >= 3, "Schedule: invalid fuse index");
    return counts[idx];
}

} // namespace

Knob
knobOf(Opt opt)
{
    panicIf(static_cast<unsigned>(opt) >= kNumOpts,
            "knobOf: invalid Opt");
    return static_cast<Knob>(static_cast<unsigned>(opt));
}

std::string
knobName(Knob knob)
{
    switch (knob) {
      case Knob::Pull:
        return "pull";
      case Knob::Fuse2:
        return "fuse2";
      case Knob::Fuse4:
        return "fuse4";
      default:
        panicIf(static_cast<unsigned>(knob) >= kNumOpts,
                "knobName: invalid Knob");
        return optName(static_cast<Opt>(knob));
    }
}

unsigned
Schedule::fgChunk() const
{
    switch (fg) {
      case FgMode::Off:
        return 0;
      case FgMode::Fg1:
        return 1;
      case FgMode::Fg8:
        return 8;
    }
    panic("Schedule::fgChunk: invalid FgMode");
}

bool
Schedule::isBaseline() const
{
    return *this == Schedule{};
}

bool
Schedule::has(Knob knob) const
{
    switch (knob) {
      case Knob::CoopCv:
        return coopCv;
      case Knob::Wg:
        return wg;
      case Knob::Sg:
        return sg;
      case Knob::Fg1:
        return fg == FgMode::Fg1;
      case Knob::Fg8:
        return fg == FgMode::Fg8;
      case Knob::OiterGb:
        return oitergb;
      case Knob::Sz256:
        return sz256;
      case Knob::Pull:
        return dir == Direction::Pull;
      case Knob::Fuse2:
        return fuse == 2;
      case Knob::Fuse4:
        return fuse == 4;
      default:
        panic("Schedule::has: invalid Knob");
    }
}

Schedule
Schedule::with(Knob knob) const
{
    Schedule s = *this;
    switch (knob) {
      case Knob::CoopCv:
        s.coopCv = true;
        break;
      case Knob::Wg:
        s.wg = true;
        break;
      case Knob::Sg:
        s.sg = true;
        break;
      case Knob::Fg1:
        s.fg = FgMode::Fg1;
        break;
      case Knob::Fg8:
        s.fg = FgMode::Fg8;
        break;
      case Knob::OiterGb:
        s.oitergb = true;
        break;
      case Knob::Sz256:
        s.sz256 = true;
        break;
      case Knob::Pull:
        s.dir = Direction::Pull;
        break;
      case Knob::Fuse2:
        s.fuse = 2;
        break;
      case Knob::Fuse4:
        s.fuse = 4;
        break;
      default:
        panic("Schedule::with: invalid Knob");
    }
    return s;
}

Schedule
Schedule::without(Knob knob) const
{
    Schedule s = *this;
    switch (knob) {
      case Knob::CoopCv:
        s.coopCv = false;
        break;
      case Knob::Wg:
        s.wg = false;
        break;
      case Knob::Sg:
        s.sg = false;
        break;
      case Knob::Fg1:
      case Knob::Fg8:
        s.fg = FgMode::Off;
        break;
      case Knob::OiterGb:
        s.oitergb = false;
        break;
      case Knob::Sz256:
        s.sz256 = false;
        break;
      case Knob::Pull:
        s.dir = Direction::Push;
        break;
      case Knob::Fuse2:
      case Knob::Fuse4:
        s.fuse = 1;
        break;
      default:
        panic("Schedule::without: invalid Knob");
    }
    return s;
}

std::string
Schedule::label() const
{
    std::string out = loadBalance().label();
    if (isLegacy())
        return out;
    if (out == "baseline")
        out.clear();
    const auto append = [&](const std::string &s) {
        if (!out.empty())
            out += ", ";
        out += s;
    };
    if (dir == Direction::Pull)
        append("pull");
    if (fuse != 1)
        append("fuse" + std::to_string(fuse));
    return out;
}

std::string
Schedule::spec() const
{
    std::string out =
        "dir=" + std::string(dir == Direction::Pull ? "pull" : "push");
    std::string lb;
    const auto scheme = [&](const std::string &s) {
        if (!lb.empty())
            lb += "+";
        lb += s;
    };
    if (wg)
        scheme("wg");
    if (sg)
        scheme("sg");
    if (fg == FgMode::Fg1)
        scheme("fg1");
    if (fg == FgMode::Fg8)
        scheme("fg8");
    out += ",lb=" + (lb.empty() ? std::string("serial") : lb);
    if (coopCv)
        out += ",coop=cv";
    if (oitergb)
        out += ",oiter=gb";
    out += ",wgsize=" + std::to_string(workgroupSize());
    if (fuse != 1)
        out += ",fuse=" + std::to_string(fuse);
    return out;
}

bool
Schedule::tryParseSpec(const std::string &text, Schedule *out,
                       std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    Schedule s;
    bool seen[6] = {};
    enum { kDir = 0, kLb, kCoop, kOiter, kWgSize, kFuse };
    for (const std::string &rawEntry : split(text, ',')) {
        const std::string entry = trim(rawEntry);
        if (entry.empty())
            return fail("empty schedule entry");
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos)
            return fail("entry '" + entry +
                        "' is not of the form key=value");
        const std::string key = trim(entry.substr(0, eq));
        const std::string value = trim(entry.substr(eq + 1));
        const auto once = [&](int k) {
            if (seen[k])
                return false;
            seen[k] = true;
            return true;
        };
        const auto badValue = [&](const char *expects) {
            return fail("schedule key '" + key + "' expects " +
                        expects + ", got '" + value + "'");
        };
        if (key == "dir") {
            if (!once(kDir))
                return fail("duplicate schedule key 'dir'");
            if (value == "push")
                s.dir = Direction::Push;
            else if (value == "pull")
                s.dir = Direction::Pull;
            else
                return badValue("push|pull");
        } else if (key == "lb") {
            if (!once(kLb))
                return fail("duplicate schedule key 'lb'");
            s.wg = s.sg = false;
            s.fg = FgMode::Off;
            bool serial = false;
            const std::vector<std::string> schemes =
                split(value, '+');
            for (const std::string &rawScheme : schemes) {
                const std::string sch = trim(rawScheme);
                if (sch == "serial")
                    serial = true;
                else if (sch == "wg" && !s.wg)
                    s.wg = true;
                else if (sch == "sg" && !s.sg)
                    s.sg = true;
                else if ((sch == "fg1" || sch == "fg") &&
                         s.fg == FgMode::Off)
                    s.fg = FgMode::Fg1;
                else if (sch == "fg8" && s.fg == FgMode::Off)
                    s.fg = FgMode::Fg8;
                else
                    return badValue(
                        "serial or a +-joined subset of wg|sg|fg1|fg8");
            }
            if (serial && (schemes.size() != 1 || s.wg || s.sg ||
                           s.fg != FgMode::Off))
                return badValue(
                    "serial or a +-joined subset of wg|sg|fg1|fg8");
        } else if (key == "coop") {
            if (!once(kCoop))
                return fail("duplicate schedule key 'coop'");
            if (value == "cv")
                s.coopCv = true;
            else if (value == "off")
                s.coopCv = false;
            else
                return badValue("cv|off");
        } else if (key == "oiter") {
            if (!once(kOiter))
                return fail("duplicate schedule key 'oiter'");
            if (value == "gb")
                s.oitergb = true;
            else if (value == "host" || value == "off")
                s.oitergb = false;
            else
                return badValue("gb|host");
        } else if (key == "wgsize") {
            if (!once(kWgSize))
                return fail("duplicate schedule key 'wgsize'");
            if (value == "128")
                s.sz256 = false;
            else if (value == "256")
                s.sz256 = true;
            else
                return badValue("128|256");
        } else if (key == "fuse") {
            if (!once(kFuse))
                return fail("duplicate schedule key 'fuse'");
            if (value == "1")
                s.fuse = 1;
            else if (value == "2")
                s.fuse = 2;
            else if (value == "4")
                s.fuse = 4;
            else
                return badValue("1|2|4");
        } else {
            return fail("unknown schedule key '" + key + "'");
        }
    }
    *out = s;
    if (error)
        error->clear();
    return true;
}

Schedule
Schedule::parseSpec(const std::string &text)
{
    Schedule s;
    std::string error;
    const bool ok = tryParseSpec(text, &s, &error);
    fatalIf(!ok, "bad schedule spec '" + text + "': " + error);
    return s;
}

unsigned
Schedule::encode() const
{
    const unsigned legacyPart = loadBalance().encode();
    const unsigned block =
        (dir == Direction::Pull ? 1u : 0u) + 2u * fuseIndex(fuse);
    return legacyPart + kNumConfigs * block;
}

Schedule
Schedule::decode(unsigned id)
{
    fatalIf(id >= kNumSchedules, "Schedule::decode id out of range");
    Schedule s = fromLegacy(OptConfig::decode(id % kNumConfigs));
    const unsigned block = id / kNumConfigs;
    s.dir = (block & 1u) ? Direction::Pull : Direction::Push;
    s.fuse = fuseFromIndex(block / 2u);
    return s;
}

Schedule
Schedule::fromLegacy(const OptConfig &config)
{
    Schedule s;
    s.coopCv = config.coopCv;
    s.wg = config.wg;
    s.sg = config.sg;
    s.fg = config.fg;
    s.oitergb = config.oitergb;
    s.sz256 = config.sz256;
    return s;
}

OptConfig
Schedule::toLegacy() const
{
    fatalIf(!isLegacy(),
            "Schedule::toLegacy: schedule '" + spec() +
                "' uses extended axes");
    return loadBalance();
}

OptConfig
Schedule::loadBalance() const
{
    OptConfig c;
    c.coopCv = coopCv;
    c.wg = wg;
    c.sg = sg;
    c.fg = fg;
    c.oitergb = oitergb;
    c.sz256 = sz256;
    return c;
}

ScheduleSpace
ScheduleSpace::byName(const std::string &name)
{
    ScheduleSpace space;
    fatalIf(!tryByName(name, &space),
            "unknown schedule space '" + name +
                "' (legacy | extended)");
    return space;
}

bool
ScheduleSpace::tryByName(const std::string &name, ScheduleSpace *out)
{
    if (name == "legacy")
        *out = legacy();
    else if (name == "extended")
        *out = extended();
    else
        return false;
    return true;
}

unsigned
ScheduleSpace::size() const
{
    return isLegacy() ? kNumConfigs : kNumSchedules;
}

std::string
ScheduleSpace::name() const
{
    return isLegacy() ? "legacy" : "extended";
}

std::string
ScheduleSpace::versionString() const
{
    return name() + "/v1 (" + std::to_string(size()) + " schedules)";
}

std::uint64_t
ScheduleSpace::identityTag() const
{
    // Legacy contributes nothing so every pre-existing artifact stamp
    // (computed before the space existed) stays valid.
    if (isLegacy())
        return 0;
    return hashStr("graphport-schedule-space-extended-v1");
}

const std::vector<Schedule> &
ScheduleSpace::all() const
{
    static const std::vector<Schedule> legacyAll = [] {
        std::vector<Schedule> out;
        out.reserve(kNumConfigs);
        for (unsigned id = 0; id < kNumConfigs; ++id)
            out.push_back(Schedule::decode(id));
        return out;
    }();
    static const std::vector<Schedule> extendedAll = [] {
        std::vector<Schedule> out;
        out.reserve(kNumSchedules);
        for (unsigned id = 0; id < kNumSchedules; ++id)
            out.push_back(Schedule::decode(id));
        return out;
    }();
    return isLegacy() ? legacyAll : extendedAll;
}

std::vector<Schedule>
ScheduleSpace::allWith(Knob knob) const
{
    std::vector<Schedule> out;
    for (const Schedule &s : all()) {
        if (s.has(knob))
            out.push_back(s);
    }
    return out;
}

const std::vector<Knob> &
ScheduleSpace::knobs() const
{
    static const std::vector<Knob> legacyKnobs = [] {
        std::vector<Knob> out;
        for (Opt opt : allOpts())
            out.push_back(knobOf(opt));
        return out;
    }();
    static const std::vector<Knob> extendedKnobs = [] {
        std::vector<Knob> out = legacyKnobs;
        out.push_back(Knob::Pull);
        out.push_back(Knob::Fuse2);
        out.push_back(Knob::Fuse4);
        return out;
    }();
    return isLegacy() ? legacyKnobs : extendedKnobs;
}

} // namespace dsl
} // namespace graphport
