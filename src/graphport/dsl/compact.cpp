#include "graphport/dsl/compact.hpp"

#include <cstring>
#include <unordered_map>

#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"

namespace graphport {
namespace dsl {

namespace {

/** splitmix64-fold one 64-bit word into a running hash. */
inline std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    return splitmix64(h ^ v);
}

/** Bit pattern of a double, so -0.0 != 0.0 hashes consistently with
 *  the bitwise equality used by sameWorkload. */
inline std::uint64_t
bitsOf(double v)
{
    std::uint64_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

} // namespace

std::uint64_t
launchSignature(const KernelLaunch &l)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    h = mix(h, l.items);
    h = mix(h, l.edges);
    for (std::uint64_t b : l.hist.buckets)
        h = mix(h, b);
    h = mix(h, l.graphNodes);
    h = mix(h, l.contendedPushes);
    h = mix(h, l.scatteredRmw);
    h = mix(h, l.flatReads);
    h = mix(h, l.flatWrites);
    h = mix(h, bitsOf(l.computePerItem));
    h = mix(h, bitsOf(l.computePerEdge));
    h = mix(h, bitsOf(l.divergenceSpread));
    h = mix(h, static_cast<std::uint64_t>(l.barrierStride));
    h = mix(h, (static_cast<std::uint64_t>(l.hasNeighborLoop) << 0) |
                   (static_cast<std::uint64_t>(l.randomAccess) << 1) |
                   (static_cast<std::uint64_t>(l.hostSyncAfter) << 2) |
                   (static_cast<std::uint64_t>(l.gratuitousBarriers)
                    << 3));
    return h;
}

bool
sameWorkload(const KernelLaunch &a, const KernelLaunch &b)
{
    return a.items == b.items && a.edges == b.edges &&
           a.graphNodes == b.graphNodes &&
           a.hist.buckets == b.hist.buckets &&
           a.contendedPushes == b.contendedPushes &&
           a.scatteredRmw == b.scatteredRmw &&
           a.flatReads == b.flatReads &&
           a.flatWrites == b.flatWrites &&
           bitsOf(a.computePerItem) == bitsOf(b.computePerItem) &&
           bitsOf(a.computePerEdge) == bitsOf(b.computePerEdge) &&
           bitsOf(a.divergenceSpread) == bitsOf(b.divergenceSpread) &&
           a.barrierStride == b.barrierStride &&
           a.hasNeighborLoop == b.hasNeighborLoop &&
           a.randomAccess == b.randomAccess &&
           a.hostSyncAfter == b.hostSyncAfter &&
           a.gratuitousBarriers == b.gratuitousBarriers;
}

double
CompactTrace::compactionRatio() const
{
    if (representative.empty())
        return 1.0;
    return static_cast<double>(launchCount()) /
           static_cast<double>(uniqueCount());
}

void
CompactTrace::validate() const
{
    panicIf(trace == nullptr, "CompactTrace: null trace");
    panicIf(groupOf.size() != trace->launches.size(),
            "CompactTrace: groupOf size mismatch");
    panicIf(representative.size() != multiplicity.size(),
            "CompactTrace: group count mismatch");
    std::vector<std::size_t> counts(representative.size(), 0);
    for (std::size_t g : groupOf) {
        panicIf(g >= representative.size(),
                "CompactTrace: group index out of range");
        ++counts[g];
    }
    for (std::size_t g = 0; g < counts.size(); ++g) {
        panicIf(counts[g] != multiplicity[g],
                "CompactTrace: multiplicity mismatch");
        panicIf(representative[g] >= trace->launches.size(),
                "CompactTrace: representative out of range");
        panicIf(groupOf[representative[g]] != g,
                "CompactTrace: representative not in its group");
    }
}

CompactTrace
compactTrace(const AppTrace &trace)
{
    CompactTrace ct;
    ct.trace = &trace;
    ct.groupOf.resize(trace.launches.size());
    // signature -> group indices with that signature (collision chain).
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> bySig;
    bySig.reserve(trace.launches.size());
    for (std::size_t i = 0; i < trace.launches.size(); ++i) {
        const KernelLaunch &l = trace.launches[i];
        const std::uint64_t sig = launchSignature(l);
        std::vector<std::size_t> &chain = bySig[sig];
        std::size_t group = ct.representative.size();
        for (std::size_t g : chain) {
            if (sameWorkload(trace.launches[ct.representative[g]],
                             l)) {
                group = g;
                break;
            }
        }
        if (group == ct.representative.size()) {
            ct.representative.push_back(i);
            ct.multiplicity.push_back(0);
            chain.push_back(group);
        }
        ct.groupOf[i] = group;
        ++ct.multiplicity[group];
    }
    return ct;
}

} // namespace dsl
} // namespace graphport
