#include "graphport/dsl/plan.hpp"

#include <cmath>

#include "graphport/support/error.hpp"

namespace graphport {
namespace dsl {

SchemePartition
partitionSchemes(const OptConfig &config, unsigned sg_size,
                 unsigned wg_size)
{
    panicIf(sg_size == 0, "partitionSchemes: subgroup size 0");
    panicIf(wg_size == 0, "partitionSchemes: workgroup size 0");

    SchemePartition part;
    part.sgRequested = config.sg;
    part.wgRequested = config.wg;
    part.usesSg = config.sg && sg_size > 1;
    part.usesWg = config.wg;
    if (config.fg == FgMode::Fg1)
        part.fgChunk = 1;
    else if (config.fg == FgMode::Fg8)
        part.fgChunk = 8;

    for (unsigned b = 0; b < kDegreeBuckets; ++b) {
        // Lower bound of the bucket's degree range.
        const double lo = (b == 0) ? 0.0
                                   : std::pow(2.0,
                                              static_cast<double>(b));
        // The wg scheme only pays off for very-high-degree nodes; the
        // compiler routes degrees below 4x the workgroup size to the
        // cheaper sg/fg schemes.
        if (part.usesWg && lo >= 4.0 * static_cast<double>(wg_size)) {
            part.bucketScheme[b] = Scheme::Wg;
        } else if (part.usesSg && lo >= static_cast<double>(sg_size)) {
            part.bucketScheme[b] = Scheme::Sg;
        } else if (part.fgChunk != 0) {
            part.bucketScheme[b] = Scheme::Fg;
        } else {
            part.bucketScheme[b] = Scheme::Serial;
        }
    }
    return part;
}

SchemePartition
partitionSchemes(const Schedule &schedule, unsigned sg_size,
                 unsigned wg_size)
{
    return partitionSchemes(schedule.loadBalance(), sg_size, wg_size);
}

} // namespace dsl
} // namespace graphport
