/**
 * @file
 * The optimisation space of the study (paper Section V).
 *
 * Five independent binary optimisations plus a ternary nested-parallelism
 * fine-grained mode:
 *
 *  - coop-cv:  cooperative conversion — combine worklist atomic RMW
 *              pushes within a subgroup into a single push.
 *  - wg:       nested parallelism — redistribute high-degree nodes over
 *              the whole workgroup.
 *  - sg:       nested parallelism — redistribute medium-degree nodes
 *              over the subgroup.
 *  - fg:       nested parallelism — linearise remaining edges across
 *              threads, processing 1 (fg1) or 8 (fg8) edges per thread
 *              per round.
 *  - oitergb:  iteration outlining — replace the host fixpoint loop's
 *              kernel relaunches with an on-device global barrier.
 *  - sz256:    workgroup size 256 instead of the default 128.
 *
 * 2^5 x 3 = 96 configurations, i.e. 95 non-baseline combinations plus
 * the all-off baseline — exactly the paper's optimisation space.
 */
#ifndef GRAPHPORT_DSL_OPTCONFIG_HPP
#define GRAPHPORT_DSL_OPTCONFIG_HPP

#include <string>
#include <vector>

namespace graphport {
namespace dsl {

/** Fine-grained nested-parallelism mode. */
enum class FgMode { Off = 0, Fg1 = 1, Fg8 = 2 };

/**
 * The individual optimisations Algorithm 1 reasons about. fg1 and fg8
 * are recorded as mutually exclusive binary optimisations, following
 * the paper (Section III).
 */
enum class Opt
{
    CoopCv = 0,
    Wg,
    Sg,
    Fg1,
    Fg8,
    OiterGb,
    Sz256,
    NumOpts,
};

/** Number of distinct Opt values. */
constexpr unsigned kNumOpts = static_cast<unsigned>(Opt::NumOpts);

/** Paper-style name of an optimisation ("coop-cv", "fg8", ...). */
std::string optName(Opt opt);

/** All individual optimisations in a fixed order. */
const std::vector<Opt> &allOpts();

/**
 * One point in the optimisation space: a set of enabled optimisations.
 */
struct OptConfig
{
    bool coopCv = false;
    bool wg = false;
    bool sg = false;
    FgMode fg = FgMode::Off;
    bool oitergb = false;
    bool sz256 = false;

    /** Workgroup size implied by sz256. */
    unsigned workgroupSize() const { return sz256 ? 256u : 128u; }

    /** True when no optimisation is enabled. */
    bool isBaseline() const;

    /** Whether individual optimisation @p opt is enabled. */
    bool has(Opt opt) const;

    /** Return a copy with @p opt enabled. */
    OptConfig with(Opt opt) const;

    /**
     * Return a copy with @p opt disabled (the "mirror" setting of
     * Algorithm 1 line 12). Disabling Fg1/Fg8 sets fg = Off.
     */
    OptConfig without(Opt opt) const;

    /**
     * Paper-style label: comma-separated enabled optimisation names,
     * or "baseline" when empty. E.g. "fg8, sg, oitergb".
     */
    std::string label() const;

    /** Compact id in [0, 96). The baseline has id 0. */
    unsigned encode() const;

    /** Inverse of encode(). */
    static OptConfig decode(unsigned id);

    /** The all-off configuration. */
    static OptConfig baseline() { return {}; }

    bool operator==(const OptConfig &other) const = default;
};

/** Total number of configurations (including the baseline). */
constexpr unsigned kNumConfigs = 96;

/** All 96 configurations, ordered by encode() id. */
const std::vector<OptConfig> &allConfigs();

/**
 * All configurations in which @p opt is enabled (Algorithm 1's
 * ALL_OPT_SETTINGS). For Fg1/Fg8 this means fg == Fg1/Fg8
 * respectively.
 */
std::vector<OptConfig> allConfigsWith(Opt opt);

} // namespace dsl
} // namespace graphport

#endif // GRAPHPORT_DSL_OPTCONFIG_HPP
