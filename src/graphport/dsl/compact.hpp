/**
 * @file
 * Trace compaction: collapse a trace's kernel launches into groups of
 * identical workloads.
 *
 * Fixpoint applications relaunch the same kernels every host
 * iteration, and many of those launches describe byte-identical work —
 * a road-network BFS runs hundreds of near-empty frontier expansions
 * whose items/histogram/atomic counts repeat exactly. The cost engine
 * prices a launch purely from its workload fields, so identical
 * workloads always cost the same on every (chip, configuration) pair.
 *
 * CompactTrace records, for one AppTrace, which launches share a
 * workload. The engine then prices each distinct workload once per
 * (chip, configuration) and replays the per-launch sum in original
 * order, which keeps totals *bit-identical* to pricing the full trace
 * (same additions, same order — see CostEngine::appCost overloads).
 *
 * Grouping is by full field equality (sameWorkload); the 64-bit
 * LaunchSignature hash only buckets candidates, so hash collisions
 * cannot merge distinct workloads.
 */
#ifndef GRAPHPORT_DSL_COMPACT_HPP
#define GRAPHPORT_DSL_COMPACT_HPP

#include <cstdint>
#include <cstddef>
#include <vector>

#include "graphport/dsl/trace.hpp"

namespace graphport {
namespace dsl {

/**
 * Deterministic 64-bit hash over the workload fields of @p launch —
 * every field the cost engine prices (items, edges, histogram,
 * atomics, flat traffic, compute weights, flags), but not the kernel
 * name or host iteration index, which never affect cost.
 */
std::uint64_t launchSignature(const KernelLaunch &launch);

/**
 * Whether two launches describe the same priced workload (field-wise
 * equality over everything launchSignature hashes).
 */
bool sameWorkload(const KernelLaunch &a, const KernelLaunch &b);

/**
 * The launch-grouping of one trace. Holds a pointer to the source
 * trace, which must outlive the CompactTrace.
 */
struct CompactTrace
{
    /** The trace this grouping describes. */
    const AppTrace *trace = nullptr;

    /**
     * Launch index (into trace->launches) of each group's
     * representative, in first-appearance order.
     */
    std::vector<std::size_t> representative;

    /** Group index of every launch, parallel to trace->launches. */
    std::vector<std::size_t> groupOf;

    /** Number of launches in each group. */
    std::vector<std::size_t> multiplicity;

    /** Number of distinct workloads. */
    std::size_t uniqueCount() const { return representative.size(); }

    /** Total launches in the source trace. */
    std::size_t launchCount() const { return groupOf.size(); }

    /** launches / distinct workloads (1.0 when nothing repeats). */
    double compactionRatio() const;

    /** Check internal consistency; throws PanicError on violation. */
    void validate() const;
};

/** Group @p trace's launches by workload. */
CompactTrace compactTrace(const AppTrace &trace);

} // namespace dsl
} // namespace graphport

#endif // GRAPHPORT_DSL_COMPACT_HPP
