/**
 * @file
 * TraceRecorder: the device-runtime facade graph applications program
 * against.
 *
 * An application performs its real computation in host C++ (so outputs
 * can be validated against the reference oracles) while describing each
 * kernel launch it *would* have issued on a GPU through this recorder.
 * The recorder derives degree histograms from the graph and frontier,
 * and assembles the AppTrace the simulator prices.
 */
#ifndef GRAPHPORT_DSL_RECORDER_HPP
#define GRAPHPORT_DSL_RECORDER_HPP

#include <span>
#include <string>
#include <vector>

#include "graphport/dsl/trace.hpp"
#include "graphport/graph/csr.hpp"

namespace graphport {
namespace dsl {

/** Kernel-launch parameters shared by all recording helpers. */
struct KernelParams
{
    std::string name;
    /** Contended worklist-tail pushes (coop-cv combinable). */
    std::uint64_t contendedPushes = 0;
    /** Scattered atomic RMW ops (atomic-min updates etc.). */
    std::uint64_t scatteredRmw = 0;
    /** Per-launch flat global reads beyond adjacency traffic. */
    std::uint64_t flatReads = 0;
    /** Per-launch flat global writes. */
    std::uint64_t flatWrites = 0;
    /** Scalar work units per item. */
    double computePerItem = 1.0;
    /** Scalar work units per inner iteration. */
    double computePerEdge = 1.0;
    /** Host reads a convergence flag after this launch. */
    bool hostSyncAfter = false;
};

/**
 * Records the kernel launches of one application execution.
 */
class TraceRecorder
{
  public:
    /**
     * @param app    Application name.
     * @param g      Input graph (kept by reference; must outlive the
     *               recorder).
     * @param input  Input name recorded in the trace.
     */
    TraceRecorder(std::string app, const graph::Csr &g,
                  std::string input);

    /**
     * Mark the start of a host fixpoint iteration. Kernels recorded
     * afterwards belong to this iteration.
     */
    void beginIteration();

    /**
     * Record a kernel that iterates over @p frontier nodes and walks
     * each node's adjacency list.
     */
    void neighborKernel(const KernelParams &params,
                        std::span<const graph::NodeId> frontier);

    /**
     * Record a kernel that iterates over all nodes and walks each
     * node's adjacency list (topology-driven operators).
     */
    void neighborKernelAllNodes(const KernelParams &params);

    /**
     * Record a topology-driven kernel that launches one thread per
     * node but only walks the adjacency lists of @p active nodes;
     * the remaining threads contribute zero-length inner loops. This
     * captures the SIMD inefficiency of topology-driven operators on
     * sparse frontiers.
     */
    void neighborKernelSparse(const KernelParams &params,
                              std::span<const graph::NodeId> active);

    /**
     * Record a kernel whose per-item inner-loop sizes are given
     * explicitly (e.g. triangle counting, whose inner work is an
     * adjacency intersection rather than a plain neighbour walk).
     */
    void innerSizeKernel(const KernelParams &params,
                         std::span<const std::uint64_t> inner_sizes);

    /**
     * Record a kernel with @p items parallel items and no inner loop
     * (initialisation sweeps, pointer jumping, rank normalisation...).
     *
     * @param streaming When true, per-item accesses are contiguous.
     */
    void flatKernel(const KernelParams &params, std::uint64_t items,
                    bool streaming = true);

    /** Number of launches recorded so far. */
    std::size_t launchCount() const { return trace_.launches.size(); }

    /**
     * Finalise and return the trace. The recorder must not be used
     * afterwards.
     */
    AppTrace finish();

  private:
    KernelLaunch makeLaunch(const KernelParams &params) const;
    void push(KernelLaunch launch);

    const graph::Csr &graph_;
    AppTrace trace_;
    std::uint32_t currentIteration_ = 0;
    bool iterationStarted_ = false;
    bool finished_ = false;
    // Cached histogram over all nodes, built on first use.
    mutable bool allNodesHistValid_ = false;
    mutable DegreeHist allNodesHist_;
    mutable std::uint64_t allNodesEdges_ = 0;
};

} // namespace dsl
} // namespace graphport

#endif // GRAPHPORT_DSL_RECORDER_HPP
