#include "graphport/dsl/optconfig.hpp"

#include "graphport/support/error.hpp"

namespace graphport {
namespace dsl {

std::string
optName(Opt opt)
{
    switch (opt) {
      case Opt::CoopCv:
        return "coop-cv";
      case Opt::Wg:
        return "wg";
      case Opt::Sg:
        return "sg";
      case Opt::Fg1:
        return "fg";
      case Opt::Fg8:
        return "fg8";
      case Opt::OiterGb:
        return "oitergb";
      case Opt::Sz256:
        return "sz256";
      default:
        panic("optName: invalid Opt");
    }
}

const std::vector<Opt> &
allOpts()
{
    static const std::vector<Opt> opts = {
        Opt::CoopCv, Opt::Wg,      Opt::Sg,    Opt::Fg1,
        Opt::Fg8,    Opt::OiterGb, Opt::Sz256,
    };
    return opts;
}

bool
OptConfig::isBaseline() const
{
    return !coopCv && !wg && !sg && fg == FgMode::Off && !oitergb &&
           !sz256;
}

bool
OptConfig::has(Opt opt) const
{
    switch (opt) {
      case Opt::CoopCv:
        return coopCv;
      case Opt::Wg:
        return wg;
      case Opt::Sg:
        return sg;
      case Opt::Fg1:
        return fg == FgMode::Fg1;
      case Opt::Fg8:
        return fg == FgMode::Fg8;
      case Opt::OiterGb:
        return oitergb;
      case Opt::Sz256:
        return sz256;
      default:
        panic("OptConfig::has: invalid Opt");
    }
}

OptConfig
OptConfig::with(Opt opt) const
{
    OptConfig c = *this;
    switch (opt) {
      case Opt::CoopCv:
        c.coopCv = true;
        break;
      case Opt::Wg:
        c.wg = true;
        break;
      case Opt::Sg:
        c.sg = true;
        break;
      case Opt::Fg1:
        c.fg = FgMode::Fg1;
        break;
      case Opt::Fg8:
        c.fg = FgMode::Fg8;
        break;
      case Opt::OiterGb:
        c.oitergb = true;
        break;
      case Opt::Sz256:
        c.sz256 = true;
        break;
      default:
        panic("OptConfig::with: invalid Opt");
    }
    return c;
}

OptConfig
OptConfig::without(Opt opt) const
{
    OptConfig c = *this;
    switch (opt) {
      case Opt::CoopCv:
        c.coopCv = false;
        break;
      case Opt::Wg:
        c.wg = false;
        break;
      case Opt::Sg:
        c.sg = false;
        break;
      case Opt::Fg1:
      case Opt::Fg8:
        c.fg = FgMode::Off;
        break;
      case Opt::OiterGb:
        c.oitergb = false;
        break;
      case Opt::Sz256:
        c.sz256 = false;
        break;
      default:
        panic("OptConfig::without: invalid Opt");
    }
    return c;
}

std::string
OptConfig::label() const
{
    if (isBaseline())
        return "baseline";
    std::string out;
    auto append = [&](const std::string &s) {
        if (!out.empty())
            out += ", ";
        out += s;
    };
    // Print in the paper's customary order.
    if (sz256)
        append("sz256");
    if (wg)
        append("wg");
    if (sg)
        append("sg");
    if (fg == FgMode::Fg1)
        append("fg");
    if (fg == FgMode::Fg8)
        append("fg8");
    if (coopCv)
        append("coop-cv");
    if (oitergb)
        append("oitergb");
    return out;
}

unsigned
OptConfig::encode() const
{
    unsigned id = static_cast<unsigned>(fg);
    unsigned bits = 0;
    bits |= coopCv ? 1u : 0u;
    bits |= wg ? 2u : 0u;
    bits |= sg ? 4u : 0u;
    bits |= oitergb ? 8u : 0u;
    bits |= sz256 ? 16u : 0u;
    return id + 3u * bits;
}

OptConfig
OptConfig::decode(unsigned id)
{
    fatalIf(id >= kNumConfigs, "OptConfig::decode id out of range");
    OptConfig c;
    c.fg = static_cast<FgMode>(id % 3u);
    const unsigned bits = id / 3u;
    c.coopCv = bits & 1u;
    c.wg = bits & 2u;
    c.sg = bits & 4u;
    c.oitergb = bits & 8u;
    c.sz256 = bits & 16u;
    return c;
}

const std::vector<OptConfig> &
allConfigs()
{
    static const std::vector<OptConfig> configs = [] {
        std::vector<OptConfig> out;
        out.reserve(kNumConfigs);
        for (unsigned id = 0; id < kNumConfigs; ++id)
            out.push_back(OptConfig::decode(id));
        return out;
    }();
    return configs;
}

std::vector<OptConfig>
allConfigsWith(Opt opt)
{
    std::vector<OptConfig> out;
    for (const OptConfig &c : allConfigs()) {
        if (c.has(opt))
            out.push_back(c);
    }
    return out;
}

} // namespace dsl
} // namespace graphport
