/**
 * @file
 * A frozen, servable strategy portfolio: the cover solver's output
 * bound to the dataset it was solved over, with the same snapshot
 * discipline as `.gpi` indexes and `.gpc` calibrations.
 *
 * A Portfolio names the K member configurations, every (app, input,
 * chip) cell's assigned member and realized slowdown vs oracle, and
 * the single best-global member the serving layer degrades to when a
 * query resolves to no cell. It round-trips through versioned `.gpp`
 * snapshot files stamped with the dataset content hash, so a stale or
 * foreign portfolio is rejected at load exactly like a stale index.
 */
#ifndef GRAPHPORT_PORTFOLIO_PORTFOLIO_HPP
#define GRAPHPORT_PORTFOLIO_PORTFOLIO_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graphport/portfolio/cover.hpp"
#include "graphport/runner/dataset.hpp"

namespace graphport {
namespace portfolio {

/** One (app, input, chip) cell's frozen attribution. */
struct PortfolioCell
{
    std::string app;
    std::string input;
    std::string chip;
    /** Index into Portfolio::members() of the assigned member. */
    std::uint32_t member = 0;
    /** Realized slowdown vs the cell's oracle configuration. */
    double slowdown = 1.0;
};

/**
 * A solved ε-cover frozen against one dataset. Immutable once built;
 * the serving layer compiles it into a serve::FrozenPortfolio for
 * allocation-free dispatch.
 */
class Portfolio
{
  public:
    /** Bind @p s (solved over @p ds) to the dataset's identity. */
    static Portfolio fromSolution(const runner::Dataset &ds,
                                  const CoverSolution &s);

    /** Solve over @p ds and bind, in one step. */
    static Portfolio solve(const runner::Dataset &ds,
                           const CoverOptions &opts);

    /**
     * loadOrRebuild protocol over a `.gpp` path: a missing, corrupt,
     * stale (dataset-hash mismatch) or version-skewed snapshot warns
     * and re-solves; a healthy one loads without solving. Rejects a
     * loaded portfolio whose epsilon differs from opts.epsilon.
     */
    static Portfolio solveOrLoadCached(const runner::Dataset &ds,
                                       const std::string &path,
                                       const CoverOptions &opts);

    /** Content hash of the dataset the cover was solved over. */
    std::uint64_t datasetHash() const { return datasetHash_; }

    /**
     * Schedule space the cover's member ids live in. Legacy
     * snapshots carry no space row and load as the legacy space, so
     * pre-existing .gpp files stay byte-identical and valid.
     */
    const dsl::ScheduleSpace &space() const { return space_; }

    /** The radius the cover was solved for. */
    double epsilon() const { return epsilon_; }

    /** Whether the exact solver produced it. */
    bool exact() const { return exact_; }

    /** Member configuration ids (size K). */
    const std::vector<unsigned> &members() const { return members_; }

    /** Per-cell attributions, in dataset test order. */
    const std::vector<PortfolioCell> &cells() const { return cells_; }

    /** Index into members() of the degradation-floor member. */
    std::uint32_t bestGlobalMember() const { return bestGlobalMember_; }

    /** That member's geomean slowdown over all cells. */
    double bestGlobalGeomean() const { return bestGlobalGeomean_; }

    /** Max over cells of the assigned slowdown. */
    double maxSlowdown() const { return maxSlowdown_; }

    /** Geomean over cells of the assigned slowdown. */
    double geomeanSlowdown() const { return geomeanSlowdown_; }

    /** Serialise as a `.gpp` snapshot. */
    void save(std::ostream &os) const;

    /**
     * Parse and validate a `.gpp` snapshot. @p what names the source
     * in diagnostics (e.g. "'portfolio.gpp'").
     *
     * @throws FatalError on any structural defect.
     */
    static Portfolio load(std::istream &is, const std::string &what);

    /** load() from a file path (fatal when unopenable). */
    static Portfolio loadFile(const std::string &path);

    /** Crash-safe save() to a file path. */
    void saveFile(const std::string &path) const;

  private:
    std::uint64_t datasetHash_ = 0;
    dsl::ScheduleSpace space_;
    double epsilon_ = 0.0;
    bool exact_ = false;
    std::vector<unsigned> members_;
    std::vector<PortfolioCell> cells_;
    std::uint32_t bestGlobalMember_ = 0;
    double bestGlobalGeomean_ = 1.0;
    double maxSlowdown_ = 1.0;
    double geomeanSlowdown_ = 1.0;
};

} // namespace portfolio
} // namespace graphport

#endif // GRAPHPORT_PORTFOLIO_PORTFOLIO_HPP
