#include "graphport/portfolio/portfolio.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/snapshot.hpp"

namespace graphport {
namespace portfolio {

namespace {

using support::hexDouble;
using support::hexU64;

/** On-disk identity of a portfolio snapshot. */
constexpr const char *kPortfolioMagic = "graphport-portfolio";
constexpr unsigned kPortfolioFormatVersion = 1;
constexpr const char *kPortfolioRebuildHint =
    "re-solve the portfolio with 'graphport_cli portfolio solve'";

} // namespace

Portfolio
Portfolio::fromSolution(const runner::Dataset &ds,
                        const CoverSolution &s)
{
    panicIf(s.members.empty(),
            "Portfolio::fromSolution: empty cover");
    panicIf(s.cellAssignments.size() != ds.numTests(),
            "Portfolio::fromSolution: attribution/test count "
            "mismatch");
    Portfolio p;
    p.datasetHash_ = ds.contentHash();
    p.space_ = ds.universe().space;
    p.epsilon_ = s.epsilon;
    p.exact_ = s.exact;
    p.members_ = s.members;
    p.bestGlobalMember_ = s.bestGlobalMember;
    p.bestGlobalGeomean_ = s.bestGlobalGeomean;
    p.maxSlowdown_ = s.maxSlowdown;
    p.geomeanSlowdown_ = s.geomeanSlowdown;
    p.cells_.reserve(ds.numTests());
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const runner::Test test = ds.testAt(t);
        PortfolioCell cell;
        cell.app = test.app;
        cell.input = test.input;
        cell.chip = test.chip;
        cell.member = s.cellAssignments[t].member;
        cell.slowdown = s.cellAssignments[t].slowdown;
        p.cells_.push_back(std::move(cell));
    }
    return p;
}

Portfolio
Portfolio::solve(const runner::Dataset &ds, const CoverOptions &opts)
{
    return fromSolution(ds, solveCover(ds, opts));
}

Portfolio
Portfolio::solveOrLoadCached(const runner::Dataset &ds,
                             const std::string &path,
                             const CoverOptions &opts)
{
    return support::loadOrRebuild(
        path, "portfolio snapshot", "re-solving",
        "the portfolio will be re-solved next time",
        [&](std::ifstream &in) {
            Portfolio p = load(in, "'" + path + "'");
            // A portfolio is only valid for the exact dataset it was
            // solved over, at the requested radius (space check
            // first, for the clearer cause).
            fatalIf(!(p.space_ == ds.universe().space),
                    "solved over schedule space " +
                        p.space_.versionString() + ", expected " +
                        ds.universe().space.versionString());
            fatalIf(p.datasetHash_ != ds.contentHash(),
                    "solved over a different dataset (hash " +
                        hexU64(p.datasetHash_) + ", expected " +
                        hexU64(ds.contentHash()) + ")");
            fatalIf(p.epsilon_ != opts.epsilon,
                    "solved for epsilon " + hexDouble(p.epsilon_) +
                        ", expected " + hexDouble(opts.epsilon));
            return p;
        },
        [&] { return solve(ds, opts); },
        [&](const Portfolio &p) { p.saveFile(path); });
}

void
Portfolio::save(std::ostream &os) const
{
    support::SnapshotWriter w(os, kPortfolioMagic,
                              kPortfolioFormatVersion);
    w.row({"dataset_hash", hexU64(datasetHash_)});
    w.row({"epsilon", hexDouble(epsilon_)});
    w.row({"exact", exact_ ? "1" : "0"});
    // Written only for the extended space: legacy snapshots stay
    // byte-identical to those of pre-schedule-language builds.
    if (!space_.isLegacy())
        w.row({"schedule_space", space_.name()});
    w.row({"summary", hexDouble(maxSlowdown_),
           hexDouble(geomeanSlowdown_)});
    w.row({"best_global", std::to_string(bestGlobalMember_),
           hexDouble(bestGlobalGeomean_)});

    w.row({"members", std::to_string(members_.size())});
    for (unsigned cfg : members_)
        w.row({"member", std::to_string(cfg)});

    w.row({"cells", std::to_string(cells_.size())});
    for (const PortfolioCell &c : cells_) {
        w.row({"cell", c.app, c.input, c.chip,
               std::to_string(c.member), hexDouble(c.slowdown)});
    }
    w.end();
}

Portfolio
Portfolio::load(std::istream &is, const std::string &what)
{
    Portfolio p;
    support::SnapshotReader r(is, kPortfolioMagic,
                              kPortfolioFormatVersion,
                              "portfolio snapshot " + what,
                              kPortfolioRebuildHint);

    std::vector<std::string> row = r.expect("dataset_hash", 2);
    p.datasetHash_ = r.hash(row[1]);

    row = r.expect("epsilon", 2);
    p.epsilon_ = r.number(row[1]);
    r.rejectIf(p.epsilon_ < 0.0, "epsilon must be >= 0");

    row = r.expect("exact", 2);
    r.rejectIf(row[1] != "0" && row[1] != "1",
               "exact must be 0 or 1");
    p.exact_ = row[1] == "1";

    if (r.tryExpect("schedule_space", 2, row)) {
        r.rejectIf(!dsl::ScheduleSpace::tryByName(row[1], &p.space_),
                   "unknown schedule space '" + row[1] + "'");
    }

    row = r.expect("summary", 3);
    p.maxSlowdown_ = r.number(row[1]);
    p.geomeanSlowdown_ = r.number(row[2]);

    row = r.expect("best_global", 3);
    p.bestGlobalMember_ = r.smallCount(row[1]);
    p.bestGlobalGeomean_ = r.number(row[2]);

    row = r.expect("members", 2);
    const unsigned nMembers = r.smallCount(row[1]);
    r.rejectIf(nMembers == 0, "portfolio must have members");
    for (unsigned m = 0; m < nMembers; ++m) {
        row = r.expect("member", 2);
        const unsigned cfg = r.smallCount(row[1]);
        r.rejectIf(cfg >= p.space_.size(),
                   "config id out of range: " + row[1] +
                       " (schedule space " +
                       p.space_.versionString() + ")");
        p.members_.push_back(cfg);
    }
    r.rejectIf(p.bestGlobalMember_ >= nMembers,
               "best_global member index out of range");

    row = r.expect("cells", 2);
    const std::uint64_t nCells = r.count(row[1]);
    r.rejectIf(nCells == 0, "portfolio must cover cells");
    for (std::uint64_t c = 0; c < nCells; ++c) {
        row = r.expect("cell", 6);
        PortfolioCell cell;
        cell.app = row[1];
        cell.input = row[2];
        cell.chip = row[3];
        cell.member = r.smallCount(row[4]);
        r.rejectIf(cell.member >= nMembers,
                   "cell member index out of range: " + row[4]);
        cell.slowdown = r.number(row[5]);
        r.rejectIf(!std::isfinite(cell.slowdown) ||
                       cell.slowdown < 1.0,
                   "cell slowdown must be >= 1: " + row[5]);
        p.cells_.push_back(std::move(cell));
    }

    r.expectEnd();
    return p;
}

Portfolio
Portfolio::loadFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in.good(),
            "cannot open portfolio snapshot '" + path + "'");
    return load(in, "'" + path + "'");
}

void
Portfolio::saveFile(const std::string &path) const
{
    support::atomicWriteFile(path, "portfolio snapshot",
                             [&](std::ostream &os) { save(os); });
}

} // namespace portfolio
} // namespace graphport
