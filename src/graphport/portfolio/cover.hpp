/**
 * @file
 * The strategy-portfolio cover solver: how few configurations suffice?
 *
 * The paper's core finding is that no single configuration is
 * near-optimal across chips; the "A Few Fit Most" observation is that
 * a *small* set usually is. This module quantifies that trade-off
 * over a priced runner::Dataset. A set S of configurations ε-covers a
 * cell (an (app, input, chip) test) when some member of S is within a
 * factor (1 + ε) of the cell's oracle configuration:
 *
 *     min_{c in S} meanNs(t, c) / meanNs(t, bestConfig(t)) <= 1 + ε.
 *
 * solveCover computes a small ε-cover of every cell: the classic
 * greedy set-cover heuristic (pick the configuration covering the
 * most still-uncovered cells, ties to the lowest configuration id),
 * whose cover is at most (1 + ln n) times the optimum, or an exact
 * branch-and-bound search for small universes. Both are deterministic
 * and bit-identical under support::ThreadPool fan-out: parallel
 * stages write disjoint slots and every reduction is serial.
 *
 * paretoFrontier sweeps the achievable (K, ε) trade-off: for each
 * portfolio size K, the smallest ε whose cover needs at most K
 * members, evaluated over the finite candidate set of per-cell
 * slowdowns (the only ε values at which coverage can change). The
 * frontier is monotone by construction — K strictly increases, ε
 * strictly decreases — with per-cell slowdown attribution per point.
 */
#ifndef GRAPHPORT_PORTFOLIO_COVER_HPP
#define GRAPHPORT_PORTFOLIO_COVER_HPP

#include <cstdint>
#include <vector>

#include "graphport/runner/dataset.hpp"

namespace graphport {

namespace obs {
struct Obs;
}

namespace portfolio {

/**
 * Per-cell slowdown-vs-oracle matrix of a dataset: the solver's whole
 * input, precomputed once so greedy sweeps don't re-divide means.
 */
class SlowdownMatrix
{
  public:
    /**
     * Build from @p ds: slowdown(t, c) = meanNs(t, c) /
     * meanNs(t, bestConfig(t)). Bit-identical at every @p threads
     * count (each cell writes a disjoint slot).
     */
    static SlowdownMatrix build(const runner::Dataset &ds,
                                unsigned threads = 1);

    /** Number of (app, input, chip) cells (dataset tests). */
    std::size_t cells() const { return cells_; }

    /** Number of configurations (the dataset's schedule-space size). */
    unsigned configs() const { return configs_; }

    /** Slowdown vs oracle of one (cell, config); >= 1 at oracle. */
    double
    at(std::size_t cell, unsigned config) const
    {
        return slow_[cell * configs_ + config];
    }

    /** The cell's oracle configuration (Dataset::bestConfig). */
    unsigned oracle(std::size_t cell) const { return oracle_[cell]; }

  private:
    std::size_t cells_ = 0;
    unsigned configs_ = 0;
    /** [cell * configs + config]. */
    std::vector<double> slow_;
    std::vector<unsigned> oracle_;
};

/** Knobs for solveCover / paretoFrontier. */
struct CoverOptions
{
    /** Cover radius: a member within (1 + epsilon) of oracle covers. */
    double epsilon = 0.10;

    /**
     * Worker parallelism (0 = all hardware threads). Results are
     * bit-identical for every thread count.
     */
    unsigned threads = 1;

    /**
     * Solve exactly (branch-and-bound over the coverage sets) instead
     * of greedily. Intended for small universes; the search is capped
     * at a node budget and fails over that budget rather than running
     * unbounded.
     */
    bool exact = false;

    /**
     * paretoFrontier evaluates coverage at every distinct per-cell
     * slowdown value; above this many candidates the grid is
     * subsampled evenly (the ε = 0 and largest candidates are always
     * kept) so study-scale frontiers stay tractable.
     */
    std::size_t maxFrontierCandidates = 512;

    /**
     * When non-null, the solve records "portfolio.*" metrics and a
     * "portfolio.solve" (or "portfolio.frontier") span.
     */
    obs::Obs *obs = nullptr;
};

/** One cell's attribution within a solved cover. */
struct CellAssignment
{
    /** Index into CoverSolution::members of the assigned member. */
    std::uint32_t member = 0;
    /** Realized slowdown vs oracle of the assigned member. */
    double slowdown = 1.0;
};

/** A solved ε-cover with per-cell attribution. */
struct CoverSolution
{
    /** The radius the cover was solved for. */
    double epsilon = 0.0;
    /** Whether the exact solver produced it. */
    bool exact = false;
    /**
     * Member configuration ids: greedy selection order, or ascending
     * for exact solutions.
     */
    std::vector<unsigned> members;
    /** Per dataset test, the assigned member and realized slowdown. */
    std::vector<CellAssignment> cellAssignments;
    /**
     * Index into members of the single member with the lowest geomean
     * slowdown over *all* cells — the serving layer's degradation
     * floor when a query resolves to no cell.
     */
    std::uint32_t bestGlobalMember = 0;
    /** That member's geomean slowdown over all cells. */
    double bestGlobalGeomean = 1.0;
    /** Max over cells of the assigned slowdown (<= 1 + epsilon). */
    double maxSlowdown = 1.0;
    /** Geomean over cells of the assigned slowdown. */
    double geomeanSlowdown = 1.0;
};

/**
 * Solve the ε-cover over @p m. Greedy by default ((1 + ln n)-approx,
 * ties to the lowest configuration id); exact branch-and-bound with
 * opts.exact. Always feasible for epsilon >= 0: every cell's oracle
 * configuration covers it at slowdown 1.
 *
 * @throws FatalError when opts.epsilon < 0 or the exact search
 *         exceeds its node budget.
 */
CoverSolution solveCover(const SlowdownMatrix &m,
                         const CoverOptions &opts);

/** solveCover over a freshly built SlowdownMatrix of @p ds. */
CoverSolution solveCover(const runner::Dataset &ds,
                         const CoverOptions &opts);

/** One point of the K-vs-ε Pareto frontier. */
struct FrontierPoint
{
    /** Portfolio size (cover cardinality). */
    unsigned k = 0;
    /** Smallest radius coverable with k members. */
    double epsilon = 0.0;
    /** Realized max / geomean slowdown of the k-member cover. */
    double maxSlowdown = 1.0;
    double geomeanSlowdown = 1.0;
    /** The cover's member configuration ids. */
    std::vector<unsigned> members;
};

/**
 * The K-vs-ε Pareto frontier of @p m: for each achievable cover size
 * K (ascending), the smallest candidate ε whose greedy cover needs at
 * most K members. Dominated points are dropped, so K strictly
 * increases while ε strictly decreases, ending at the ε = 0 cover
 * (the full oracle set). opts.epsilon is ignored; opts.exact selects
 * the exact solver for the per-point covers.
 */
std::vector<FrontierPoint> paretoFrontier(const SlowdownMatrix &m,
                                          const CoverOptions &opts);

/** paretoFrontier over a freshly built SlowdownMatrix of @p ds. */
std::vector<FrontierPoint> paretoFrontier(const runner::Dataset &ds,
                                          const CoverOptions &opts);

} // namespace portfolio
} // namespace graphport

#endif // GRAPHPORT_PORTFOLIO_COVER_HPP
