#include "graphport/portfolio/cover.hpp"

#include <algorithm>
#include <cmath>

#include "graphport/obs/obs.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/mathutil.hpp"
#include "graphport/support/threadpool.hpp"

namespace graphport {
namespace portfolio {

namespace {

/** Cells-per-word of the coverage bitsets. */
constexpr std::size_t kWordBits = 64;

std::size_t
wordCount(std::size_t cells)
{
    return (cells + kWordBits - 1) / kWordBits;
}

/**
 * Per-config coverage bitsets at one radius: masks[c * words + w]
 * has bit (t % 64) of word (t / 64) set when config c covers cell t.
 * Parallel over configs, disjoint writes — bit-identical at every
 * thread count.
 */
std::vector<std::uint64_t>
coverageMasks(const SlowdownMatrix &m, double epsilon,
              support::ThreadPool &pool)
{
    const std::size_t words = wordCount(m.cells());
    std::vector<std::uint64_t> masks(m.configs() * words, 0);
    const double radius = 1.0 + epsilon;
    pool.parallelFor(
        m.configs(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c) {
                std::uint64_t *row = masks.data() + c * words;
                for (std::size_t t = 0; t < m.cells(); ++t) {
                    if (m.at(t, static_cast<unsigned>(c)) <= radius)
                        row[t / kWordBits] |= 1ull
                                              << (t % kWordBits);
                }
            }
        },
        1);
    return masks;
}

std::size_t
popcountRow(const std::uint64_t *row, const std::uint64_t *covered,
            std::size_t words)
{
    std::size_t n = 0;
    for (std::size_t w = 0; w < words; ++w)
        n += static_cast<std::size_t>(
            __builtin_popcountll(row[w] & ~covered[w]));
    return n;
}

/**
 * Greedy set cover: repeatedly take the configuration covering the
 * most still-uncovered cells, ties to the lowest configuration id.
 * Gains are computed in parallel into disjoint slots; the argmax
 * reduction is serial, so member order is bit-identical at every
 * thread count.
 */
std::vector<unsigned>
greedyCover(const SlowdownMatrix &m,
            const std::vector<std::uint64_t> &masks,
            support::ThreadPool &pool)
{
    const std::size_t words = wordCount(m.cells());
    std::vector<std::uint64_t> covered(words, 0);
    std::vector<std::size_t> gains(m.configs(), 0);
    std::vector<unsigned> members;
    std::size_t remaining = m.cells();
    while (remaining > 0) {
        pool.parallelFor(
            m.configs(),
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t c = begin; c < end; ++c)
                    gains[c] = popcountRow(
                        masks.data() + c * words, covered.data(),
                        words);
            },
            8);
        std::size_t bestGain = 0;
        unsigned best = 0;
        for (unsigned c = 0; c < m.configs(); ++c) {
            if (gains[c] > bestGain) {
                bestGain = gains[c];
                best = c;
            }
        }
        panicIf(bestGain == 0,
                "greedyCover: uncoverable cell (oracle slowdown "
                "above the radius?)");
        members.push_back(best);
        const std::uint64_t *row = masks.data() + best * words;
        for (std::size_t w = 0; w < words; ++w)
            covered[w] |= row[w];
        remaining -= bestGain;
    }
    return members;
}

/**
 * Exact minimum set cover by branch and bound. Branches on the
 * uncovered cell with the fewest covering configurations (first such
 * cell on ties), trying its covering configurations in ascending id
 * order; prunes with the incumbent (seeded by the greedy cover) and
 * the ceil(remaining / best-possible-gain) lower bound. Entirely
 * serial — the search tree is explored in one deterministic order —
 * and capped at a node budget so a pathological universe fails fast
 * instead of running unbounded.
 */
class ExactSolver
{
  public:
    ExactSolver(const SlowdownMatrix &m,
                const std::vector<std::uint64_t> &masks,
                std::vector<unsigned> incumbent)
        : m_(m), masks_(masks), words_(wordCount(m.cells())),
          best_(std::move(incumbent))
    {
        coveringOf_.resize(m_.cells());
        for (std::size_t t = 0; t < m_.cells(); ++t) {
            for (unsigned c = 0; c < m_.configs(); ++c) {
                if (masks_[c * words_ + t / kWordBits] &
                    (1ull << (t % kWordBits)))
                    coveringOf_[t].push_back(c);
            }
            fatalIf(coveringOf_[t].empty(),
                    "exact cover: cell has no covering "
                    "configuration");
        }
    }

    std::vector<unsigned>
    solve()
    {
        std::vector<std::uint64_t> covered(words_, 0);
        std::vector<unsigned> chosen;
        recurse(covered, chosen, m_.cells());
        std::sort(best_.begin(), best_.end());
        return best_;
    }

  private:
    void
    recurse(std::vector<std::uint64_t> &covered,
            std::vector<unsigned> &chosen, std::size_t remaining)
    {
        fatalIf(++nodes_ > kNodeBudget,
                "exact cover: search exceeded the node budget; "
                "use the greedy solver for this universe");
        if (remaining == 0) {
            if (chosen.size() < best_.size())
                best_ = chosen;
            return;
        }
        if (chosen.size() + 1 >= best_.size())
            return; // even one more member cannot improve
        // Lower bound: no configuration can cover more uncovered
        // cells than the best current gain.
        std::size_t maxGain = 0;
        for (unsigned c = 0; c < m_.configs(); ++c)
            maxGain = std::max(
                maxGain, popcountRow(masks_.data() + c * words_,
                                     covered.data(), words_));
        const std::size_t lower =
            (remaining + maxGain - 1) / maxGain;
        if (chosen.size() + lower >= best_.size())
            return;

        // Branch on the most constrained uncovered cell.
        std::size_t branchCell = m_.cells();
        std::size_t fewest = m_.configs() + 1;
        for (std::size_t t = 0; t < m_.cells(); ++t) {
            if (covered[t / kWordBits] & (1ull << (t % kWordBits)))
                continue;
            std::size_t live = 0;
            for (unsigned c : coveringOf_[t]) {
                if (popcountRow(masks_.data() + c * words_,
                                covered.data(), words_) > 0)
                    ++live;
            }
            if (live < fewest) {
                fewest = live;
                branchCell = t;
            }
        }
        panicIf(branchCell == m_.cells(),
                "exact cover: no uncovered cell found");

        for (unsigned c : coveringOf_[branchCell]) {
            std::vector<std::uint64_t> next = covered;
            std::size_t gain = 0;
            const std::uint64_t *row = masks_.data() + c * words_;
            for (std::size_t w = 0; w < words_; ++w) {
                gain += static_cast<std::size_t>(
                    __builtin_popcountll(row[w] & ~next[w]));
                next[w] |= row[w];
            }
            if (gain == 0)
                continue;
            chosen.push_back(c);
            recurse(next, chosen, remaining - gain);
            chosen.pop_back();
        }
    }

    static constexpr std::size_t kNodeBudget = 2'000'000;

    const SlowdownMatrix &m_;
    const std::vector<std::uint64_t> &masks_;
    std::size_t words_;
    std::vector<unsigned> best_;
    std::vector<std::vector<unsigned>> coveringOf_;
    std::size_t nodes_ = 0;
};

/**
 * Attribute every cell to its best member (strict improvement, so
 * ties go to the earliest member) and derive the solution summary.
 */
void
attributeCells(const SlowdownMatrix &m, CoverSolution &s)
{
    panicIf(s.members.empty(), "attributeCells: empty cover");
    s.cellAssignments.resize(m.cells());
    std::vector<double> assigned(m.cells(), 0.0);
    for (std::size_t t = 0; t < m.cells(); ++t) {
        std::uint32_t bestMember = 0;
        double best = m.at(t, s.members[0]);
        for (std::uint32_t i = 1; i < s.members.size(); ++i) {
            const double slow = m.at(t, s.members[i]);
            if (slow < best) {
                best = slow;
                bestMember = i;
            }
        }
        s.cellAssignments[t] = {bestMember, best};
        assigned[t] = best;
        panicIf(best > 1.0 + s.epsilon,
                "cover solution violates its own radius");
    }
    s.maxSlowdown =
        *std::max_element(assigned.begin(), assigned.end());
    s.geomeanSlowdown = geomean(assigned);

    // The degradation floor: the single member that is least bad
    // over the whole universe, not just its assigned cells.
    s.bestGlobalMember = 0;
    s.bestGlobalGeomean = 0.0;
    for (std::uint32_t i = 0; i < s.members.size(); ++i) {
        std::vector<double> slows(m.cells());
        for (std::size_t t = 0; t < m.cells(); ++t)
            slows[t] = m.at(t, s.members[i]);
        const double g = geomean(slows);
        if (i == 0 || g < s.bestGlobalGeomean) {
            s.bestGlobalGeomean = g;
            s.bestGlobalMember = i;
        }
    }
}

} // namespace

SlowdownMatrix
SlowdownMatrix::build(const runner::Dataset &ds, unsigned threads)
{
    SlowdownMatrix m;
    m.cells_ = ds.numTests();
    m.configs_ = ds.numConfigs();
    fatalIf(m.cells_ == 0, "SlowdownMatrix: empty dataset");
    m.slow_.assign(m.cells_ * m.configs_, 0.0);
    m.oracle_.assign(m.cells_, 0);
    support::ThreadPool pool(threads);
    pool.parallelFor(
        m.cells_,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t t = begin; t < end; ++t) {
                const unsigned best = ds.bestConfig(t);
                m.oracle_[t] = best;
                const double oracleNs = ds.meanNs(t, best);
                for (unsigned c = 0; c < m.configs_; ++c)
                    m.slow_[t * m.configs_ + c] =
                        ds.meanNs(t, c) / oracleNs;
            }
        },
        1);
    return m;
}

CoverSolution
solveCover(const SlowdownMatrix &m, const CoverOptions &opts)
{
    fatalIf(opts.epsilon < 0.0,
            "solveCover: epsilon must be >= 0");
    obs::Span span(obs::tracerOf(opts.obs), "portfolio.solve");
    support::ThreadPool pool(opts.threads);
    const std::vector<std::uint64_t> masks =
        coverageMasks(m, opts.epsilon, pool);

    CoverSolution s;
    s.epsilon = opts.epsilon;
    s.exact = opts.exact;
    s.members = greedyCover(m, masks, pool);
    if (opts.exact) {
        ExactSolver exact(m, masks, s.members);
        s.members = exact.solve();
    }
    attributeCells(m, s);

    if (opts.obs != nullptr) {
        obs::MetricsRegistry &reg = opts.obs->metrics;
        reg.counter("portfolio.solve.cells").add(m.cells());
        reg.counter("portfolio.solve.configs").add(m.configs());
        reg.counter("portfolio.solve.members")
            .add(s.members.size());
        reg.gauge("portfolio.solve.epsilon").set(s.epsilon);
        reg.gauge("portfolio.solve.max_slowdown")
            .set(s.maxSlowdown);
    }
    return s;
}

CoverSolution
solveCover(const runner::Dataset &ds, const CoverOptions &opts)
{
    return solveCover(SlowdownMatrix::build(ds, opts.threads), opts);
}

std::vector<FrontierPoint>
paretoFrontier(const SlowdownMatrix &m, const CoverOptions &opts)
{
    obs::Span span(obs::tracerOf(opts.obs), "portfolio.frontier");
    // Coverage only changes at the finite set of per-cell slowdown
    // values; those are the only ε worth evaluating. ε = 0 is always
    // a candidate (the oracle configs themselves).
    std::vector<double> candidates;
    candidates.reserve(m.cells() * m.configs());
    for (std::size_t t = 0; t < m.cells(); ++t) {
        for (unsigned c = 0; c < m.configs(); ++c)
            candidates.push_back(m.at(t, c) - 1.0);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    panicIf(candidates.empty() || candidates.front() != 0.0,
            "paretoFrontier: candidate grid must start at 0");
    const std::size_t total = candidates.size();
    if (opts.maxFrontierCandidates >= 2 &&
        total > opts.maxFrontierCandidates) {
        // Subsample evenly, always keeping ε = 0 and the largest
        // candidate so both frontier ends stay exact.
        std::vector<double> kept;
        kept.reserve(opts.maxFrontierCandidates);
        const std::size_t n = opts.maxFrontierCandidates;
        for (std::size_t i = 0; i < n; ++i)
            kept.push_back(
                candidates[i * (total - 1) / (n - 1)]);
        kept.erase(std::unique(kept.begin(), kept.end()),
                   kept.end());
        candidates = std::move(kept);
    }

    // Greedy cover size at every candidate radius: independent
    // solves into disjoint slots (serial argmax order inside each).
    support::ThreadPool pool(opts.threads);
    std::vector<std::size_t> sizes(candidates.size(), 0);
    pool.parallelFor(
        candidates.size(),
        [&](std::size_t begin, std::size_t end) {
            support::ThreadPool inner(1);
            for (std::size_t i = begin; i < end; ++i) {
                const std::vector<std::uint64_t> masks =
                    coverageMasks(m, candidates[i], inner);
                sizes[i] = greedyCover(m, masks, inner).size();
            }
        },
        1);

    // ε*(K) = smallest candidate ε coverable with K members; the
    // feasible candidate set only grows with K, so ε*(K) is
    // non-increasing. Dominated points (same ε as a smaller K) are
    // dropped: K strictly increases, ε strictly decreases.
    const std::size_t kFull = sizes.front(); // cover at ε = 0
    std::vector<FrontierPoint> frontier;
    double lastEps = -1.0;
    for (std::size_t k = 1; k <= kFull; ++k) {
        double eps = -1.0;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (sizes[i] <= k &&
                (eps < 0.0 || candidates[i] < eps))
                eps = candidates[i];
        }
        if (eps < 0.0 || eps == lastEps)
            continue;
        lastEps = eps;
        CoverOptions pointOpts = opts;
        pointOpts.epsilon = eps;
        pointOpts.obs = nullptr;
        const CoverSolution s = solveCover(m, pointOpts);
        FrontierPoint p;
        p.k = static_cast<unsigned>(s.members.size());
        p.epsilon = eps;
        p.maxSlowdown = s.maxSlowdown;
        p.geomeanSlowdown = s.geomeanSlowdown;
        p.members = s.members;
        frontier.push_back(std::move(p));
    }
    panicIf(frontier.empty(), "paretoFrontier: empty frontier");

    if (opts.obs != nullptr) {
        obs::MetricsRegistry &reg = opts.obs->metrics;
        reg.counter("portfolio.frontier.candidates")
            .add(candidates.size());
        reg.counter("portfolio.frontier.points")
            .add(frontier.size());
        if (total > candidates.size())
            reg.counter("portfolio.frontier.candidates_dropped")
                .add(total - candidates.size());
    }
    return frontier;
}

std::vector<FrontierPoint>
paretoFrontier(const runner::Dataset &ds, const CoverOptions &opts)
{
    return paretoFrontier(SlowdownMatrix::build(ds, opts.threads),
                          opts);
}

} // namespace portfolio
} // namespace graphport
