#include "graphport/fault/injector.hpp"

#include <cstdlib>

#include "graphport/obs/metrics.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/snapshot.hpp"
#include "graphport/support/strings.hpp"

namespace graphport {
namespace fault {

namespace {

std::string
describe(const std::string &site, std::uint64_t key)
{
    return "injected fault at site '" + site + "' (key " +
           std::to_string(key) + ")";
}

/**
 * The pure decision function: does @p rule fire for @p key under
 * @p seed at the site hashed to @p siteHash? No state, no clock, no
 * arrival order — this is what makes fault sequences bit-identical
 * at any thread count.
 */
bool
decide(std::uint64_t seed, std::uint64_t siteHash,
       const SiteRule &rule, std::uint64_t key)
{
    switch (rule.mode) {
    case SiteRule::Mode::Probability: {
        const std::uint64_t h = splitmix64(
            seed ^ splitmix64(siteHash ^ splitmix64(key)));
        // Top 53 bits -> uniform double in [0, 1).
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;
        return u < rule.probability;
    }
    case SiteRule::Mode::Once:
        return key == rule.n;
    case SiteRule::Mode::Every:
        return rule.n != 0 && key % rule.n == 0;
    case SiteRule::Mode::FirstN:
        return key < rule.n;
    }
    return false;
}

/**
 * support::atomicWriteFile fault seam, keyed by a hash of the
 * destination path (write calls have no natural dense index; the
 * path names the artefact deterministically).
 *
 * Sites: snapshot.write.enospc throws FatalError before any byte
 * hits the disk (the loadOrRebuild warn path absorbs it);
 * snapshot.write.short truncates the rendered bytes in half and
 * snapshot.write.bitflip flips one key-derived bit — both publish a
 * corrupt file that the reader-side checksum must reject on the next
 * load; snapshot.rename vetoes publication (temp removed, previous
 * file intact).
 */
void
applyWriteFaults(std::string &bytes, const std::string &path)
{
    const std::uint64_t key = hashStr(path);
    if (shouldInject("snapshot.write.enospc", key))
        fatal("injected ENOSPC while writing '" + path + "'");
    if (shouldInject("snapshot.write.short", key) && bytes.size() > 1)
        bytes.resize(bytes.size() / 2);
    if (shouldInject("snapshot.write.bitflip", key) &&
        !bytes.empty()) {
        const std::uint64_t pos =
            splitmix64(key ^ bytes.size()) % bytes.size();
        bytes[pos] ^= static_cast<char>(
            1u << (splitmix64(key ^ pos) % 8));
    }
}

void
gateRename(const std::string &path)
{
    if (shouldInject("snapshot.rename", hashStr(path)))
        fatal("injected rename failure publishing '" + path + "'");
}

} // namespace

InjectedFault::InjectedFault(const std::string &site,
                             std::uint64_t key)
    : std::runtime_error(describe(site, key)), site_(site), key_(key)
{
}

InjectedCrash::InjectedCrash(const std::string &site,
                             std::uint64_t key)
    : std::runtime_error("injected crash at site '" + site +
                         "' (key " + std::to_string(key) + ")"),
      site_(site), key_(key)
{
}

FaultSchedule
FaultSchedule::parse(const std::string &spec)
{
    FaultSchedule schedule;
    for (const std::string &rawClause : split(spec, ';')) {
        const std::string clause = trim(rawClause);
        if (clause.empty())
            continue;

        const auto parseCount = [&clause](const std::string &value) {
            fatalIf(value.empty() ||
                        value.find_first_not_of("0123456789") !=
                            std::string::npos,
                    "fault-spec: expected a non-negative integer in "
                    "'" +
                        clause + "'");
            return std::strtoull(value.c_str(), nullptr, 10);
        };

        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos) {
            // Must be seed=N.
            const std::size_t eq = clause.find('=');
            fatalIf(eq == std::string::npos ||
                        trim(clause.substr(0, eq)) != "seed",
                    "fault-spec: bad clause '" + clause +
                        "' (want seed=N or <site>:<rule>)");
            schedule.seed = parseCount(trim(clause.substr(eq + 1)));
            continue;
        }

        const std::string site = trim(clause.substr(0, colon));
        fatalIf(site.empty(),
                "fault-spec: empty site in '" + clause + "'");
        const std::string ruleSpec = trim(clause.substr(colon + 1));
        const std::size_t eq = ruleSpec.find('=');
        fatalIf(eq == std::string::npos,
                "fault-spec: bad rule '" + ruleSpec + "' for site '" +
                    site + "' (want p=F, once=K, every=N or first=N)");
        const std::string mode = trim(ruleSpec.substr(0, eq));
        const std::string value = trim(ruleSpec.substr(eq + 1));

        SiteRule rule;
        if (mode == "p") {
            char *end = nullptr;
            rule.mode = SiteRule::Mode::Probability;
            rule.probability = std::strtod(value.c_str(), &end);
            fatalIf(value.empty() ||
                        end != value.c_str() + value.size() ||
                        rule.probability < 0.0 ||
                        rule.probability > 1.0,
                    "fault-spec: p wants a probability in [0, 1], "
                    "got '" +
                        value + "'");
        } else if (mode == "once") {
            rule.mode = SiteRule::Mode::Once;
            rule.n = parseCount(value);
        } else if (mode == "every") {
            rule.mode = SiteRule::Mode::Every;
            rule.n = parseCount(value);
            fatalIf(rule.n == 0, "fault-spec: every=N needs N >= 1");
        } else if (mode == "first") {
            rule.mode = SiteRule::Mode::FirstN;
            rule.n = parseCount(value);
        } else {
            fatal("fault-spec: unknown rule '" + mode +
                  "' for site '" + site +
                  "' (want p, once, every or first)");
        }
        fatalIf(schedule.sites.count(site) != 0,
                "fault-spec: site '" + site + "' given twice");
        schedule.sites[site] = rule;
    }
    return schedule;
}

Injector::Injector(FaultSchedule schedule)
    : schedule_(std::move(schedule))
{
    for (const auto &[site, rule] : schedule_.sites)
        states_[site].rule = rule;
}

bool
Injector::shouldInject(const std::string &site, std::uint64_t key)
{
    checked_.fetch_add(1, std::memory_order_relaxed);
    const auto it = states_.find(site);
    if (it == states_.end())
        return false;
    if (!decide(schedule_.seed, hashStr(site), it->second.rule, key))
        return false;
    injected_.fetch_add(1, std::memory_order_relaxed);
    it->second.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
Injector::maybeFault(const std::string &site, std::uint64_t key)
{
    if (shouldInject(site, key))
        throw InjectedFault(site, key);
}

void
Injector::maybeCrash(const std::string &site, std::uint64_t key)
{
    if (shouldInject(site, key))
        throw InjectedCrash(site, key);
}

void
Injector::mergeInto(obs::MetricsRegistry &metrics) const
{
    metrics.counter("fault.checked").add(checkedCount());
    metrics.counter("fault.injected").add(injectedCount());
    for (const auto &[site, state] : states_) {
        const std::uint64_t fired =
            state.fired.load(std::memory_order_relaxed);
        if (fired != 0)
            metrics.counter("fault.injected." + site).add(fired);
    }
}

namespace detail {
std::atomic<Injector *> g_injector{nullptr};
}

Injector *
installedInjector()
{
    return detail::g_injector.load(std::memory_order_relaxed);
}

Injector *
installInjector(Injector *injector)
{
    if (injector != nullptr)
        support::setAtomicWriteFaultHooks(&applyWriteFaults,
                                          &gateRename);
    else
        support::setAtomicWriteFaultHooks(nullptr, nullptr);
    return detail::g_injector.exchange(injector,
                                       std::memory_order_acq_rel);
}

} // namespace fault
} // namespace graphport
