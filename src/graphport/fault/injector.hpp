/**
 * @file
 * graphport::fault — deterministic, seed-driven fault injection.
 *
 * A FaultSchedule names injection sites ("snapshot.write.bitflip",
 * "serve.lookup", "sweep.crash", ...) and gives each a firing rule;
 * an Injector evaluates those rules as a pure function of
 * (seed, site, key), so whether a given check fires never depends on
 * thread count, arrival order, or wall clock — the hard determinism
 * bar for the chaos suites is that the same seed + schedule produce
 * bit-identical fault sequences at any parallelism.
 *
 * The key is chosen by the call site to name the unit of work being
 * checked: the sweep crash site keys by cell work index, the serve
 * lookup site keys by a (query, tier, attempt) mix, snapshot write
 * sites key by a hash of the destination path. Keyed decisions are
 * what make "--fault-spec 'seed=1;sweep.crash:once=500'" mean "crash
 * when pricing cell 500" rather than "crash on the 500th check some
 * thread happens to make".
 *
 * Schedule grammar (--fault-spec): semicolon-separated clauses.
 *   seed=N             decision seed (default 0)
 *   <site>:p=F         fire with probability F per key (keyed hash)
 *   <site>:once=K      fire exactly when key == K
 *   <site>:every=N     fire when key % N == 0
 *   <site>:first=N     fire when key < N
 * Example: "seed=42;serve.lookup:p=0.25;snapshot.rename:once=0".
 *
 * Faults are delivered as exceptions: InjectedFault is retryable
 * (the serve layer retries/degrades past it), InjectedCrash is the
 * kill-9 equivalent (the CLI converts it to exit code 137 so CI can
 * rehearse crash/resume without actually signalling the process).
 *
 * Installation is an atomic pointer: with no injector installed,
 * every hook is one relaxed load + branch — zero overhead on the
 * production path (bench_serve_latency budgets < 1%).
 */
#ifndef GRAPHPORT_FAULT_INJECTOR_HPP
#define GRAPHPORT_FAULT_INJECTOR_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace graphport {
namespace obs {
class MetricsRegistry;
}

namespace fault {

/** A retryable injected failure (I/O hiccup, lookup fault, ...). */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(const std::string &site, std::uint64_t key);

    const std::string &site() const { return site_; }
    std::uint64_t key() const { return key_; }

  private:
    std::string site_;
    std::uint64_t key_;
};

/**
 * A kill-9-equivalent injected crash. Nothing below the process
 * entry point may catch this: the CLI converts it to exit code 137,
 * leaving whatever was durably written (checkpoints, renamed
 * snapshots) behind for the resume path to prove itself on.
 */
class InjectedCrash : public std::runtime_error
{
  public:
    InjectedCrash(const std::string &site, std::uint64_t key);

    const std::string &site() const { return site_; }
    std::uint64_t key() const { return key_; }

  private:
    std::string site_;
    std::uint64_t key_;
};

/** One site's firing rule. */
struct SiteRule
{
    enum class Mode
    {
        Probability, ///< p=F: keyed hash < F
        Once,        ///< once=K: key == K
        Every,       ///< every=N: key % N == 0
        FirstN,      ///< first=N: key < N
    };

    Mode mode = Mode::Probability;
    double probability = 0.0;
    std::uint64_t n = 0;
};

/**
 * Parsed --fault-spec: a seed plus per-site rules. parse() throws
 * FatalError with a grammar diagnostic on any malformed clause.
 */
struct FaultSchedule
{
    std::uint64_t seed = 0;
    std::map<std::string, SiteRule> sites;

    static FaultSchedule parse(const std::string &spec);

    bool empty() const { return sites.empty(); }
};

/**
 * Evaluates a FaultSchedule. shouldInject(site, key) is a pure
 * function of (seed, site, key); the injector only adds counting on
 * top (fault.checked / fault.injected / fault.injected.<site>),
 * which is atomic and therefore safe from any thread.
 */
class Injector
{
  public:
    explicit Injector(FaultSchedule schedule);

    /** Decide (and count) whether @p site fires for @p key. */
    bool shouldInject(const std::string &site, std::uint64_t key);

    /** Throw InjectedFault when the site fires. */
    void maybeFault(const std::string &site, std::uint64_t key);

    /** Throw InjectedCrash when the site fires. */
    void maybeCrash(const std::string &site, std::uint64_t key);

    std::uint64_t checkedCount() const
    {
        return checked_.load(std::memory_order_relaxed);
    }

    std::uint64_t injectedCount() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    /**
     * Fold fault.checked, fault.injected and per-site
     * fault.injected.<site> counters into @p metrics.
     */
    void mergeInto(obs::MetricsRegistry &metrics) const;

    const FaultSchedule &schedule() const { return schedule_; }

  private:
    struct SiteState
    {
        SiteRule rule;
        std::atomic<std::uint64_t> fired{0};
    };

    FaultSchedule schedule_;
    std::map<std::string, SiteState> states_;
    std::atomic<std::uint64_t> checked_{0};
    std::atomic<std::uint64_t> injected_{0};
};

/** The installed injector, or nullptr when injection is disabled. */
Injector *installedInjector();

/**
 * Install @p injector globally (nullptr disables). Returns the
 * previously installed injector. Not for concurrent (un)install —
 * install before fanning work out, uninstall after joining.
 */
Injector *installInjector(Injector *injector);

/** RAII install-for-a-scope; restores the previous injector. */
class ScopedInjector
{
  public:
    explicit ScopedInjector(Injector *injector)
        : previous_(installInjector(injector))
    {
    }

    ~ScopedInjector() { installInjector(previous_); }

    ScopedInjector(const ScopedInjector &) = delete;
    ScopedInjector &operator=(const ScopedInjector &) = delete;

  private:
    Injector *previous_;
};

namespace detail {
extern std::atomic<Injector *> g_injector;
}

/**
 * Hot-path hook: false immediately (one relaxed load + branch) when
 * no injector is installed.
 */
inline bool
shouldInject(const char *site, std::uint64_t key)
{
    Injector *inj =
        detail::g_injector.load(std::memory_order_relaxed);
    return inj != nullptr && inj->shouldInject(site, key);
}

/** Throw InjectedFault when @p site fires for @p key. */
inline void
maybeFault(const char *site, std::uint64_t key)
{
    Injector *inj =
        detail::g_injector.load(std::memory_order_relaxed);
    if (inj != nullptr)
        inj->maybeFault(site, key);
}

/** Throw InjectedCrash when @p site fires for @p key. */
inline void
maybeCrash(const char *site, std::uint64_t key)
{
    Injector *inj =
        detail::g_injector.load(std::memory_order_relaxed);
    if (inj != nullptr)
        inj->maybeCrash(site, key);
}

} // namespace fault
} // namespace graphport

#endif // GRAPHPORT_FAULT_INJECTOR_HPP
