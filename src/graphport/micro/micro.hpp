/**
 * @file
 * Section VIII microbenchmarks, run through the same cost engine as
 * the applications:
 *
 *  - launchOverheadSweep: the Figure 5 utilisation experiment —
 *    launch a constant-time kernel many times with an interleaved
 *    single-int memcpy, and measure GPU utilisation as the kernel
 *    duration varies. Exposes per-chip kernel-launch overhead.
 *  - sgCmbSpeedup: the Table X sg-cmb row — time N atomic
 *    fetch-and-add operations on a single location, with and without
 *    subgroup combining (the hand-written coop-cv idiom).
 *  - mDivgSpeedup: the Table X m-divg row — a strided-access kernel
 *    with and without a gratuitous in-loop workgroup barrier that
 *    re-converges the workgroup's memory accesses.
 *  - pullVsPushSpeedup: the extended-axis direction fixture — an
 *    edge-relax kernel priced under dir=push and dir=pull as the
 *    frontier density varies. Dense frontiers favour pull (contended
 *    atomic pushes become coalesced stores); sparse frontiers favour
 *    push (pull pays an overscan check for every off-frontier node),
 *    except on chips whose contended atomics are so dear that pull
 *    wins at every density.
 *  - fusionSpeedup: the extended-axis fusion fixture — a
 *    launch-dominated fixpoint loop priced under fuse=1 vs fuse=N.
 *    Fusion trades follower launch overheads for device-side global
 *    barriers at a small occupancy penalty: tiny kernels win where
 *    the barrier is cheaper than the launch, long kernels lose
 *    everywhere. Both fixtures are one-size-doesn't-fit-all stories:
 *    the winning setting differs per chip.
 */
#ifndef GRAPHPORT_MICRO_MICRO_HPP
#define GRAPHPORT_MICRO_MICRO_HPP

#include <cstdint>
#include <vector>

#include "graphport/sim/chip.hpp"

namespace graphport {
namespace micro {

/** One point of the Figure 5 utilisation curve. */
struct UtilisationPoint
{
    /** Duration of the constant-time kernel, ns. */
    double kernelNs = 0.0;
    /** Fraction of wall time the GPU spent executing kernels. */
    double utilisation = 0.0;
};

/**
 * Figure 5: utilisation of @p chip when launching constant-time
 * kernels of the given durations, each followed by a single-integer
 * device-to-host copy.
 *
 * @param kernel_ns Kernel durations to sweep.
 * @param launches  Number of launches per point (paper: 10000; the
 *                  count cancels out of the utilisation ratio but is
 *                  kept for fidelity).
 */
std::vector<UtilisationPoint>
launchOverheadSweep(const sim::ChipModel &chip,
                    const std::vector<double> &kernel_ns,
                    unsigned launches = 10000);

/**
 * Table X, sg-cmb: speedup of subgroup-combined atomics over plain
 * per-thread atomics for @p n fetch-and-adds on one location.
 * Chips whose driver already combines (Nvidia, HD5500) see ~1x or a
 * slight slowdown; chips without (R9, IRIS) see large speedups
 * bounded by their subgroup size; MALI (subgroup size 1) sees none.
 */
double sgCmbSpeedup(const sim::ChipModel &chip,
                    std::uint64_t n = 20000);

/**
 * Table X, m-divg: speedup from adding a gratuitous workgroup
 * barrier to a strided-access loop, which bounds how far threads of
 * a workgroup drift apart. Extreme on MALI.
 *
 * @param items  Threads in the kernel.
 * @param stride_len Inner loop length per thread.
 */
double mDivgSpeedup(const sim::ChipModel &chip,
                    std::uint64_t items = 4096,
                    std::uint64_t stride_len = 64);

/**
 * Extended axis, direction: speedup of a pull-direction schedule over
 * push on one edge-relax kernel whose frontier holds
 * @p frontier_frac of the graph's @p nodes. Greater than 1 when pull
 * wins; monotone in the frontier density (pull removes the contended
 * atomics but scans every node). Where the crossover lands is
 * chip-specific: chips whose drivers combine contended atomics
 * cheaply (the sg-cmb ~1x rows of Table X) prefer push until the
 * frontier is a few percent of the graph, while the atomic-hobbled
 * chips (R9, IRIS) prefer pull at every density.
 */
double pullVsPushSpeedup(const sim::ChipModel &chip,
                         double frontier_frac,
                         std::uint64_t nodes = 65536,
                         double avg_degree = 8.0);

/**
 * Extended axis, fusion: speedup of fusing @p fuse consecutive
 * launches of a @p kernel_ns constant-time kernel into one
 * device-side loop, over launching each from the host. Follower
 * launches cost a global-barrier episode instead of a kernel launch,
 * while every kernel pays the fusion occupancy penalty. Launch-bound
 * fixpoints (small kernel_ns) therefore speed up exactly on the
 * chips whose portable barrier undercuts their launch overhead (the
 * integrated and mobile chips, dramatically so on MALI) and slow
 * down where launches are cheap (the Nvidia chips); compute-bound
 * fixpoints lose the occupancy penalty everywhere.
 *
 * @param fuse      Fused-group length (2 or 4).
 * @param launches  Total launches in the fixpoint loop.
 */
double fusionSpeedup(const sim::ChipModel &chip, unsigned fuse,
                     double kernel_ns = 2000.0,
                     unsigned launches = 256);

} // namespace micro
} // namespace graphport

#endif // GRAPHPORT_MICRO_MICRO_HPP
