/**
 * @file
 * Section VIII microbenchmarks, run through the same cost engine as
 * the applications:
 *
 *  - launchOverheadSweep: the Figure 5 utilisation experiment —
 *    launch a constant-time kernel many times with an interleaved
 *    single-int memcpy, and measure GPU utilisation as the kernel
 *    duration varies. Exposes per-chip kernel-launch overhead.
 *  - sgCmbSpeedup: the Table X sg-cmb row — time N atomic
 *    fetch-and-add operations on a single location, with and without
 *    subgroup combining (the hand-written coop-cv idiom).
 *  - mDivgSpeedup: the Table X m-divg row — a strided-access kernel
 *    with and without a gratuitous in-loop workgroup barrier that
 *    re-converges the workgroup's memory accesses.
 */
#ifndef GRAPHPORT_MICRO_MICRO_HPP
#define GRAPHPORT_MICRO_MICRO_HPP

#include <cstdint>
#include <vector>

#include "graphport/sim/chip.hpp"

namespace graphport {
namespace micro {

/** One point of the Figure 5 utilisation curve. */
struct UtilisationPoint
{
    /** Duration of the constant-time kernel, ns. */
    double kernelNs = 0.0;
    /** Fraction of wall time the GPU spent executing kernels. */
    double utilisation = 0.0;
};

/**
 * Figure 5: utilisation of @p chip when launching constant-time
 * kernels of the given durations, each followed by a single-integer
 * device-to-host copy.
 *
 * @param kernel_ns Kernel durations to sweep.
 * @param launches  Number of launches per point (paper: 10000; the
 *                  count cancels out of the utilisation ratio but is
 *                  kept for fidelity).
 */
std::vector<UtilisationPoint>
launchOverheadSweep(const sim::ChipModel &chip,
                    const std::vector<double> &kernel_ns,
                    unsigned launches = 10000);

/**
 * Table X, sg-cmb: speedup of subgroup-combined atomics over plain
 * per-thread atomics for @p n fetch-and-adds on one location.
 * Chips whose driver already combines (Nvidia, HD5500) see ~1x or a
 * slight slowdown; chips without (R9, IRIS) see large speedups
 * bounded by their subgroup size; MALI (subgroup size 1) sees none.
 */
double sgCmbSpeedup(const sim::ChipModel &chip,
                    std::uint64_t n = 20000);

/**
 * Table X, m-divg: speedup from adding a gratuitous workgroup
 * barrier to a strided-access loop, which bounds how far threads of
 * a workgroup drift apart. Extreme on MALI.
 *
 * @param items  Threads in the kernel.
 * @param stride_len Inner loop length per thread.
 */
double mDivgSpeedup(const sim::ChipModel &chip,
                    std::uint64_t items = 4096,
                    std::uint64_t stride_len = 64);

} // namespace micro
} // namespace graphport

#endif // GRAPHPORT_MICRO_MICRO_HPP
