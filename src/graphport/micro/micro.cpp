#include "graphport/micro/micro.hpp"

#include "graphport/dsl/trace.hpp"
#include "graphport/sim/costengine.hpp"

namespace graphport {
namespace micro {

std::vector<UtilisationPoint>
launchOverheadSweep(const sim::ChipModel &chip,
                    const std::vector<double> &kernel_ns,
                    unsigned launches)
{
    std::vector<UtilisationPoint> points;
    const double n = static_cast<double>(launches);
    for (double k : kernel_ns) {
        const double busyTime = n * k;
        const double wallTime =
            n * (k + chip.kernelLaunchNs + chip.hostMemcpyNs);
        points.push_back({k, busyTime / wallTime});
    }
    return points;
}

namespace {

/** The sg-cmb kernel: n threads, one fetch-and-add each. */
dsl::KernelLaunch
sgCmbKernel(std::uint64_t n)
{
    dsl::KernelLaunch l;
    l.name = "sg_cmb";
    l.items = n;
    l.contendedPushes = n;
    l.computePerItem = 1.0;
    l.hasNeighborLoop = false;
    l.randomAccess = false;
    return l;
}

} // namespace

double
sgCmbSpeedup(const sim::ChipModel &chip, std::uint64_t n)
{
    const dsl::KernelLaunch kernel = sgCmbKernel(n);
    const sim::CostEngine plain(chip, dsl::OptConfig::baseline());
    dsl::OptConfig cfg;
    cfg.coopCv = true;
    const sim::CostEngine combined(chip, cfg);
    return plain.kernelTimeNs(kernel) / combined.kernelTimeNs(kernel);
}

double
mDivgSpeedup(const sim::ChipModel &chip, std::uint64_t items,
             std::uint64_t stride_len)
{
    // Strided large-array accesses: every inner iteration is a DRAM
    // round trip, and threads drift apart without barriers. The
    // explicit spread models the drift the paper's microbenchmark
    // induces.
    dsl::KernelLaunch l;
    l.name = "m_divg";
    l.items = items;
    l.hasNeighborLoop = true;
    l.randomAccess = true;
    for (std::uint64_t i = 0; i < items; ++i)
        l.hist.add(stride_len);
    l.edges = items * stride_len;
    l.divergenceSpread = 3.0;
    l.computePerItem = 1.0;
    l.computePerEdge = 0.5;

    const sim::CostEngine engine(chip, dsl::OptConfig::baseline());
    const double without = engine.kernelTimeNs(l);
    dsl::KernelLaunch barriered = l;
    barriered.gratuitousBarriers = true;
    barriered.barrierStride = 6;
    const double with = engine.kernelTimeNs(barriered);
    return without / with;
}

namespace {

/**
 * An edge-relax kernel over a frontier of @p items nodes out of
 * @p nodes total: every frontier node walks its neighbours and pushes
 * one contended update per edge.
 */
dsl::KernelLaunch
relaxKernel(std::uint64_t items, std::uint64_t nodes,
            double avg_degree)
{
    dsl::KernelLaunch l;
    l.name = "relax";
    l.items = items;
    l.graphNodes = nodes;
    l.hasNeighborLoop = true;
    l.randomAccess = true;
    const std::uint64_t deg =
        static_cast<std::uint64_t>(avg_degree);
    for (std::uint64_t i = 0; i < items; ++i)
        l.hist.add(deg);
    l.edges = items * deg;
    l.contendedPushes = l.edges;
    l.computePerItem = 1.0;
    l.computePerEdge = 1.0;
    return l;
}

} // namespace

double
pullVsPushSpeedup(const sim::ChipModel &chip, double frontier_frac,
                  std::uint64_t nodes, double avg_degree)
{
    std::uint64_t items =
        static_cast<std::uint64_t>(frontier_frac *
                                   static_cast<double>(nodes));
    if (items < 1)
        items = 1;
    if (items > nodes)
        items = nodes;
    const dsl::KernelLaunch kernel =
        relaxKernel(items, nodes, avg_degree);
    const sim::CostEngine push(chip, dsl::Schedule::baseline());
    const sim::CostEngine pull(
        chip, dsl::Schedule::baseline().with(dsl::Knob::Pull));
    return push.kernelTimeNs(kernel) / pull.kernelTimeNs(kernel);
}

double
fusionSpeedup(const sim::ChipModel &chip, unsigned fuse,
              double kernel_ns, unsigned launches)
{
    // The fixpoint loop: `launches` identical kernels, one iteration
    // each, no host syncs — exactly the shape a fused launch graph
    // covers. Model the fused timing from the engine's own
    // ingredients so the fixture tracks the cost model.
    dsl::KernelLaunch l;
    l.name = "fused_fixpoint";
    l.items = 1024;
    l.computePerItem = 1.0;
    dsl::Schedule fusedSched = dsl::Schedule::baseline();
    fusedSched.fuse = fuse;
    const sim::CostEngine plain(chip, dsl::Schedule::baseline());
    const sim::CostEngine fused(chip, fusedSched);

    dsl::AppTrace trace;
    trace.app = "fixpoint";
    for (unsigned i = 0; i < launches; ++i) {
        dsl::KernelLaunch k = l;
        k.iteration = i / fuse; // keep each fused group in-iteration
        trace.launches.push_back(k);
    }
    // Scale compute so the unfused kernel takes ~kernel_ns. Kernel
    // time is affine in computePerItem (base cost + floor + linear
    // compute), not proportional, so fit the slope on two probes and
    // solve for the target instead of scaling the ratio.
    const double t1 = plain.kernelTimeNs(l);
    dsl::KernelLaunch highProbe = l;
    highProbe.computePerItem = 1024.0;
    const double t2 = plain.kernelTimeNs(highProbe);
    if (t2 > t1 && kernel_ns > t1) {
        const double perUnit = (t2 - t1) / (1024.0 - 1.0);
        const double target = 1.0 + (kernel_ns - t1) / perUnit;
        for (dsl::KernelLaunch &k : trace.launches)
            k.computePerItem = target;
    }
    return plain.appTimeNs(trace) / fused.appTimeNs(trace);
}

} // namespace micro
} // namespace graphport
