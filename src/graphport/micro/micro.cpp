#include "graphport/micro/micro.hpp"

#include "graphport/dsl/trace.hpp"
#include "graphport/sim/costengine.hpp"

namespace graphport {
namespace micro {

std::vector<UtilisationPoint>
launchOverheadSweep(const sim::ChipModel &chip,
                    const std::vector<double> &kernel_ns,
                    unsigned launches)
{
    std::vector<UtilisationPoint> points;
    const double n = static_cast<double>(launches);
    for (double k : kernel_ns) {
        const double busyTime = n * k;
        const double wallTime =
            n * (k + chip.kernelLaunchNs + chip.hostMemcpyNs);
        points.push_back({k, busyTime / wallTime});
    }
    return points;
}

namespace {

/** The sg-cmb kernel: n threads, one fetch-and-add each. */
dsl::KernelLaunch
sgCmbKernel(std::uint64_t n)
{
    dsl::KernelLaunch l;
    l.name = "sg_cmb";
    l.items = n;
    l.contendedPushes = n;
    l.computePerItem = 1.0;
    l.hasNeighborLoop = false;
    l.randomAccess = false;
    return l;
}

} // namespace

double
sgCmbSpeedup(const sim::ChipModel &chip, std::uint64_t n)
{
    const dsl::KernelLaunch kernel = sgCmbKernel(n);
    const sim::CostEngine plain(chip, dsl::OptConfig::baseline());
    dsl::OptConfig cfg;
    cfg.coopCv = true;
    const sim::CostEngine combined(chip, cfg);
    return plain.kernelTimeNs(kernel) / combined.kernelTimeNs(kernel);
}

double
mDivgSpeedup(const sim::ChipModel &chip, std::uint64_t items,
             std::uint64_t stride_len)
{
    // Strided large-array accesses: every inner iteration is a DRAM
    // round trip, and threads drift apart without barriers. The
    // explicit spread models the drift the paper's microbenchmark
    // induces.
    dsl::KernelLaunch l;
    l.name = "m_divg";
    l.items = items;
    l.hasNeighborLoop = true;
    l.randomAccess = true;
    for (std::uint64_t i = 0; i < items; ++i)
        l.hist.add(stride_len);
    l.edges = items * stride_len;
    l.divergenceSpread = 3.0;
    l.computePerItem = 1.0;
    l.computePerEdge = 0.5;

    const sim::CostEngine engine(chip, dsl::OptConfig::baseline());
    const double without = engine.kernelTimeNs(l);
    dsl::KernelLaunch barriered = l;
    barriered.gratuitousBarriers = true;
    barriered.barrierStride = 6;
    const double with = engine.kernelTimeNs(barriered);
    return without / with;
}

} // namespace micro
} // namespace graphport
