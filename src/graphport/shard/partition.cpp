#include "graphport/shard/partition.hpp"

#include <cmath>

#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/strings.hpp"

namespace graphport {
namespace shard {

WorkRange
rangeOf(std::size_t shard, std::size_t shards, std::size_t rows)
{
    panicIf(shards == 0, "shard::rangeOf: zero shards");
    panicIf(shard >= shards, "shard::rangeOf: shard out of range");
    const std::size_t base = rows / shards;
    const std::size_t rem = rows % shards;
    WorkRange r;
    r.begin = shard * base + std::min(shard, rem);
    r.end = r.begin + base + (shard < rem ? 1 : 0);
    return r;
}

std::size_t
ownerOfRow(std::size_t row, std::size_t shards, std::size_t rows)
{
    panicIf(row >= rows, "shard::ownerOfRow: row out of range");
    const std::size_t base = rows / shards;
    const std::size_t rem = rows % shards;
    // The first `rem` shards each own base+1 rows.
    const std::size_t fat = rem * (base + 1);
    if (row < fat)
        return row / (base + 1);
    return rem + (row - fat) / base;
}

std::vector<std::string>
chipsOf(std::size_t shard, std::size_t shards,
        const std::vector<std::string> &chips)
{
    const WorkRange r = rangeOf(shard, shards, chips.size());
    return std::vector<std::string>(chips.begin() + r.begin,
                                    chips.begin() + r.end);
}

std::size_t
homeShardForUnknownChip(const std::string &chip, std::size_t shards)
{
    panicIf(shards == 0, "shard::homeShardForUnknownChip: zero "
                         "shards");
    return hashStr(chip) % shards;
}

void
validateShardCount(const std::string &cmd, std::size_t shards,
                   std::size_t nChips)
{
    fatalIf(shards == 0, cmd + ": --shards expects at least 1 shard, "
                               "got 0");
    fatalIf(shards > nChips,
            cmd + ": --shards (" + std::to_string(shards) +
                ") cannot exceed the chip count (" +
                std::to_string(nChips) +
                "); a shard owning no chip can answer nothing");
}

void
validateStragglerFactor(const std::string &cmd, double factor)
{
    fatalIf(!std::isfinite(factor) || factor < 1.0,
            cmd + ": --straggler-factor expects a finite factor >= 1"
                  ", got " +
                std::to_string(factor));
}

std::string
stripCrashSites(const std::string &spec)
{
    std::string out;
    for (const std::string &part : split(spec, ';')) {
        const std::string clause = trim(part);
        if (clause.empty())
            continue;
        const std::size_t colon = clause.find(':');
        if (colon != std::string::npos) {
            const std::string site = trim(clause.substr(0, colon));
            const std::string suffix = ".crash";
            if (site.size() >= suffix.size() &&
                site.compare(site.size() - suffix.size(),
                             suffix.size(), suffix) == 0)
                continue;
        }
        if (!out.empty())
            out += ';';
        out += clause;
    }
    return out;
}

} // namespace shard
} // namespace graphport
