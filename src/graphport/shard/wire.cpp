#include "graphport/shard/wire.hpp"

#include <bit>
#include <cstring>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/dsl/schedule.hpp"
#include "graphport/support/error.hpp"

namespace graphport {
namespace shard {

namespace {

/** Common payload header; `count` is records ('q'/'a') or bytes ('e'). */
struct WireHeader
{
    char kind = 0;
    char pad[7] = {};
    std::uint64_t frameKey = 0;
    std::uint64_t count = 0;
};

static_assert(sizeof(WireHeader) == 24);

void
copyName(char (&dst)[kWireNameCap], const std::string &src,
         const char *what)
{
    fatalIf(src.size() >= kWireNameCap,
            std::string("shard wire: ") + what + " '" + src +
                "' exceeds " + std::to_string(kWireNameCap - 1) +
                " bytes");
    std::memcpy(dst, src.data(), src.size());
    dst[src.size()] = '\0';
}

template <typename Record>
std::string
packRecords(char kind, std::uint64_t frameKey,
            const Record *records, std::size_t n)
{
    WireHeader h;
    h.kind = kind;
    h.frameKey = frameKey;
    h.count = n;
    std::string payload;
    payload.resize(sizeof h + n * sizeof(Record));
    std::memcpy(payload.data(), &h, sizeof h);
    if (n != 0)
        std::memcpy(payload.data() + sizeof h, records,
                    n * sizeof(Record));
    return payload;
}

bool
unpackHeader(const std::string &payload, char wantKind,
             std::size_t recordSize, WireHeader *h,
             std::string *cause)
{
    if (payload.size() < sizeof(WireHeader)) {
        *cause = "short payload (" +
                 std::to_string(payload.size()) + " bytes)";
        return false;
    }
    std::memcpy(h, payload.data(), sizeof(WireHeader));
    if (h->kind != wantKind) {
        *cause = std::string("unexpected frame kind '") + h->kind +
                 "' (want '" + wantKind + "')";
        return false;
    }
    if (payload.size() !=
        sizeof(WireHeader) + h->count * recordSize) {
        *cause = "payload size mismatch (" +
                 std::to_string(payload.size()) + " bytes for " +
                 std::to_string(h->count) + " records)";
        return false;
    }
    return true;
}

std::string
nameOf(const char *field, std::size_t cap)
{
    return std::string(field, strnlen(field, cap));
}

} // namespace

serve::Advice
adviceFromWire(const WireAdvice &w)
{
    serve::Advice a;
    a.config = w.config;
    a.configLabel = dsl::Schedule::decode(w.config).label();
    a.tierId = static_cast<serve::Tier>(w.tierId);
    a.tier = serve::tierName(a.tierId);
    a.predictive = w.predictive != 0;
    a.partition = nameOf(w.partition, kWirePartitionCap);
    a.expectedSlowdownVsOracle =
        std::bit_cast<double>(w.expectedBits);
    a.partitionSlowdownVsOracle =
        std::bit_cast<double>(w.partitionBits);
    a.featureSource =
        static_cast<serve::FeatureSource>(w.featureSource);
    a.intendedTier = serve::tierName(
        static_cast<serve::Tier>(w.intendedTierId));
    a.degraded = w.degraded != 0;
    a.degradeSteps = w.degradeSteps;
    a.retries = w.retries;
    a.portfolioMember = w.portfolioMember;
    a.portabilityCostVsOracle =
        std::bit_cast<double>(w.portabilityBits);
    a.shardDegraded = w.shardDegraded != 0;
    return a;
}

WireAdvice
adviceToWire(const serve::Advice &a)
{
    WireAdvice w;
    w.config = a.config;
    w.tierId = static_cast<std::uint8_t>(a.tierId);
    const int intended = serve::tierFromName(a.intendedTier);
    fatalIf(intended < 0, "shard wire: unknown intended tier '" +
                              a.intendedTier + "'");
    w.intendedTierId = static_cast<std::uint8_t>(intended);
    w.predictive = a.predictive ? 1 : 0;
    w.degraded = a.degraded ? 1 : 0;
    w.featureSource = static_cast<std::uint8_t>(a.featureSource);
    fatalIf(a.partition.size() >= kWirePartitionCap,
            "shard wire: partition key '" + a.partition +
                "' exceeds " +
                std::to_string(kWirePartitionCap - 1) + " bytes");
    std::memcpy(w.partition, a.partition.data(), a.partition.size());
    w.partition[a.partition.size()] = '\0';
    w.expectedBits =
        std::bit_cast<std::uint64_t>(a.expectedSlowdownVsOracle);
    w.partitionBits =
        std::bit_cast<std::uint64_t>(a.partitionSlowdownVsOracle);
    w.portabilityBits =
        std::bit_cast<std::uint64_t>(a.portabilityCostVsOracle);
    w.degradeSteps = a.degradeSteps;
    w.retries = a.retries;
    w.portfolioMember = a.portfolioMember;
    w.shardDegraded = a.shardDegraded ? 1 : 0;
    return w;
}

std::string
packQueryFrame(std::uint64_t frameKey,
               const std::vector<serve::Query> &queries,
               const std::vector<std::uint64_t> &keys,
               const std::vector<std::size_t> &indices)
{
    std::vector<WireQuery> records(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
        const std::size_t i = indices[k];
        panicIf(i >= queries.size() || i >= keys.size(),
                "shard wire: query index out of range");
        WireQuery &r = records[k];
        r.key = keys[i];
        copyName(r.app, queries[i].app, "app");
        copyName(r.input, queries[i].input, "input");
        copyName(r.chip, queries[i].chip, "chip");
    }
    return packRecords('q', frameKey, records.data(),
                       records.size());
}

bool
unpackQueryFrame(const std::string &payload, std::uint64_t *frameKey,
                 std::vector<serve::Query> *queries,
                 std::vector<std::uint64_t> *keys,
                 std::string *cause)
{
    WireHeader h;
    if (!unpackHeader(payload, 'q', sizeof(WireQuery), &h, cause))
        return false;
    *frameKey = h.frameKey;
    queries->resize(h.count);
    keys->resize(h.count);
    const char *p = payload.data() + sizeof h;
    WireQuery r;
    for (std::size_t i = 0; i < h.count; ++i) {
        std::memcpy(&r, p + i * sizeof r, sizeof r);
        (*keys)[i] = r.key;
        (*queries)[i].app = nameOf(r.app, kWireNameCap);
        (*queries)[i].input = nameOf(r.input, kWireNameCap);
        (*queries)[i].chip = nameOf(r.chip, kWireNameCap);
    }
    return true;
}

std::string
packAdviceFrame(std::uint64_t frameKey,
                const std::vector<WireAdvice> &advices)
{
    return packRecords('a', frameKey, advices.data(),
                       advices.size());
}

bool
unpackAdviceFrame(const std::string &payload,
                  std::uint64_t *frameKey,
                  std::vector<WireAdvice> *advices,
                  std::string *cause)
{
    WireHeader h;
    if (!unpackHeader(payload, 'a', sizeof(WireAdvice), &h, cause))
        return false;
    *frameKey = h.frameKey;
    advices->resize(h.count);
    if (h.count != 0)
        std::memcpy(advices->data(), payload.data() + sizeof h,
                    h.count * sizeof(WireAdvice));
    return true;
}

std::string
packErrorFrame(const std::string &cause)
{
    return packRecords('e', 0, cause.data(), cause.size());
}

std::string
packShutdownFrame()
{
    return packRecords<char>('x', 0, nullptr, 0);
}

std::string
packHeartbeatFrame(std::uint64_t key, std::uint64_t progress)
{
    WireHeader h;
    h.kind = 'h';
    h.frameKey = key;
    h.count = progress;
    std::string payload;
    payload.resize(sizeof h);
    std::memcpy(payload.data(), &h, sizeof h);
    return payload;
}

bool
unpackHeartbeatFrame(const std::string &payload, std::uint64_t *key,
                     std::uint64_t *progress, std::string *cause)
{
    if (payload.size() != sizeof(WireHeader)) {
        *cause = "heartbeat size mismatch (" +
                 std::to_string(payload.size()) + " bytes)";
        return false;
    }
    WireHeader h;
    std::memcpy(&h, payload.data(), sizeof h);
    if (h.kind != 'h') {
        *cause = std::string("unexpected frame kind '") + h.kind +
                 "' (want 'h')";
        return false;
    }
    *key = h.frameKey;
    *progress = h.count;
    return true;
}

char
frameKind(const std::string &payload)
{
    return payload.empty() ? '\0' : payload[0];
}

std::string
frameErrorCause(const std::string &payload)
{
    WireHeader h;
    std::string cause;
    if (!unpackHeader(payload, 'e', 1, &h, &cause))
        return "malformed error frame (" + cause + ")";
    return payload.substr(sizeof h);
}

} // namespace shard
} // namespace graphport
