/**
 * @file
 * Deterministic ownership for the shard layer. Two resources get
 * partitioned, both with the same contiguous balanced rule:
 *
 *  - Sweep work items: the flat (trace, chip, config) row order of
 *    Dataset::build is split into N contiguous ranges, one per worker
 *    process. Contiguity matters twice over — a worker's range maps
 *    to a contiguous trace span (it records only its own traces), and
 *    its checkpoint blocks stay sequential on disk.
 *  - Serve chips: the index's chip list is split into N contiguous
 *    slices; a worker serves StrategyIndex::sliceByChips of its
 *    slice. A query whose chip no shard owns (the predictive path) is
 *    routed to a deterministic home shard by chip-name hash; any home
 *    works because the k-NN example pool is replicated on every
 *    shard, so the predictive answer is shard-independent.
 *
 * Everything here is a pure function of (resource size, shard count):
 * coordinator, router and workers can each recompute ownership
 * locally and always agree.
 */
#ifndef GRAPHPORT_SHARD_PARTITION_HPP
#define GRAPHPORT_SHARD_PARTITION_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace graphport {
namespace shard {

/** Half-open row range [begin, end). */
struct WorkRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool contains(std::size_t row) const
    {
        return row >= begin && row < end;
    }
};

/**
 * Contiguous balanced range of shard @p shard out of @p shards over
 * @p rows rows: every shard gets rows/shards rows, the first
 * rows%shards shards one extra. Ranges tile [0, rows) exactly.
 */
WorkRange rangeOf(std::size_t shard, std::size_t shards,
                  std::size_t rows);

/** Inverse of rangeOf: which shard owns @p row. */
std::size_t ownerOfRow(std::size_t row, std::size_t shards,
                       std::size_t rows);

/** Chip-name slice shard @p shard serves (rangeOf over the list). */
std::vector<std::string> chipsOf(std::size_t shard,
                                 std::size_t shards,
                                 const std::vector<std::string> &chips);

/**
 * Home shard for a chip outside the index (predictive queries):
 * deterministic hash of the chip name modulo the shard count.
 */
std::size_t homeShardForUnknownChip(const std::string &chip,
                                    std::size_t shards);

/**
 * Reject inconsistent shard counts with the uniform cliopts error
 * format ("<cmd>: ..."): zero shards, or more shards than the index
 * has chips (a shard that owns no chip can answer nothing).
 */
void validateShardCount(const std::string &cmd, std::size_t shards,
                        std::size_t nChips);

/**
 * Reject a nonsensical --straggler-factor with the uniform cliopts
 * error format: the factor multiplies the median worker wall time, so
 * anything below 1 would declare the median itself a straggler, and
 * NaN/inf would make the verdict vacuous or unreachable.
 */
void validateStragglerFactor(const std::string &cmd, double factor);

/**
 * Drop every site whose name ends in ".crash" from a fault-spec
 * string, preserving the other clauses verbatim. Used when a
 * coordinator respawns a crashed worker (or a router respawns a dead
 * one): the crash already happened — replaying "sweep.crash:once=K"
 * into the replacement would kill it at the same cell forever, since
 * injection decisions are pure functions of (seed, site, key). Same
 * convention as the chaos-smoke CI job's resume-without-fault-spec.
 */
std::string stripCrashSites(const std::string &spec);

} // namespace shard
} // namespace graphport

#endif // GRAPHPORT_SHARD_PARTITION_HPP
