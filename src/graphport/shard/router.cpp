#include "graphport/shard/router.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "graphport/fault/injector.hpp"
#include "graphport/obs/metrics.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/shard/supervise.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/framing.hpp"

namespace graphport {
namespace shard {

Router::Router(std::vector<std::string> chips, RouterOptions options)
    : options_(std::move(options)), chips_(std::move(chips))
{
    fatalIf(chips_.empty(), "shard::Router: empty chip list");
    fatalIf(options_.shards == 0, "shard::Router: zero shards");
    fatalIf(options_.shards > chips_.size(),
            "shard::Router: " + std::to_string(options_.shards) +
                " shards for " + std::to_string(chips_.size()) +
                " chips");
    fatalIf(options_.baseWorkerArgv.empty(),
            "shard::Router: empty worker argv");
    for (std::size_t s = 0; s < options_.shards; ++s) {
        for (const std::string &chip :
             chipsOf(s, options_.shards, chips_)) {
            const bool inserted =
                chipShard_.emplace(chip, s).second;
            fatalIf(!inserted,
                    "shard::Router: duplicate chip '" + chip + "'");
        }
    }
    workers_.resize(options_.shards);
    scatter_.resize(options_.shards);
    pendingFrame_.resize(options_.shards);
    pendingKey_.resize(options_.shards);
    lifetimeRespawns_.assign(options_.shards, 0);
    consecutiveRespawns_.assign(options_.shards, 0);
    dead_.assign(options_.shards, 0);
    for (std::size_t s = 0; s < options_.shards; ++s)
        spawnWorker(s, options_.faultSpec);
}

Router::~Router()
{
    shutdown();
}

void
Router::spawnWorker(std::size_t shard, const std::string &spec)
{
    std::vector<std::string> argv = options_.baseWorkerArgv;
    argv.push_back("--index");
    argv.push_back(options_.indexPath);
    argv.push_back("--shard");
    argv.push_back(std::to_string(shard));
    argv.push_back("--shards");
    argv.push_back(std::to_string(options_.shards));
    if (!spec.empty()) {
        argv.push_back("--fault-spec");
        argv.push_back(spec);
    }
    workers_[shard] = support::spawnPiped(argv);
}

bool
Router::respawnWorker(std::size_t shard)
{
    (void)support::waitExit(workers_[shard]);
    if (lifetimeRespawns_[shard] >= options_.maxRespawns) {
        markShardDead(shard);
        return false;
    }
    std::fprintf(stderr,
                 "graphport: shard: serve worker %zu lost; "
                 "respawning with crash sites stripped\n",
                 shard);
    ++respawns_;
    ++lifetimeRespawns_[shard];
    // Capped exponential backoff: a worker that dies at startup
    // (e.g. shard.worker.die) burns its whole budget in well under a
    // second without fork-bombing the host.
    ::usleep(1000u * backoffMsFor(consecutiveRespawns_[shard]));
    ++consecutiveRespawns_[shard];
    spawnWorker(shard, stripCrashSites(options_.faultSpec));
    return true;
}

void
Router::markShardDead(std::size_t shard)
{
    if (dead_[shard])
        return;
    dead_[shard] = 1;
    support::killProcess(workers_[shard]);
    (void)support::waitExit(workers_[shard]);
    std::fprintf(stderr,
                 "graphport: shard: serve worker %zu exhausted its "
                 "respawn budget (%u); marking the shard permanently "
                 "dead — its chips will be served degraded from "
                 "live shards\n",
                 shard, options_.maxRespawns);
}

std::size_t
Router::shardOf(const std::string &chip) const
{
    const auto it = chipShard_.find(chip);
    if (it != chipShard_.end())
        return it->second;
    return homeShardForUnknownChip(chip, options_.shards);
}

std::size_t
Router::aliveShardFor(std::size_t shard) const
{
    for (std::size_t step = 1; step <= options_.shards; ++step) {
        const std::size_t s = (shard + step) % options_.shards;
        if (!dead_[s])
            return s;
    }
    fatal("shard::Router: every shard is dead; nothing can answer");
}

std::size_t
Router::deadShards() const
{
    std::size_t n = 0;
    for (char d : dead_)
        n += d != 0;
    return n;
}

void
Router::sendShardFrame(std::size_t shard)
{
    const std::uint64_t key = ++sendCounter_;
    pendingKey_[shard] = key;
    // Re-stamp the cached frame bytes with the fresh key (the header
    // sits right behind the frame kind byte and its padding).
    std::string &frame = pendingFrame_[shard];
    std::memcpy(frame.data() + 8, &key, sizeof key);
    const bool torn = fault::shouldInject("shard.frame.torn", key);
    ++framesSent_;
    if (torn)
        ++framesTorn_;
    if (!support::writeFrame(workers_[shard].stdinFd, frame, torn)) {
        // Worker already gone (EPIPE); the read side will respawn.
    }
}

Router::Reply
Router::gatherReply(std::size_t shard,
                    std::vector<WireAdvice> &advices)
{
    for (unsigned attempt = 0;;) {
        fatalIf(attempt > options_.respawns + 4,
                "shard::Router: shard " + std::to_string(shard) +
                    " failed to answer after " +
                    std::to_string(attempt) + " attempts");
        std::string payload;
        std::string cause;
        const support::FrameStatus st = support::readFrame(
            workers_[shard].stdoutFd, payload, cause);
        if (st == support::FrameStatus::Eof) {
            // Worker died (e.g. shard.worker.crash). Respawn with
            // the crash sites stripped and resend the batch — unless
            // its budget is gone, which declares the shard dead.
            ++attempt;
            if (!respawnWorker(shard))
                return Reply::Dead;
            sendShardFrame(shard);
            continue;
        }
        if (st == support::FrameStatus::Bad) {
            // The reply stream itself is defective; a framed pipe
            // has no resync point short of a fresh process.
            std::fprintf(stderr,
                         "graphport: shard: worker %zu reply "
                         "defective (%s); respawning\n",
                         shard, cause.c_str());
            ++attempt;
            if (!respawnWorker(shard))
                return Reply::Dead;
            sendShardFrame(shard);
            continue;
        }
        if (frameKind(payload) == 'h') {
            // A late liveness-ping echo interleaved before the
            // answer; skip it without charging an attempt.
            continue;
        }
        if (frameKind(payload) == 'e') {
            // The worker rejected our frame (torn on the wire).
            // Resend under a fresh key, which the torn site will not
            // fire on again unless the schedule says so.
            ++attempt;
            sendShardFrame(shard);
            continue;
        }
        std::uint64_t echoedKey = 0;
        if (!unpackAdviceFrame(payload, &echoedKey, &advices,
                               &cause)) {
            std::fprintf(stderr,
                         "graphport: shard: worker %zu sent a "
                         "malformed advice frame (%s); respawning\n",
                         shard, cause.c_str());
            ++attempt;
            if (!respawnWorker(shard))
                return Reply::Dead;
            sendShardFrame(shard);
            continue;
        }
        if (echoedKey != pendingKey_[shard] ||
            advices.size() != scatter_[shard].size()) {
            std::fprintf(stderr,
                         "graphport: shard: worker %zu reply "
                         "desynced (key %llu vs %llu, %zu of %zu "
                         "answers); respawning\n",
                         shard,
                         static_cast<unsigned long long>(echoedKey),
                         static_cast<unsigned long long>(
                             pendingKey_[shard]),
                         advices.size(), scatter_[shard].size());
            ++attempt;
            if (!respawnWorker(shard))
                return Reply::Dead;
            sendShardFrame(shard);
            continue;
        }
        consecutiveRespawns_[shard] = 0;
        return Reply::Ok;
    }
}

Router::Reply
Router::hedgedRace(std::size_t shard,
                   std::vector<WireAdvice> &advices)
{
    ++hedgesFired_;
    std::fprintf(stderr,
                 "graphport: shard: worker %zu silent past the "
                 "hedge deadline (%u ms, ping unanswered); racing a "
                 "replica\n",
                 shard, options_.hedgeMs);
    // The replica runs the same deterministic advise over the same
    // slice, so whichever copy answers, the answer bits are the
    // same; only run-dependent counters can differ.
    support::ChildProcess replica;
    {
        std::vector<std::string> argv = options_.baseWorkerArgv;
        argv.push_back("--index");
        argv.push_back(options_.indexPath);
        argv.push_back("--shard");
        argv.push_back(std::to_string(shard));
        argv.push_back("--shards");
        argv.push_back(std::to_string(options_.shards));
        const std::string spec =
            stripCrashSites(options_.faultSpec);
        if (!spec.empty()) {
            argv.push_back("--fault-spec");
            argv.push_back(spec);
        }
        replica = support::spawnPiped(argv);
    }
    std::uint64_t replicaKey = ++sendCounter_;
    {
        std::string frame = pendingFrame_[shard];
        std::memcpy(frame.data() + 8, &replicaKey,
                    sizeof replicaKey);
        ++framesSent_;
        (void)support::writeFrame(replica.stdinFd, frame);
    }

    const auto dropReplica = [&]() {
        support::killProcess(replica);
        (void)support::waitExit(replica);
    };

    bool primaryAlive = true;
    bool replicaAlive = true;
    std::string payload;
    std::string cause;
    unsigned silentRounds = 0;
    while (primaryAlive || replicaAlive) {
        std::vector<int> fds;
        std::vector<int> who;
        if (primaryAlive) {
            fds.push_back(workers_[shard].stdoutFd);
            who.push_back(0);
        }
        if (replicaAlive) {
            fds.push_back(replica.stdoutFd);
            who.push_back(1);
        }
        const int ready = support::waitReadable(fds, 200);
        if (ready < 0) {
            // Both contenders silent. A healthy replica answers a
            // small batch quickly; give the race a generous bound,
            // then abandon it for the respawn ladder.
            if (++silentRounds > 50)
                break;
            continue;
        }
        silentRounds = 0;
        const bool fromPrimary = who[ready] == 0;
        const int fd = fromPrimary ? workers_[shard].stdoutFd
                                   : replica.stdoutFd;
        const support::FrameStatus st =
            support::readFrame(fd, payload, cause);
        if (st != support::FrameStatus::Ok) {
            if (fromPrimary) {
                primaryAlive = false;
            } else {
                dropReplica();
                replicaAlive = false;
            }
            continue;
        }
        const char kind = frameKind(payload);
        if (kind == 'h')
            continue; // the ping echo that arrived too late
        if (kind == 'e') {
            // Torn on the wire; resend to that contender only.
            if (fromPrimary) {
                sendShardFrame(shard);
            } else {
                replicaKey = ++sendCounter_;
                std::string frame = pendingFrame_[shard];
                std::memcpy(frame.data() + 8, &replicaKey,
                            sizeof replicaKey);
                ++framesSent_;
                (void)support::writeFrame(replica.stdinFd, frame);
            }
            continue;
        }
        std::uint64_t echoedKey = 0;
        const std::uint64_t wantKey =
            fromPrimary ? pendingKey_[shard] : replicaKey;
        if (!unpackAdviceFrame(payload, &echoedKey, &advices,
                               &cause) ||
            echoedKey != wantKey ||
            advices.size() != scatter_[shard].size()) {
            if (fromPrimary) {
                support::killProcess(workers_[shard]);
                primaryAlive = false;
            } else {
                dropReplica();
                replicaAlive = false;
            }
            continue;
        }
        // A valid answer: first across the line wins, loser dies.
        if (fromPrimary) {
            ++hedgePrimaryWon_;
            dropReplica();
        } else {
            ++hedgeReplicaWon_;
            support::killProcess(workers_[shard]);
            (void)support::waitExit(workers_[shard]);
            workers_[shard] = replica;
            pendingKey_[shard] = replicaKey;
        }
        consecutiveRespawns_[shard] = 0;
        return Reply::Ok;
    }
    // Both contenders gone (or the race timed out): kill whatever is
    // left and fall back to the plain respawn ladder.
    if (replicaAlive || replica.pid >= 0)
        dropReplica();
    support::killProcess(workers_[shard]);
    if (!respawnWorker(shard))
        return Reply::Dead;
    sendShardFrame(shard);
    return gatherReply(shard, advices);
}

Router::Reply
Router::readShardReply(std::size_t shard,
                       std::vector<WireAdvice> &advices)
{
    if (options_.hedgeMs != 0) {
        const std::vector<int> fd = {workers_[shard].stdoutFd};
        if (support::waitReadable(
                fd, static_cast<int>(options_.hedgeMs)) < 0) {
            // Silent past the virtual deadline. Ping first: an
            // idle-but-alive worker echoes 'h' instantly, and only a
            // wedged one stays silent through the grace period.
            (void)support::writeFrame(
                workers_[shard].stdinFd,
                packHeartbeatFrame(++pingCounter_, 0));
            if (support::waitReadable(
                    fd, static_cast<int>(options_.hedgeMs)) < 0) {
                ++hedgeStallVerdicts_;
                return hedgedRace(shard, advices);
            }
        }
    }
    return gatherReply(shard, advices);
}

void
Router::routeWire(const std::vector<serve::Query> &queries,
                  const std::vector<std::uint64_t> &keys,
                  std::vector<WireAdvice> &out)
{
    panicIf(queries.size() != keys.size(),
            "shard::Router: queries/keys size mismatch");
    out.resize(queries.size());
    for (std::vector<std::size_t> &s : scatter_)
        s.clear();
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const std::size_t owner = shardOf(queries[i].chip);
        // A dead owner's chips are served by a live shard: its slice
        // keeps every chip-free tier and the full k-NN pool, so the
        // (degraded) answer is shard-independent.
        scatter_[dead_[owner] ? aliveShardFor(owner) : owner]
            .push_back(i);
    }

    // Send every shard's frame before reading any reply: the workers
    // price their slices concurrently, which is the whole point of
    // sharding the serve path.
    for (std::size_t s = 0; s < options_.shards; ++s) {
        if (scatter_[s].empty())
            continue;
        pendingFrame_[s] =
            packQueryFrame(0, queries, keys, scatter_[s]);
        sendShardFrame(s);
    }
    std::vector<WireAdvice> advices;
    std::vector<std::size_t> orphaned;
    for (std::size_t s = 0; s < options_.shards; ++s) {
        if (scatter_[s].empty())
            continue;
        if (readShardReply(s, advices) == Reply::Dead) {
            // The shard died permanently mid-batch: its scatter set
            // is redispatched to a live shard below.
            orphaned.insert(orphaned.end(), scatter_[s].begin(),
                            scatter_[s].end());
            scatter_[s].clear();
            continue;
        }
        for (std::size_t k = 0; k < advices.size(); ++k)
            out[scatter_[s][k]] = advices[k];
    }
    std::size_t retryFrom = 0;
    while (!orphaned.empty()) {
        ++redispatches_;
        const std::size_t target = aliveShardFor(retryFrom);
        scatter_[target] = orphaned;
        pendingFrame_[target] =
            packQueryFrame(0, queries, keys, scatter_[target]);
        sendShardFrame(target);
        if (readShardReply(target, advices) == Reply::Dead) {
            retryFrom = target;
            continue;
        }
        for (std::size_t k = 0; k < advices.size(); ++k)
            out[scatter_[target][k]] = advices[k];
        orphaned.clear();
    }

    // Label (and count) every answer whose owning shard is dead; the
    // router stamps this, never a worker — the worker that answered
    // has no idea it was standing in for a corpse.
    for (std::size_t i = 0; i < queries.size(); ++i) {
        if (dead_[shardOf(queries[i].chip)]) {
            out[i].shardDegraded = 1;
            ++degradedQueries_;
        }
    }
    queriesRouted_ += queries.size();
    ++batches_;
}

std::vector<serve::Advice>
Router::route(const std::vector<serve::Query> &queries,
              const std::vector<std::uint64_t> &keys)
{
    std::vector<WireAdvice> wire;
    routeWire(queries, keys, wire);
    std::vector<serve::Advice> advices;
    advices.reserve(wire.size());
    for (const WireAdvice &w : wire)
        advices.push_back(adviceFromWire(w));
    return advices;
}

void
Router::shutdown()
{
    if (shutdownDone_)
        return;
    shutdownDone_ = true;
    const std::string bye = packShutdownFrame();
    for (support::ChildProcess &worker : workers_) {
        if (worker.pid < 0)
            continue;
        (void)support::writeFrame(worker.stdinFd, bye);
        (void)support::waitExit(worker);
    }
}

void
Router::mergeMetrics(obs::MetricsRegistry &metrics) const
{
    obs::MetricsRegistry local;
    local.counter("shard.route.batches").add(batches_);
    local.counter("shard.route.queries").add(queriesRouted_);
    local.counter("shard.route.frames_sent").add(framesSent_);
    local.counter("shard.route.frames_torn").add(framesTorn_);
    local.counter("shard.route.worker_respawns").add(respawns_);
    local.counter("shard.route.redispatches").add(redispatches_);
    local.counter("shard.hedge.fired").add(hedgesFired_);
    local.counter("shard.hedge.primary_won").add(hedgePrimaryWon_);
    local.counter("shard.hedge.replica_won").add(hedgeReplicaWon_);
    local.counter("shard.hedge.stall_verdicts")
        .add(hedgeStallVerdicts_);
    local.counter("shard.dead.shards").add(deadShards());
    local.counter("shard.dead.degraded_queries")
        .add(degradedQueries_);
    metrics.merge(local);
}

serve::OpenLoopResult
routerOpenLoop(Router &router,
               const std::vector<serve::Query> &queries,
               const std::vector<std::uint64_t> &keys,
               double targetQps, std::uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    constexpr std::size_t kMaxBatch = 512;

    serve::OpenLoopResult result;
    result.targetQps = targetQps;
    result.queries = queries.size();
    if (queries.empty())
        return result;

    const std::vector<std::uint64_t> schedule =
        serve::makeArrivalScheduleNs(queries.size(), targetQps,
                                     seed);
    result.offeredQps = static_cast<double>(queries.size()) /
                        (static_cast<double>(schedule.back()) * 1e-9 +
                         1e-12);

    // Warm pass: worker LRUs and scratch, off the clock.
    {
        std::vector<WireAdvice> warm;
        router.routeWire(queries, keys, warm);
    }

    std::vector<serve::Query> batch;
    std::vector<std::uint64_t> batchKeys;
    std::vector<std::uint64_t> batchIntended;
    std::vector<WireAdvice> answers;
    const Clock::time_point t0 = Clock::now();
    std::size_t next = 0;
    while (next < queries.size()) {
        const std::uint64_t nowNs =
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count());
        if (nowNs < schedule[next]) {
            // Nothing due yet; the open loop waits for the schedule,
            // never the other way round.
            continue;
        }
        batch.clear();
        batchKeys.clear();
        batchIntended.clear();
        while (next < queries.size() && schedule[next] <= nowNs &&
               batch.size() < kMaxBatch) {
            batch.push_back(queries[next]);
            batchKeys.push_back(keys[next]);
            batchIntended.push_back(schedule[next]);
            ++next;
        }
        const Clock::time_point sent = Clock::now();
        router.routeWire(batch, batchKeys, answers);
        const std::uint64_t doneNs =
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count());
        const double serviceNs =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - sent)
                    .count()) /
            static_cast<double>(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            // Coordinated-omission safe: latency from the intended
            // send time, so queueing behind a slow batch is charged.
            result.latency.record(static_cast<double>(
                doneNs - batchIntended[i]));
            result.serviceTime.record(serviceNs);
        }
    }
    result.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.achievedQps =
        static_cast<double>(queries.size()) / result.wallSeconds;
    result.keptUp = result.achievedQps >= 0.97 * result.offeredQps;
    return result;
}

} // namespace shard
} // namespace graphport
