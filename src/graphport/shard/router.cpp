#include "graphport/shard/router.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "graphport/fault/injector.hpp"
#include "graphport/obs/metrics.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/framing.hpp"

namespace graphport {
namespace shard {

Router::Router(std::vector<std::string> chips, RouterOptions options)
    : options_(std::move(options)), chips_(std::move(chips))
{
    fatalIf(chips_.empty(), "shard::Router: empty chip list");
    fatalIf(options_.shards == 0, "shard::Router: zero shards");
    fatalIf(options_.shards > chips_.size(),
            "shard::Router: " + std::to_string(options_.shards) +
                " shards for " + std::to_string(chips_.size()) +
                " chips");
    fatalIf(options_.baseWorkerArgv.empty(),
            "shard::Router: empty worker argv");
    for (std::size_t s = 0; s < options_.shards; ++s) {
        for (const std::string &chip :
             chipsOf(s, options_.shards, chips_)) {
            const bool inserted =
                chipShard_.emplace(chip, s).second;
            fatalIf(!inserted,
                    "shard::Router: duplicate chip '" + chip + "'");
        }
    }
    workers_.resize(options_.shards);
    scatter_.resize(options_.shards);
    pendingFrame_.resize(options_.shards);
    pendingKey_.resize(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s)
        spawnWorker(s, options_.faultSpec);
}

Router::~Router()
{
    shutdown();
}

void
Router::spawnWorker(std::size_t shard, const std::string &spec)
{
    std::vector<std::string> argv = options_.baseWorkerArgv;
    argv.push_back("--index");
    argv.push_back(options_.indexPath);
    argv.push_back("--shard");
    argv.push_back(std::to_string(shard));
    argv.push_back("--shards");
    argv.push_back(std::to_string(options_.shards));
    if (!spec.empty()) {
        argv.push_back("--fault-spec");
        argv.push_back(spec);
    }
    workers_[shard] = support::spawnPiped(argv);
}

void
Router::respawnWorker(std::size_t shard)
{
    std::fprintf(stderr,
                 "graphport: shard: serve worker %zu lost; "
                 "respawning with crash sites stripped\n",
                 shard);
    (void)support::waitExit(workers_[shard]);
    ++respawns_;
    spawnWorker(shard, stripCrashSites(options_.faultSpec));
}

std::size_t
Router::shardOf(const std::string &chip) const
{
    const auto it = chipShard_.find(chip);
    if (it != chipShard_.end())
        return it->second;
    return homeShardForUnknownChip(chip, options_.shards);
}

void
Router::sendShardFrame(std::size_t shard)
{
    const std::uint64_t key = ++sendCounter_;
    pendingKey_[shard] = key;
    // Re-stamp the cached frame bytes with the fresh key (the header
    // sits right behind the frame kind byte and its padding).
    std::string &frame = pendingFrame_[shard];
    std::memcpy(frame.data() + 8, &key, sizeof key);
    const bool torn = fault::shouldInject("shard.frame.torn", key);
    ++framesSent_;
    if (torn)
        ++framesTorn_;
    if (!support::writeFrame(workers_[shard].stdinFd, frame, torn)) {
        // Worker already gone (EPIPE); the read side will respawn.
    }
}

void
Router::readShardReply(std::size_t shard,
                       std::vector<WireAdvice> &advices)
{
    for (unsigned attempt = 0;; ++attempt) {
        fatalIf(attempt > options_.respawns + 4,
                "shard::Router: shard " + std::to_string(shard) +
                    " failed to answer after " +
                    std::to_string(attempt) + " attempts");
        std::string payload;
        std::string cause;
        const support::FrameStatus st = support::readFrame(
            workers_[shard].stdoutFd, payload, cause);
        if (st == support::FrameStatus::Eof) {
            // Worker died (e.g. shard.worker.crash). Respawn with
            // the crash sites stripped and resend the batch.
            respawnWorker(shard);
            sendShardFrame(shard);
            continue;
        }
        if (st == support::FrameStatus::Bad) {
            // The reply stream itself is defective; a framed pipe
            // has no resync point short of a fresh process.
            std::fprintf(stderr,
                         "graphport: shard: worker %zu reply "
                         "defective (%s); respawning\n",
                         shard, cause.c_str());
            respawnWorker(shard);
            sendShardFrame(shard);
            continue;
        }
        if (frameKind(payload) == 'e') {
            // The worker rejected our frame (torn on the wire).
            // Resend under a fresh key, which the torn site will not
            // fire on again unless the schedule says so.
            sendShardFrame(shard);
            continue;
        }
        std::uint64_t echoedKey = 0;
        if (!unpackAdviceFrame(payload, &echoedKey, &advices,
                               &cause)) {
            std::fprintf(stderr,
                         "graphport: shard: worker %zu sent a "
                         "malformed advice frame (%s); respawning\n",
                         shard, cause.c_str());
            respawnWorker(shard);
            sendShardFrame(shard);
            continue;
        }
        if (echoedKey != pendingKey_[shard] ||
            advices.size() != scatter_[shard].size()) {
            std::fprintf(stderr,
                         "graphport: shard: worker %zu reply "
                         "desynced (key %llu vs %llu, %zu of %zu "
                         "answers); respawning\n",
                         shard,
                         static_cast<unsigned long long>(echoedKey),
                         static_cast<unsigned long long>(
                             pendingKey_[shard]),
                         advices.size(), scatter_[shard].size());
            respawnWorker(shard);
            sendShardFrame(shard);
            continue;
        }
        return;
    }
}

void
Router::routeWire(const std::vector<serve::Query> &queries,
                  const std::vector<std::uint64_t> &keys,
                  std::vector<WireAdvice> &out)
{
    panicIf(queries.size() != keys.size(),
            "shard::Router: queries/keys size mismatch");
    out.resize(queries.size());
    for (std::vector<std::size_t> &s : scatter_)
        s.clear();
    for (std::size_t i = 0; i < queries.size(); ++i)
        scatter_[shardOf(queries[i].chip)].push_back(i);

    // Send every shard's frame before reading any reply: the workers
    // price their slices concurrently, which is the whole point of
    // sharding the serve path.
    for (std::size_t s = 0; s < options_.shards; ++s) {
        if (scatter_[s].empty())
            continue;
        pendingFrame_[s] =
            packQueryFrame(0, queries, keys, scatter_[s]);
        sendShardFrame(s);
    }
    std::vector<WireAdvice> advices;
    for (std::size_t s = 0; s < options_.shards; ++s) {
        if (scatter_[s].empty())
            continue;
        readShardReply(s, advices);
        for (std::size_t k = 0; k < advices.size(); ++k)
            out[scatter_[s][k]] = advices[k];
    }
    queriesRouted_ += queries.size();
    ++batches_;
}

std::vector<serve::Advice>
Router::route(const std::vector<serve::Query> &queries,
              const std::vector<std::uint64_t> &keys)
{
    std::vector<WireAdvice> wire;
    routeWire(queries, keys, wire);
    std::vector<serve::Advice> advices;
    advices.reserve(wire.size());
    for (const WireAdvice &w : wire)
        advices.push_back(adviceFromWire(w));
    return advices;
}

void
Router::shutdown()
{
    if (shutdownDone_)
        return;
    shutdownDone_ = true;
    const std::string bye = packShutdownFrame();
    for (support::ChildProcess &worker : workers_) {
        if (worker.pid < 0)
            continue;
        (void)support::writeFrame(worker.stdinFd, bye);
        (void)support::waitExit(worker);
    }
}

void
Router::mergeMetrics(obs::MetricsRegistry &metrics) const
{
    obs::MetricsRegistry local;
    local.counter("shard.route.batches").add(batches_);
    local.counter("shard.route.queries").add(queriesRouted_);
    local.counter("shard.route.frames_sent").add(framesSent_);
    local.counter("shard.route.frames_torn").add(framesTorn_);
    local.counter("shard.route.worker_respawns").add(respawns_);
    metrics.merge(local);
}

serve::OpenLoopResult
routerOpenLoop(Router &router,
               const std::vector<serve::Query> &queries,
               const std::vector<std::uint64_t> &keys,
               double targetQps, std::uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    constexpr std::size_t kMaxBatch = 512;

    serve::OpenLoopResult result;
    result.targetQps = targetQps;
    result.queries = queries.size();
    if (queries.empty())
        return result;

    const std::vector<std::uint64_t> schedule =
        serve::makeArrivalScheduleNs(queries.size(), targetQps,
                                     seed);
    result.offeredQps = static_cast<double>(queries.size()) /
                        (static_cast<double>(schedule.back()) * 1e-9 +
                         1e-12);

    // Warm pass: worker LRUs and scratch, off the clock.
    {
        std::vector<WireAdvice> warm;
        router.routeWire(queries, keys, warm);
    }

    std::vector<serve::Query> batch;
    std::vector<std::uint64_t> batchKeys;
    std::vector<std::uint64_t> batchIntended;
    std::vector<WireAdvice> answers;
    const Clock::time_point t0 = Clock::now();
    std::size_t next = 0;
    while (next < queries.size()) {
        const std::uint64_t nowNs =
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count());
        if (nowNs < schedule[next]) {
            // Nothing due yet; the open loop waits for the schedule,
            // never the other way round.
            continue;
        }
        batch.clear();
        batchKeys.clear();
        batchIntended.clear();
        while (next < queries.size() && schedule[next] <= nowNs &&
               batch.size() < kMaxBatch) {
            batch.push_back(queries[next]);
            batchKeys.push_back(keys[next]);
            batchIntended.push_back(schedule[next]);
            ++next;
        }
        const Clock::time_point sent = Clock::now();
        router.routeWire(batch, batchKeys, answers);
        const std::uint64_t doneNs =
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count());
        const double serviceNs =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - sent)
                    .count()) /
            static_cast<double>(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            // Coordinated-omission safe: latency from the intended
            // send time, so queueing behind a slow batch is charged.
            result.latency.record(static_cast<double>(
                doneNs - batchIntended[i]));
            result.serviceTime.record(serviceNs);
        }
    }
    result.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.achievedQps =
        static_cast<double>(queries.size()) / result.wallSeconds;
    result.keptUp = result.achievedQps >= 0.97 * result.offeredQps;
    return result;
}

} // namespace shard
} // namespace graphport
