/**
 * @file
 * Payload codec for the router <-> serve-worker frames (the frame
 * envelope itself — magic, length, checksum — is
 * support/framing.hpp). Payloads are packed POD records, not text:
 * the router touches every query twice (scatter out, gather back), so
 * its per-query cost must stay far below one advise, or fanning out
 * to N processes could never beat one. Both ends are the same binary
 * on the same machine, so raw struct bytes are exact and cheap;
 * doubles travel as bit patterns and tiers as dense IDs.
 *
 * Frame kinds (first payload byte):
 *   'q'  query batch   header + WireQuery[count]
 *   'a'  advice batch  header + WireAdvice[count]
 *   'e'  error         header + cause text (count = byte length)
 *   'x'  shutdown      header only
 *   'h'  heartbeat     header only (frameKey = sender identity,
 *                      count = progress). Doubles as the liveness
 *                      ping: a serve worker echoes any 'h' frame it
 *                      receives verbatim, so the router can tell an
 *                      idle-but-alive worker from a wedged one; a
 *                      sweep worker emits one per checkpoint flush
 *                      as its progress pulse to the supervisor.
 *
 * A query batch's frameKey is the router's global send counter — the
 * key the "shard.worker.crash" site is checked against, so a fault
 * spec can say "kill the worker serving frame K" and mean it
 * deterministically.
 */
#ifndef GRAPHPORT_SHARD_WIRE_HPP
#define GRAPHPORT_SHARD_WIRE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graphport/serve/advisor.hpp"

namespace graphport {
namespace shard {

/** Max name / partition-key bytes on the wire (incl. terminator). */
constexpr std::size_t kWireNameCap = 48;
constexpr std::size_t kWirePartitionCap = 152;

/** One routed query (fixed-size; names are NUL-terminated). */
struct WireQuery
{
    std::uint64_t key = 0; ///< adviseResilient query key
    char app[kWireNameCap] = {};
    char input[kWireNameCap] = {};
    char chip[kWireNameCap] = {};
};

/** One answer, carrying every field Advice::sameAnswer compares. */
struct WireAdvice
{
    std::uint64_t expectedBits = 0;    ///< expectedSlowdownVsOracle
    std::uint64_t partitionBits = 0;   ///< partitionSlowdownVsOracle
    std::uint64_t portabilityBits = 0; ///< portabilityCostVsOracle
    std::uint32_t config = 0;
    std::uint32_t degradeSteps = 0;
    std::uint32_t retries = 0;
    std::uint32_t portfolioMember = 0;
    std::uint8_t tierId = 0;
    std::uint8_t intendedTierId = 0;
    std::uint8_t predictive = 0;
    std::uint8_t degraded = 0;
    std::uint8_t featureSource = 0;
    /**
     * Stamped by the *router*, never by a worker: 1 when the chip's
     * owning shard was declared permanently dead and this answer
     * came from a live shard's replicated chip-free/predictive
     * ladder instead.
     */
    std::uint8_t shardDegraded = 0;
    char partition[kWirePartitionCap] = {};
};

/** Inflate a wire answer back into the string-bearing Advice. */
serve::Advice adviceFromWire(const WireAdvice &w);

/** Pack an Advice (fatal when the partition key overflows the cap). */
WireAdvice adviceToWire(const serve::Advice &a);

/**
 * Pack queries[i] / keys[i] for each i in @p indices (the scatter
 * set one shard owns out of a batch).
 */
std::string packQueryFrame(std::uint64_t frameKey,
                           const std::vector<serve::Query> &queries,
                           const std::vector<std::uint64_t> &keys,
                           const std::vector<std::size_t> &indices);

bool unpackQueryFrame(const std::string &payload,
                      std::uint64_t *frameKey,
                      std::vector<serve::Query> *queries,
                      std::vector<std::uint64_t> *keys,
                      std::string *cause);

std::string packAdviceFrame(std::uint64_t frameKey,
                            const std::vector<WireAdvice> &advices);

bool unpackAdviceFrame(const std::string &payload,
                       std::uint64_t *frameKey,
                       std::vector<WireAdvice> *advices,
                       std::string *cause);

std::string packErrorFrame(const std::string &cause);
std::string packShutdownFrame();

/**
 * Heartbeat / liveness ping: @p key names the sender (shard index on
 * the sweep pulse path, the router's ping counter on the serve ping
 * path); @p progress is the sender's monotone progress figure
 * (cells priced; 0 for pings).
 */
std::string packHeartbeatFrame(std::uint64_t key,
                               std::uint64_t progress);

bool unpackHeartbeatFrame(const std::string &payload,
                          std::uint64_t *key,
                          std::uint64_t *progress,
                          std::string *cause);

/** First payload byte ('q'/'a'/'e'/'x'/'h'), or 0 when empty. */
char frameKind(const std::string &payload);

/** Cause text of an 'e' frame (empty for other kinds). */
std::string frameErrorCause(const std::string &payload);

} // namespace shard
} // namespace graphport

#endif // GRAPHPORT_SHARD_WIRE_HPP
