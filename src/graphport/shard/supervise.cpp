#include "graphport/shard/supervise.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <sys/stat.h>
#include <unistd.h>

#include "graphport/fault/injector.hpp"
#include "graphport/shard/wire.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/framing.hpp"
#include "graphport/support/proc.hpp"

namespace graphport {
namespace shard {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Current byte size of @p path, or -1 when it does not exist. */
long
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<long>(st.st_size);
}

/** One worker the supervision loop owns (primary or thief). */
struct Ward
{
    std::size_t shard = 0;        ///< --shard value (range identity)
    std::string checkpointPath;
    std::size_t workBegin = kWorkUnset; ///< explicit steal range,
    std::size_t workEnd = kWorkUnset;   ///< or kWorkUnset pair
    std::uint64_t stallKey = 0;   ///< "shard.worker.stall" key
    std::string label;            ///< for diagnostics

    support::ChildProcess child;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point lastPulse;
    long lastSize = -1;
    unsigned attempts = 0;
    bool done = false;
    bool stalled = false;
    double wallSeconds = 0.0;
};

struct GenerationKnobs
{
    const std::vector<std::string> *baseArgv = nullptr;
    std::size_t shards = 0;
    unsigned threads = 1;
    std::size_t checkpointEvery = 256;
    std::string faultSpec;
    std::string retrySpec;
    unsigned stallAfterMs = 0;
    unsigned retries = 0;
    bool fatalOnStall = false;
};

void
spawnWard(Ward &w, const GenerationKnobs &k, const std::string &spec)
{
    const std::vector<std::string> argv = sweepWorkerArgv(
        *k.baseArgv, w.shard, k.shards, k.threads, w.checkpointPath,
        k.checkpointEvery, spec, /*heartbeat=*/true, w.workBegin,
        w.workEnd);
    w.child = support::spawnPiped(argv);
    w.start = w.lastPulse = std::chrono::steady_clock::now();
    w.lastSize = fileSize(w.checkpointPath);
    w.attempts += 1;
    // The stall site fires here, in the supervisor, at spawn time:
    // SIGSTOP makes the worker a *real* frozen process — pipes held
    // open, never exiting — the failure mode crash injection cannot
    // express. Keyed by stallKey so schedules aimed at primary shard
    // S ("once=S") cannot re-fire on the thieves that replace it.
    if (fault::shouldInject("shard.worker.stall", w.stallKey)) {
        std::fprintf(stderr,
                     "graphport: shard: injecting stall (SIGSTOP) "
                     "into %s\n",
                     w.label.c_str());
        support::pauseProcess(w.child);
    }
}

/**
 * Run every ward to completion (or verdict). The loop interleaves
 * four observations at a ~20ms cadence: drain heartbeat frames, reap
 * exits (retrying exit-137 crashes within the budget), stat .gpk
 * growth, and issue stall verdicts for wards with no pulse inside
 * stallAfterMs. A verdicted ward is SIGKILLed and left marked
 * `stalled` for the caller to steal from — unless fatalOnStall (the
 * steal generation), where a second-order stall has no recovery left.
 */
void
superviseGeneration(std::vector<Ward> &wards,
                    const GenerationKnobs &k, SuperviseStats *stats)
{
    for (Ward &w : wards)
        spawnWard(w, k, k.faultSpec);

    std::size_t live = wards.size();
    std::string payload;
    std::string cause;
    while (live != 0) {
        // 1. Drain one heartbeat (any readable ward stdout).
        std::vector<int> fds;
        std::vector<std::size_t> owner;
        for (std::size_t i = 0; i < wards.size(); ++i) {
            if (!wards[i].done && wards[i].child.stdoutFd >= 0) {
                fds.push_back(wards[i].child.stdoutFd);
                owner.push_back(i);
            }
        }
        if (fds.empty()) {
            ::usleep(5000);
        } else {
            const int ready = support::waitReadable(fds, 20);
            if (ready >= 0) {
                Ward &w = wards[owner[ready]];
                const support::FrameStatus st = support::readFrame(
                    w.child.stdoutFd, payload, cause);
                if (st == support::FrameStatus::Ok) {
                    w.lastPulse = std::chrono::steady_clock::now();
                    std::uint64_t key = 0;
                    std::uint64_t progress = 0;
                    if (unpackHeartbeatFrame(payload, &key, &progress,
                                             &cause))
                        stats->heartbeats += 1;
                } else if (st == support::FrameStatus::Eof) {
                    // Stdout closed: the worker is exiting — stop
                    // polling the fd and let the reap below see it.
                    ::close(w.child.stdoutFd);
                    w.child.stdoutFd = -1;
                    w.lastPulse = std::chrono::steady_clock::now();
                } else {
                    // A torn frame still proves bytes are flowing;
                    // liveness is this channel's only job.
                    w.lastPulse = std::chrono::steady_clock::now();
                }
            }
        }

        for (Ward &w : wards) {
            if (w.done)
                continue;

            // 2. Reap exits without blocking on the stopped ones.
            int exitCode = 0;
            if (w.child.pid >= 0 &&
                support::waitExitFor(w.child, 0, &exitCode) ==
                    support::WaitStatus::Exited) {
                if (exitCode == 0) {
                    w.wallSeconds = secondsSince(w.start);
                    w.done = true;
                    --live;
                    continue;
                }
                fatalIf(exitCode != 137,
                        "shardedSweep: " + w.label +
                            " exited with code " +
                            std::to_string(exitCode));
                fatalIf(w.attempts > k.retries,
                        "shardedSweep: " + w.label + " crashed " +
                            std::to_string(w.attempts) +
                            " times (retry budget " +
                            std::to_string(k.retries) + ")");
                std::fprintf(
                    stderr,
                    "graphport: shard: %s crashed (exit 137); "
                    "respawning with crash sites stripped\n",
                    w.label.c_str());
                stats->retriesUsed += 1;
                ::usleep(1000u *
                         backoffMsFor(w.attempts - 1));
                spawnWard(w, k, k.retrySpec);
                continue;
            }

            // 3. Checkpoint growth is a pulse even when the
            // heartbeat pipe is wedged.
            const long size = fileSize(w.checkpointPath);
            if (size > w.lastSize) {
                w.lastSize = size;
                w.lastPulse = std::chrono::steady_clock::now();
            }

            // 4. Stall verdict: no pulse on either channel within
            // the deadline.
            if (secondsSince(w.lastPulse) * 1000.0 >=
                static_cast<double>(k.stallAfterMs)) {
                stats->stallVerdicts += 1;
                std::fprintf(stderr,
                             "graphport: shard: %s stalled (no "
                             "heartbeat or checkpoint growth for "
                             "%u ms); killing it\n",
                             w.label.c_str(), k.stallAfterMs);
                fatalIf(k.fatalOnStall,
                        "shardedSweep: " + w.label +
                            " stalled; a steal worker cannot be "
                            "re-stolen");
                // SIGKILL cannot be blocked by a stopped process;
                // the reap below must therefore succeed promptly.
                support::killProcess(w.child);
                int ignored = 0;
                fatalIf(support::waitExitFor(w.child, 5000,
                                             &ignored) !=
                            support::WaitStatus::Exited,
                        "shardedSweep: " + w.label +
                            " survived SIGKILL");
                w.wallSeconds = secondsSince(w.start);
                w.stalled = true;
                w.done = true;
                --live;
            }
        }
    }
}

} // namespace

unsigned
backoffMsFor(unsigned consecutive, unsigned baseMs, unsigned capMs)
{
    unsigned ms = baseMs;
    for (unsigned i = 0; i < consecutive && ms < capMs; ++i)
        ms *= 2;
    return std::min(ms, capMs);
}

std::vector<std::string>
sweepWorkerArgv(const std::vector<std::string> &base,
                std::size_t shard, std::size_t shards,
                unsigned threads, const std::string &checkpointPath,
                std::size_t checkpointEvery,
                const std::string &faultSpec, bool heartbeat,
                std::size_t workBegin, std::size_t workEnd)
{
    std::vector<std::string> argv = base;
    argv.push_back("--shard");
    argv.push_back(std::to_string(shard));
    argv.push_back("--shards");
    argv.push_back(std::to_string(shards));
    argv.push_back("--threads");
    argv.push_back(std::to_string(threads));
    argv.push_back("--checkpoint");
    argv.push_back(checkpointPath);
    argv.push_back("--checkpoint-every");
    argv.push_back(std::to_string(checkpointEvery));
    if (!faultSpec.empty()) {
        argv.push_back("--fault-spec");
        argv.push_back(faultSpec);
    }
    if (heartbeat)
        argv.push_back("--heartbeat");
    if (workBegin != kWorkUnset || workEnd != kWorkUnset) {
        panicIf(workBegin == kWorkUnset || workEnd == kWorkUnset,
                "sweepWorkerArgv: half-specified work range");
        argv.push_back("--work-begin");
        argv.push_back(std::to_string(workBegin));
        argv.push_back("--work-end");
        argv.push_back(std::to_string(workEnd));
    }
    return argv;
}

StealPlan
planSteal(const WorkRange &victim, std::size_t durableEnd,
          std::size_t thieves, std::size_t overlapCap)
{
    panicIf(thieves == 0, "planSteal: zero thieves");
    const std::size_t durable =
        std::min(std::max(durableEnd, victim.begin), victim.end);
    StealPlan plan;
    plan.overlapCells = std::min(overlapCap, durable - victim.begin);
    plan.stealBegin = durable - plan.overlapCells;
    const std::size_t total = victim.end - plan.stealBegin;
    for (std::size_t j = 0; j < thieves; ++j) {
        WorkRange r = rangeOf(j, thieves, total);
        r.begin += plan.stealBegin;
        r.end += plan.stealBegin;
        if (r.size() != 0)
            plan.thiefRanges.push_back(r);
    }
    return plan;
}

std::vector<std::string>
superviseSweep(const runner::Universe &universe,
               const SweepShardOptions &options, std::size_t items,
               SuperviseStats *stats)
{
    panicIf(options.stallAfterMs == 0,
            "superviseSweep: zero stall deadline");
    GenerationKnobs knobs;
    knobs.baseArgv = &options.baseWorkerArgv;
    knobs.shards = options.shards;
    knobs.threads = options.workerThreads;
    knobs.checkpointEvery = options.checkpointEvery;
    knobs.faultSpec = options.faultSpec;
    knobs.retrySpec = stripCrashSites(options.faultSpec);
    knobs.stallAfterMs = options.stallAfterMs;
    knobs.retries = options.retries;

    std::vector<Ward> primaries(options.shards);
    for (std::size_t s = 0; s < options.shards; ++s) {
        Ward &w = primaries[s];
        w.shard = s;
        w.checkpointPath = shardCheckpointPath(options.shardDir, s,
                                               options.shards);
        w.stallKey = s;
        w.label = "worker " + std::to_string(s);
    }
    superviseGeneration(primaries, knobs, stats);

    stats->wallSeconds.clear();
    for (const Ward &w : primaries)
        stats->wallSeconds.push_back(w.wallSeconds);

    std::vector<std::string> paths;
    std::size_t finished = 0;
    for (const Ward &w : primaries) {
        if (!w.stalled) {
            paths.push_back(w.checkpointPath);
            ++finished;
        }
    }
    if (finished == options.shards)
        return paths; // no victims: nothing to steal

    // Work-stealing resweep: each victim's unwritten suffix (plus a
    // verified overlap) is re-partitioned across as many thieves as
    // workers finished cleanly — they have proven throughput and
    // idle processes now.
    const std::size_t thieves = std::max<std::size_t>(1, finished);
    std::vector<Ward> stealWards;
    std::size_t stealIdx = 0;
    for (const Ward &victim : primaries) {
        if (!victim.stalled)
            continue;
        stats->stealVictims += 1;
        std::size_t durableEnd = 0;
        runner::Dataset::pruneShardCheckpoint(
            universe, victim.checkpointPath, &durableEnd);
        if (durableEnd != 0)
            paths.push_back(victim.checkpointPath);
        const WorkRange range =
            rangeOf(victim.shard, options.shards, items);
        const StealPlan plan =
            planSteal(range, durableEnd, thieves);
        stats->overlapCells += plan.overlapCells;
        std::fprintf(stderr,
                     "graphport: shard: stealing rows [%zu, %zu) of "
                     "worker %zu across %zu thieves (%zu overlap "
                     "rows re-verified)\n",
                     plan.stealBegin, range.end, victim.shard,
                     plan.thiefRanges.size(), plan.overlapCells);
        for (const WorkRange &r : plan.thiefRanges) {
            Ward w;
            w.shard = victim.shard;
            w.checkpointPath =
                options.shardDir + "/shard-" +
                std::to_string(victim.shard) + "-steal-" +
                std::to_string(stealIdx) + ".gpk";
            w.workBegin = r.begin;
            w.workEnd = r.end;
            w.stallKey = options.shards + stealIdx;
            w.label = "steal worker " + std::to_string(stealIdx) +
                      " (for worker " +
                      std::to_string(victim.shard) + ")";
            stats->stealCells += r.size();
            stealWards.push_back(std::move(w));
            ++stealIdx;
        }
    }
    if (!stealWards.empty()) {
        GenerationKnobs stealKnobs = knobs;
        stealKnobs.fatalOnStall = true;
        superviseGeneration(stealWards, stealKnobs, stats);
        stats->stealWorkers += stealWards.size();
        for (const Ward &w : stealWards)
            paths.push_back(w.checkpointPath);
    }
    return paths;
}

} // namespace shard
} // namespace graphport
