/**
 * @file
 * Sweep-worker supervision: the liveness channel, stall verdicts and
 * work-stealing resweep behind shardedSweep's --stall-after-ms mode.
 *
 * Liveness is judged on two pulses, either of which proves progress:
 *
 *  - the worker's heartbeat frames — with --heartbeat a sweep worker
 *    writes one 'h' frame (frameKey = shard, count = cells priced) to
 *    stdout after every durable checkpoint flush, and the supervisor
 *    drains them via waitReadable at its verdict cadence;
 *  - the worker's .gpk file growing on disk — a belt-and-braces stat,
 *    so a worker whose stdout pipe is wedged but whose checkpoint
 *    still advances is never declared dead.
 *
 * A worker with neither pulse for stallAfterMs is given a *stall
 * verdict*: deterministic under injection ("shard.worker.stall" fires
 * at spawn time in the supervisor, which SIGSTOPs the worker — a real
 * frozen process, not a simulated one), and recoverable — the victim
 * is SIGKILLed, its checkpoint pruned to the durable prefix
 * (Dataset::pruneShardCheckpoint), and the unwritten suffix of its
 * row range re-partitioned across steal workers. Each steal range is
 * extended backwards over the last few durable rows on purpose: the
 * merge's identical-overlap rule then proves the thief priced the
 * seam bit-identically to the victim, so a corrupted steal can never
 * slip into the study. The merged CSV stays byte-identical to a
 * 1-process sweep under any stall schedule.
 *
 * Steal workers are supervised by the same loop with stall keys past
 * the shard count (so "once=K" schedules aimed at primaries cannot
 * re-fire on thieves); there is exactly one steal generation — a
 * stalled thief is fatal, not re-stolen.
 */
#ifndef GRAPHPORT_SHARD_SUPERVISE_HPP
#define GRAPHPORT_SHARD_SUPERVISE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graphport/shard/partition.hpp"
#include "graphport/shard/sweep.hpp"

namespace graphport {
namespace shard {

/** Sentinel for "no explicit work range" in sweepWorkerArgv. */
constexpr std::size_t kWorkUnset = static_cast<std::size_t>(-1);

/**
 * Capped exponential backoff before respawn attempt @p consecutive
 * (0-based): baseMs << consecutive, saturating at capMs. Keeps a
 * worker that dies instantly at startup from turning the supervisor
 * into a fork bomb while staying far below any liveness deadline.
 */
unsigned backoffMsFor(unsigned consecutive, unsigned baseMs = 1,
                      unsigned capMs = 64);

/**
 * Build a sweep-worker argv from @p base (executable + universe
 * reconstruction args) plus the coordinator-owned flags. @p workBegin
 * / @p workEnd of kWorkUnset mean "price the shard's own rangeOf
 * range"; anything else is forwarded as --work-begin/--work-end (a
 * steal worker's stolen slice). @p heartbeat adds --heartbeat.
 */
std::vector<std::string>
sweepWorkerArgv(const std::vector<std::string> &base,
                std::size_t shard, std::size_t shards,
                unsigned threads, const std::string &checkpointPath,
                std::size_t checkpointEvery,
                const std::string &faultSpec, bool heartbeat,
                std::size_t workBegin = kWorkUnset,
                std::size_t workEnd = kWorkUnset);

/** A stall victim's resweep plan. */
struct StealPlan
{
    /** First row the thieves re-price (overlap included). */
    std::size_t stealBegin = 0;
    /**
     * Rows in [stealBegin, durableEnd): already durable in the
     * victim's pruned checkpoint and re-priced by a thief anyway, so
     * the merge's identical-overlap rule verifies the seam.
     */
    std::size_t overlapCells = 0;
    /** Contiguous balanced thief ranges tiling [stealBegin, end). */
    std::vector<WorkRange> thiefRanges;
};

/**
 * Plan the resweep of @p victim's range given that rows before
 * @p durableEnd survived in its pruned checkpoint: re-price
 * [durableEnd - overlap, victim.end) split contiguously across
 * @p thieves workers, with overlap = min(overlapCap, durable rows).
 * Empty thief ranges are dropped. Pure function — unit-testable
 * without processes.
 */
StealPlan planSteal(const WorkRange &victim, std::size_t durableEnd,
                    std::size_t thieves,
                    std::size_t overlapCap = 32);

/** What the supervised sweep observed (merged into shard.* metrics). */
struct SuperviseStats
{
    std::size_t heartbeats = 0;    ///< 'h' frames drained
    std::size_t stallVerdicts = 0; ///< workers declared stalled
    std::size_t retriesUsed = 0;   ///< exit-137 respawns
    std::size_t stealVictims = 0;  ///< stalled workers resweeped
    std::size_t stealWorkers = 0;  ///< thief processes spawned
    std::size_t stealCells = 0;    ///< rows re-priced by thieves
    std::size_t overlapCells = 0;  ///< rows double-priced for the seam
    std::vector<double> wallSeconds; ///< per primary shard (stalled:
                                     ///< time until the verdict)
};

/**
 * The supervised counterpart of shardedSweep's spawn/reap loop: run
 * all @p options.shards workers with liveness supervision
 * (options.stallAfterMs must be > 0), steal stalled workers' ranges,
 * and return the checkpoint paths whose union covers the universe —
 * ready for Dataset::fromShardCheckpoints. @p items is the total
 * work-item count. Fatal on non-crash worker failures, exhausted
 * retry budgets, or a stalled steal worker.
 */
std::vector<std::string>
superviseSweep(const runner::Universe &universe,
               const SweepShardOptions &options, std::size_t items,
               SuperviseStats *stats);

} // namespace shard
} // namespace graphport

#endif // GRAPHPORT_SHARD_SUPERVISE_HPP
