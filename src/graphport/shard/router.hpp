/**
 * @file
 * The serve-side shard router: N `serve-worker` processes, each
 * holding the chip slice of the index that shard::chipsOf assigns it
 * (behind its own Advisor/EpochPtr bundle), fed over the framed pipe
 * protocol in wire.hpp/framing.hpp.
 *
 * Routing: a query whose chip a shard owns goes to that shard — its
 * sliced index retains the full chip-tier partitions for owned chips
 * plus every chip-free tier and the whole k-NN example pool, so its
 * answer is bit-identical to the full index's. A query whose chip no
 * shard owns takes the predictive path on its deterministic home
 * shard (homeShardForUnknownChip); the example pool is replicated,
 * so the home choice cannot change the answer. Batch fan-out writes
 * every shard's frame before reading any reply — the shards compute
 * in parallel, which is the whole point.
 *
 * Failure policy, all deterministic under a seeded schedule:
 *  - "shard.frame.torn" (router send path, keyed by the global send
 *    counter) corrupts the frame checksum on the wire; the worker
 *    detects it and replies an error frame; the router counts it and
 *    resends.
 *  - a worker that dies (EOF / EPIPE — e.g. "shard.worker.crash"
 *    keyed by query-frame send counter) is respawned with ".crash"
 *    sites stripped from its fault spec, and the batch is resent.
 *  - reply-stream desync (bad frame, wrong frame key) respawns too:
 *    a framed pipe has no resync point short of a fresh process.
 *  - hedged dispatch (hedgeMs > 0): a shard silent past the virtual
 *    deadline is pinged ('h' frame; an idle-but-alive worker echoes
 *    instantly). Still silent, it gets a stall verdict and the batch
 *    is hedged to a freshly spawned replica; primary and replica
 *    race, first valid answer wins, the loser is killed. Answers are
 *    bit-identical whichever copy responds — both run the same
 *    deterministic advise over the same slice.
 *  - permanent death: each respawn sleeps a capped exponential
 *    backoff and counts against the shard's lifetime maxRespawns
 *    budget. A shard over budget is marked *dead*; its chips are
 *    re-routed to a live shard, whose replicated chip-free tiers and
 *    k-NN pool still answer them (shard-independently), and every
 *    such answer is stamped shardDegraded — 100% of queries stay
 *    answered under shard-level permanent failure.
 */
#ifndef GRAPHPORT_SHARD_ROUTER_HPP
#define GRAPHPORT_SHARD_ROUTER_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graphport/serve/loadgen.hpp"
#include "graphport/shard/wire.hpp"
#include "graphport/support/proc.hpp"

namespace graphport {

namespace obs {
class MetricsRegistry;
}

namespace shard {

/** Knobs for Router. */
struct RouterOptions
{
    /** Worker process count (1..chip count). */
    std::size_t shards = 2;

    /** Index snapshot (.gpi) every worker loads and slices. */
    std::string indexPath;

    /** Fault spec forwarded to workers (respawns strip ".crash"). */
    std::string faultSpec;

    /**
     * Base worker argv (e.g. {exe, "serve-worker"}); the router
     * appends --index/--shard/--shards and, when set, --fault-spec.
     */
    std::vector<std::string> baseWorkerArgv;

    /** Worker respawns tolerated per route() call per shard. */
    unsigned respawns = 4;

    /**
     * Virtual deadline in milliseconds before a silent shard is
     * pinged, and again before the batch is hedged to a replica.
     * 0 (the default) disables hedged dispatch entirely — the read
     * path blocks exactly as before.
     */
    unsigned hedgeMs = 0;

    /**
     * Lifetime respawn budget per shard. Once exhausted the shard is
     * declared permanently dead: no further respawns, its chips are
     * served degraded from live shards. Each respawn backs off
     * exponentially (capped) so a worker dying at startup cannot
     * melt the host.
     */
    unsigned maxRespawns = 8;
};

class Router
{
  public:
    /**
     * Spawn the workers. @p chips is the served index's chip list,
     * in index order — the same list every worker slices, so router
     * and workers agree on ownership by construction.
     */
    Router(std::vector<std::string> chips, RouterOptions options);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Shard owning @p chip (home shard for unknown chips). */
    std::size_t shardOf(const std::string &chip) const;

    /**
     * Route one batch: scatter by chip owner, fan out, gather, and
     * return answers in request order as POD wire records (the hot
     * form; `out[i]` answers `queries[i]`). This is the path the
     * bench times — inflate with adviceFromWire off the clock.
     */
    void routeWire(const std::vector<serve::Query> &queries,
                   const std::vector<std::uint64_t> &keys,
                   std::vector<WireAdvice> &out);

    /** As routeWire, materialised into Advice (request order). */
    std::vector<serve::Advice>
    route(const std::vector<serve::Query> &queries,
          const std::vector<std::uint64_t> &keys);

    /**
     * Send shutdown frames and reap every worker. Idempotent; the
     * destructor calls it (killing instead of waiting on workers
     * that ignore the shutdown frame).
     */
    void shutdown();

    /** Merge "shard.route.*" counters into @p metrics. */
    void mergeMetrics(obs::MetricsRegistry &metrics) const;

    std::size_t shards() const { return options_.shards; }

    /** Shards declared permanently dead so far. */
    std::size_t deadShards() const;

    /** Whether @p shard has been declared permanently dead. */
    bool isDead(std::size_t shard) const
    {
        return dead_[shard] != 0;
    }

    /** Queries answered degraded (owner dead) so far. */
    std::uint64_t degradedQueries() const
    {
        return degradedQueries_;
    }

  private:
    /** Outcome of gathering one shard's reply. */
    enum class Reply { Ok, Dead };

    void spawnWorker(std::size_t shard, const std::string &spec);
    /**
     * Reap the lost worker and respawn it with ".crash" sites
     * stripped, after a capped exponential backoff. Returns false —
     * with the shard marked dead — once the lifetime maxRespawns
     * budget is exhausted.
     */
    bool respawnWorker(std::size_t shard);
    void markShardDead(std::size_t shard);
    /** First live shard on the ring after @p shard (fatal: none). */
    std::size_t aliveShardFor(std::size_t shard) const;
    /** Send shard @p s's pending frame (fresh key; maybe torn). */
    void sendShardFrame(std::size_t shard);
    /**
     * Read shard @p s's reply, driving resend/respawn recovery and —
     * when hedgeMs is set — the ping + hedge ladder. Reply::Dead
     * means the shard was declared permanently dead mid-gather; the
     * caller redispatches the scatter set.
     */
    Reply readShardReply(std::size_t shard,
                         std::vector<WireAdvice> &advices);
    /** The blocking read/resend/respawn loop (no hedging). */
    Reply gatherReply(std::size_t shard,
                      std::vector<WireAdvice> &advices);
    /** Race the stalled primary against a fresh replica. */
    Reply hedgedRace(std::size_t shard,
                     std::vector<WireAdvice> &advices);

    RouterOptions options_;
    std::vector<std::string> chips_;
    std::unordered_map<std::string, std::size_t> chipShard_;
    std::vector<support::ChildProcess> workers_;

    // Per-shard in-flight batch state (valid during routeWire).
    std::vector<std::vector<std::size_t>> scatter_;
    std::vector<std::string> pendingFrame_;
    std::vector<std::uint64_t> pendingKey_;

    // Per-shard supervision state.
    std::vector<unsigned> lifetimeRespawns_;
    std::vector<unsigned> consecutiveRespawns_;
    std::vector<char> dead_;

    std::uint64_t sendCounter_ = 0;
    std::uint64_t pingCounter_ = 0;
    std::uint64_t framesSent_ = 0;
    std::uint64_t framesTorn_ = 0;
    std::uint64_t respawns_ = 0;
    std::uint64_t queriesRouted_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t redispatches_ = 0;
    std::uint64_t degradedQueries_ = 0;
    std::uint64_t hedgesFired_ = 0;
    std::uint64_t hedgePrimaryWon_ = 0;
    std::uint64_t hedgeReplicaWon_ = 0;
    std::uint64_t hedgeStallVerdicts_ = 0;
    bool shutdownDone_ = false;
};

/**
 * Open-loop pass through the router: Poisson arrivals at
 * @p targetQps (serve::makeArrivalScheduleNs), due queries routed in
 * micro-batches, latency measured from each query's intended send
 * time (coordinated-omission safe, exactly as serve::runOpenLoop
 * measures the in-process path). steadyQueries is left 0 — the
 * router cannot see which path answered inside the worker.
 */
serve::OpenLoopResult
routerOpenLoop(Router &router,
               const std::vector<serve::Query> &queries,
               const std::vector<std::uint64_t> &keys,
               double targetQps, std::uint64_t seed);

} // namespace shard
} // namespace graphport

#endif // GRAPHPORT_SHARD_ROUTER_HPP
