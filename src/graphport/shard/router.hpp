/**
 * @file
 * The serve-side shard router: N `serve-worker` processes, each
 * holding the chip slice of the index that shard::chipsOf assigns it
 * (behind its own Advisor/EpochPtr bundle), fed over the framed pipe
 * protocol in wire.hpp/framing.hpp.
 *
 * Routing: a query whose chip a shard owns goes to that shard — its
 * sliced index retains the full chip-tier partitions for owned chips
 * plus every chip-free tier and the whole k-NN example pool, so its
 * answer is bit-identical to the full index's. A query whose chip no
 * shard owns takes the predictive path on its deterministic home
 * shard (homeShardForUnknownChip); the example pool is replicated,
 * so the home choice cannot change the answer. Batch fan-out writes
 * every shard's frame before reading any reply — the shards compute
 * in parallel, which is the whole point.
 *
 * Failure policy, all deterministic under a seeded schedule:
 *  - "shard.frame.torn" (router send path, keyed by the global send
 *    counter) corrupts the frame checksum on the wire; the worker
 *    detects it and replies an error frame; the router counts it and
 *    resends.
 *  - a worker that dies (EOF / EPIPE — e.g. "shard.worker.crash"
 *    keyed by query-frame send counter) is respawned with ".crash"
 *    sites stripped from its fault spec, and the batch is resent.
 *  - reply-stream desync (bad frame, wrong frame key) respawns too:
 *    a framed pipe has no resync point short of a fresh process.
 */
#ifndef GRAPHPORT_SHARD_ROUTER_HPP
#define GRAPHPORT_SHARD_ROUTER_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graphport/serve/loadgen.hpp"
#include "graphport/shard/wire.hpp"
#include "graphport/support/proc.hpp"

namespace graphport {

namespace obs {
class MetricsRegistry;
}

namespace shard {

/** Knobs for Router. */
struct RouterOptions
{
    /** Worker process count (1..chip count). */
    std::size_t shards = 2;

    /** Index snapshot (.gpi) every worker loads and slices. */
    std::string indexPath;

    /** Fault spec forwarded to workers (respawns strip ".crash"). */
    std::string faultSpec;

    /**
     * Base worker argv (e.g. {exe, "serve-worker"}); the router
     * appends --index/--shard/--shards and, when set, --fault-spec.
     */
    std::vector<std::string> baseWorkerArgv;

    /** Worker respawns tolerated per route() call per shard. */
    unsigned respawns = 4;
};

class Router
{
  public:
    /**
     * Spawn the workers. @p chips is the served index's chip list,
     * in index order — the same list every worker slices, so router
     * and workers agree on ownership by construction.
     */
    Router(std::vector<std::string> chips, RouterOptions options);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Shard owning @p chip (home shard for unknown chips). */
    std::size_t shardOf(const std::string &chip) const;

    /**
     * Route one batch: scatter by chip owner, fan out, gather, and
     * return answers in request order as POD wire records (the hot
     * form; `out[i]` answers `queries[i]`). This is the path the
     * bench times — inflate with adviceFromWire off the clock.
     */
    void routeWire(const std::vector<serve::Query> &queries,
                   const std::vector<std::uint64_t> &keys,
                   std::vector<WireAdvice> &out);

    /** As routeWire, materialised into Advice (request order). */
    std::vector<serve::Advice>
    route(const std::vector<serve::Query> &queries,
          const std::vector<std::uint64_t> &keys);

    /**
     * Send shutdown frames and reap every worker. Idempotent; the
     * destructor calls it (killing instead of waiting on workers
     * that ignore the shutdown frame).
     */
    void shutdown();

    /** Merge "shard.route.*" counters into @p metrics. */
    void mergeMetrics(obs::MetricsRegistry &metrics) const;

    std::size_t shards() const { return options_.shards; }

  private:
    void spawnWorker(std::size_t shard, const std::string &spec);
    void respawnWorker(std::size_t shard);
    /** Send shard @p s's pending frame (fresh key; maybe torn). */
    void sendShardFrame(std::size_t shard);
    /** Read shard @p s's reply, driving resend/respawn recovery. */
    void readShardReply(std::size_t shard,
                        std::vector<WireAdvice> &advices);

    RouterOptions options_;
    std::vector<std::string> chips_;
    std::unordered_map<std::string, std::size_t> chipShard_;
    std::vector<support::ChildProcess> workers_;

    // Per-shard in-flight batch state (valid during routeWire).
    std::vector<std::vector<std::size_t>> scatter_;
    std::vector<std::string> pendingFrame_;
    std::vector<std::uint64_t> pendingKey_;

    std::uint64_t sendCounter_ = 0;
    std::uint64_t framesSent_ = 0;
    std::uint64_t framesTorn_ = 0;
    std::uint64_t respawns_ = 0;
    std::uint64_t queriesRouted_ = 0;
    std::uint64_t batches_ = 0;
    bool shutdownDone_ = false;
};

/**
 * Open-loop pass through the router: Poisson arrivals at
 * @p targetQps (serve::makeArrivalScheduleNs), due queries routed in
 * micro-batches, latency measured from each query's intended send
 * time (coordinated-omission safe, exactly as serve::runOpenLoop
 * measures the in-process path). steadyQueries is left 0 — the
 * router cannot see which path answered inside the worker.
 */
serve::OpenLoopResult
routerOpenLoop(Router &router,
               const std::vector<serve::Query> &queries,
               const std::vector<std::uint64_t> &keys,
               double targetQps, std::uint64_t seed);

} // namespace shard
} // namespace graphport

#endif // GRAPHPORT_SHARD_ROUTER_HPP
