/**
 * @file
 * The sweep-sharding coordinator: fork/exec N `sweep-worker`
 * processes, each pricing one contiguous Partitioner range of the
 * (app, input, chip, config) universe into its own .gpk checkpoint,
 * then merge the completed shards into a Dataset bit-identical to a
 * single-process sweep.
 *
 * Failure policy: a worker that exits 137 (an injected "sweep.crash"
 * or a literal kill -9) is respawned with every ".crash" site
 * stripped from the fault spec (see shard::stripCrashSites) up to
 * `retries` times — its completed checkpoint prefix survives on
 * disk, so the replacement resumes instead of re-pricing the range.
 * Any other nonzero exit is fatal. Workers that take more than
 * stragglerFactor times the median wall time are counted as
 * stragglers (`shard.sweep.stragglers`) and named on stderr; with
 * stallAfterMs set the sweep is additionally *supervised* — a worker
 * with no liveness pulse inside the deadline is killed and its
 * remaining rows re-priced by steal workers (see supervise.hpp),
 * still merging byte-identical. The merge itself passes the
 * "shard.merge.reject" fault site once per shard; an injected reject
 * is retried, so chaos schedules exercise the recovery path without
 * failing the sweep.
 */
#ifndef GRAPHPORT_SHARD_SWEEP_HPP
#define GRAPHPORT_SHARD_SWEEP_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "graphport/runner/dataset.hpp"

namespace graphport {

namespace obs {
struct Obs;
}

namespace shard {

/** Knobs for shardedSweep. */
struct SweepShardOptions
{
    /** Worker process count (>= 1; capped by the work-item count). */
    std::size_t shards = 2;

    /** Respawns allowed per worker after an exit-137 crash. */
    unsigned retries = 2;

    /** Directory the per-shard .gpk files live in (must exist). */
    std::string shardDir;

    /**
     * Fault spec forwarded to every worker verbatim (and installed
     * in the coordinator for the merge site). Respawns strip the
     * ".crash" sites.
     */
    std::string faultSpec;

    /**
     * Base worker argv: the executable plus everything that
     * reconstructs the universe in the child (e.g. {exe,
     * "sweep-worker", "--small", "4"}). The coordinator appends
     * --shard/--shards/--checkpoint/--checkpoint-every/--threads
     * and, when set, --fault-spec.
     */
    std::vector<std::string> baseWorkerArgv;

    /** Cells per checkpoint flush inside each worker. */
    std::size_t checkpointEvery = 256;

    /** Threads per worker process. */
    unsigned workerThreads = 1;

    /** Keep the shard .gpk files after a successful merge. */
    bool keepShards = false;

    /**
     * Liveness deadline in milliseconds. 0 (the default) keeps the
     * classic blocking spawn/reap loop. When > 0 the sweep runs
     * supervised (shard/supervise.hpp): workers are spawned with
     * heartbeat pipes, a worker with no heartbeat and no .gpk growth
     * for this long gets a stall verdict, is killed, and the
     * unwritten suffix of its range is re-priced by steal workers —
     * the merged CSV stays byte-identical either way.
     */
    unsigned stallAfterMs = 0;

    /**
     * Straggler threshold as a multiple of the median worker wall
     * time (a worker is counted when wall > max(factor * median,
     * median + 0.05s)). Validated by validateStragglerFactor.
     */
    double stragglerFactor = 2.0;

    /** When non-null, "shard.*" metrics are merged into it. */
    obs::Obs *obs = nullptr;
};

/** Path of shard @p shard's checkpoint under @p dir. */
std::string shardCheckpointPath(const std::string &dir,
                                std::size_t shard,
                                std::size_t shards);

/**
 * Run the sharded sweep for @p universe and return the merged
 * dataset. Byte-identical CSV to Dataset::build(universe) at any
 * shard count. Fatal when a worker fails beyond its retry budget or
 * the merged checkpoints do not cover the universe.
 */
runner::Dataset shardedSweep(const runner::Universe &universe,
                             const SweepShardOptions &options);

} // namespace shard
} // namespace graphport

#endif // GRAPHPORT_SHARD_SWEEP_HPP
