#include "graphport/shard/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "graphport/fault/injector.hpp"
#include "graphport/obs/obs.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/shard/supervise.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/proc.hpp"

namespace graphport {
namespace shard {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct WorkerSlot
{
    support::ChildProcess child;
    std::chrono::steady_clock::time_point start;
    unsigned attempts = 0;
    double wallSeconds = 0.0;
    bool done = false;
};

/**
 * The classic unsupervised path: spawn every worker with inherited
 * stdio, block in waitAnyExit, retry exit-137 crashes. Returns the
 * per-shard wall seconds; checkpoint paths are the canonical
 * shardCheckpointPath set.
 */
std::vector<double>
blockingSweepWorkers(const SweepShardOptions &options,
                     std::size_t *retriesUsed)
{
    const std::string retrySpec = stripCrashSites(options.faultSpec);
    std::vector<WorkerSlot> slots(options.shards);

    const auto spawnWorker = [&](std::size_t shard,
                                 const std::string &spec) {
        const std::vector<std::string> argv = sweepWorkerArgv(
            options.baseWorkerArgv, shard, options.shards,
            options.workerThreads,
            shardCheckpointPath(options.shardDir, shard,
                                options.shards),
            options.checkpointEvery, spec, /*heartbeat=*/false);
        WorkerSlot &slot = slots[shard];
        slot.start = std::chrono::steady_clock::now();
        slot.attempts += 1;
        slot.child = support::spawnInherit(argv);
    };

    for (std::size_t s = 0; s < options.shards; ++s)
        spawnWorker(s, options.faultSpec);

    // Reap in completion order so a straggler's wall clock is its
    // own, then retry crashes (exit 137) with the crash sites
    // stripped — the injected crash already happened; replaying it
    // into the resumed worker would kill it at the same cell forever.
    std::size_t live = options.shards;
    while (live != 0) {
        int exitCode = 0;
        const long pid = support::waitAnyExit(&exitCode);
        fatalIf(pid < 0, "shardedSweep: lost track of workers");
        std::size_t shard = options.shards;
        for (std::size_t s = 0; s < options.shards; ++s) {
            if (!slots[s].done && slots[s].child.pid == pid) {
                shard = s;
                break;
            }
        }
        fatalIf(shard == options.shards,
                "shardedSweep: reaped unknown pid");
        WorkerSlot &slot = slots[shard];
        slot.child.pid = -1;
        if (exitCode == 0) {
            slot.wallSeconds = secondsSince(slot.start);
            slot.done = true;
            --live;
            continue;
        }
        fatalIf(exitCode != 137,
                "shardedSweep: worker " + std::to_string(shard) +
                    " exited with code " + std::to_string(exitCode));
        fatalIf(slot.attempts > options.retries,
                "shardedSweep: worker " + std::to_string(shard) +
                    " crashed " + std::to_string(slot.attempts) +
                    " times (retry budget " +
                    std::to_string(options.retries) + ")");
        std::fprintf(stderr,
                     "graphport: shard: worker %zu crashed (exit "
                     "137); respawning with crash sites stripped\n",
                     shard);
        *retriesUsed += 1;
        spawnWorker(shard, retrySpec);
    }

    std::vector<double> walls;
    walls.reserve(options.shards);
    for (const WorkerSlot &slot : slots)
        walls.push_back(slot.wallSeconds);
    return walls;
}

} // namespace

std::string
shardCheckpointPath(const std::string &dir, std::size_t shard,
                    std::size_t shards)
{
    return dir + "/shard-" + std::to_string(shard) + "-of-" +
           std::to_string(shards) + ".gpk";
}

runner::Dataset
shardedSweep(const runner::Universe &universe,
             const SweepShardOptions &options)
{
    universe.validate();
    fatalIf(options.shards == 0, "shardedSweep: zero shards");
    fatalIf(options.baseWorkerArgv.empty(),
            "shardedSweep: empty worker argv");
    fatalIf(options.shardDir.empty(),
            "shardedSweep: no shard directory");
    validateStragglerFactor("shardedSweep", options.stragglerFactor);
    const std::size_t items = universe.apps.size() *
                              universe.inputs.size() *
                              universe.chips.size() *
                              universe.space.size();
    fatalIf(options.shards > items,
            "shardedSweep: " + std::to_string(options.shards) +
                " shards for " + std::to_string(items) +
                " work items");

    std::size_t retriesUsed = 0;
    SuperviseStats sup;
    std::vector<double> walls;
    std::vector<std::string> paths;
    if (options.stallAfterMs != 0) {
        paths = superviseSweep(universe, options, items, &sup);
        retriesUsed = sup.retriesUsed;
        walls = sup.wallSeconds;
    } else {
        walls = blockingSweepWorkers(options, &retriesUsed);
        for (std::size_t s = 0; s < options.shards; ++s)
            paths.push_back(shardCheckpointPath(
                options.shardDir, s, options.shards));
    }

    // Straggler detection: workers price near-equal ranges, so one
    // taking stragglerFactor times the median means a sick process
    // or host, worth a counter even when the merge below still
    // succeeds. (A stall victim's wall clock is its time-to-verdict,
    // which the same rule naturally flags.)
    std::vector<double> sorted = walls;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double threshold = std::max(
        options.stragglerFactor * median, median + 0.05);
    std::size_t stragglers = 0;
    for (std::size_t s = 0; s < walls.size(); ++s) {
        if (walls[s] > threshold) {
            ++stragglers;
            std::fprintf(stderr,
                         "graphport: shard: worker %zu straggled "
                         "(%.3fs vs %.3fs median)\n",
                         s, walls[s], median);
        }
    }

    // Merge, passing the reject rehearsal site once per checkpoint;
    // an injected reject is retried so chaos schedules exercise the
    // recovery path without failing the sweep.
    std::size_t mergeRejects = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        for (unsigned attempt = 0;; ++attempt) {
            try {
                fault::maybeFault("shard.merge.reject", i);
                break;
            } catch (const fault::InjectedFault &) {
                ++mergeRejects;
                fatalIf(attempt >= 2,
                        "shardedSweep: checkpoint " +
                            std::to_string(i) +
                            " merge rejected repeatedly");
            }
        }
    }
    runner::Dataset ds =
        runner::Dataset::fromShardCheckpoints(universe, paths);
    if (!options.keepShards) {
        for (const std::string &path : paths)
            std::remove(path.c_str());
    }

    if (options.obs) {
        obs::MetricsRegistry local;
        local.counter("shard.sweep.workers").add(options.shards);
        local.counter("shard.sweep.retries").add(retriesUsed);
        local.counter("shard.sweep.stragglers").add(stragglers);
        local.counter("shard.sweep.merged_cells").add(items);
        local.counter("shard.merge.rejects").add(mergeRejects);
        if (options.stallAfterMs != 0) {
            local.counter("shard.sweep.heartbeats")
                .add(sup.heartbeats);
            local.counter("shard.sweep.stall_verdicts")
                .add(sup.stallVerdicts);
            local.counter("shard.steal.victims")
                .add(sup.stealVictims);
            local.counter("shard.steal.workers")
                .add(sup.stealWorkers);
            local.counter("shard.steal.cells").add(sup.stealCells);
            local.counter("shard.steal.overlap_cells")
                .add(sup.overlapCells);
        }
        options.obs->metrics.merge(local);
    }
    return ds;
}

} // namespace shard
} // namespace graphport
