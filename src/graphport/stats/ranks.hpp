/**
 * @file
 * Rank utilities for non-parametric statistics: midrank assignment with
 * tie handling, and the tie-correction term used by the Mann-Whitney U
 * normal approximation.
 */
#ifndef GRAPHPORT_STATS_RANKS_HPP
#define GRAPHPORT_STATS_RANKS_HPP

#include <vector>

namespace graphport {
namespace stats {

/**
 * Assign 1-based midranks to @p values. Tied values receive the average
 * of the ranks they span (standard fractional ranking).
 *
 * @param values Input data (not modified).
 * @return Rank of each input element, parallel to @p values.
 */
std::vector<double> averageRanks(const std::vector<double> &values);

/**
 * Sum of (t^3 - t) over tie groups of the combined sample, as used by
 * the tie-corrected variance of the Mann-Whitney U statistic.
 *
 * @param values Combined sample from both groups.
 */
double tieCorrectionTerm(std::vector<double> values);

} // namespace stats
} // namespace graphport

#endif // GRAPHPORT_STATS_RANKS_HPP
