/**
 * @file
 * Mann-Whitney U test (a.k.a. Wilcoxon rank-sum test) with tie-corrected
 * normal approximation, plus the common-language (CL) effect size the
 * paper reports in Table IX.
 *
 * The MWU test is the statistical core of the paper's analysis
 * (Algorithm 1, ENABLE_OPT): it is rank-based and magnitude-agnostic,
 * which is what protects the derived optimisation strategies from being
 * biased towards "sensitive" chips, applications or inputs.
 */
#ifndef GRAPHPORT_STATS_MWU_HPP
#define GRAPHPORT_STATS_MWU_HPP

#include <cstddef>
#include <vector>

namespace graphport {
namespace stats {

/** Outcome of a two-sided Mann-Whitney U test. */
struct MwuResult
{
    /** Number of samples in groups A and B. */
    std::size_t nA = 0;
    std::size_t nB = 0;

    /**
     * U statistic of group A: the number of (a, b) pairs with a > b,
     * counting ties as one half. uA + uB == nA * nB.
     */
    double uA = 0.0;
    /** U statistic of group B (pairs with b > a, ties one half). */
    double uB = 0.0;

    /** Tie-corrected z score of min(uA, uB) (0 when degenerate). */
    double z = 0.0;

    /** Two-sided p-value under the normal approximation. */
    double p = 1.0;

    /**
     * Common-language effect size: the probability that a random
     * element of A is smaller than a random element of B (ties count
     * one half). When A holds normalised runtimes (enabled/disabled)
     * and B holds the constant 1.0, this is the probability that the
     * optimisation produced a speedup — the CL column of Table IX.
     */
    double clEffectSize = 0.5;

    /** True when the null hypothesis is rejected at level @p alpha. */
    bool significant(double alpha = 0.05) const { return p < alpha; }
};

/**
 * Run the two-sided Mann-Whitney U test on independent samples @p a and
 * @p b.
 *
 * Uses midranks for ties and the tie-corrected variance in the normal
 * approximation with a 0.5 continuity correction. Degenerate inputs
 * (an empty group, or all values across both groups identical) return a
 * non-significant result (p = 1).
 */
MwuResult mannWhitneyU(const std::vector<double> &a,
                       const std::vector<double> &b);

/** Standard normal CDF. */
double normalCdf(double x);

} // namespace stats
} // namespace graphport

#endif // GRAPHPORT_STATS_MWU_HPP
