#include "graphport/stats/ranks.hpp"

#include <algorithm>
#include <numeric>

namespace graphport {
namespace stats {

std::vector<double>
averageRanks(const std::vector<double> &values)
{
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return values[a] < values[b];
              });

    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        // Elements order[i..j] are tied; midrank is the average of the
        // 1-based ranks i+1 .. j+1.
        const double midrank =
            0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = midrank;
        i = j + 1;
    }
    return ranks;
}

double
tieCorrectionTerm(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    double term = 0.0;
    std::size_t i = 0;
    const std::size_t n = values.size();
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[j + 1] == values[i])
            ++j;
        const double t = static_cast<double>(j - i + 1);
        term += t * t * t - t;
        i = j + 1;
    }
    return term;
}

} // namespace stats
} // namespace graphport
