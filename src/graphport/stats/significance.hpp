/**
 * @file
 * Per-test significance filtering.
 *
 * Algorithm 1's SIGNIFICANT(p(os), p(dis_os)) decides, for one test
 * (application, input, chip) and one pair of optimisation settings,
 * whether the observed runtime difference is real or noise, using the
 * 95% confidence intervals of the repeated timings (the paper runs each
 * test three times). Only significant pairs contribute normalised
 * ratios to the MWU comparison lists.
 */
#ifndef GRAPHPORT_STATS_SIGNIFICANCE_HPP
#define GRAPHPORT_STATS_SIGNIFICANCE_HPP

#include <vector>

namespace graphport {
namespace stats {

/** Summary of a repeated-measurement sample. */
struct SampleSummary
{
    double mean = 0.0;
    double median = 0.0;
    /** Half-width of the two-sided 95% CI of the mean. */
    double ciHalf = 0.0;
    std::size_t n = 0;
};

/** Compute the summary of a set of repeated timings. */
SampleSummary summarise(const std::vector<double> &samples);

/**
 * True when the 95% confidence intervals of the two samples do not
 * overlap, i.e. the runtime difference is treated as statistically
 * significant (the paper's SIGNIFICANT predicate).
 */
bool significantDifference(const std::vector<double> &samplesA,
                           const std::vector<double> &samplesB);

/** CI-overlap check on precomputed summaries. */
bool significantDifference(const SampleSummary &a,
                           const SampleSummary &b);

} // namespace stats
} // namespace graphport

#endif // GRAPHPORT_STATS_SIGNIFICANCE_HPP
