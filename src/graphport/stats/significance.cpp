#include "graphport/stats/significance.hpp"

#include <cmath>

#include "graphport/support/mathutil.hpp"

namespace graphport {
namespace stats {

SampleSummary
summarise(const std::vector<double> &samples)
{
    SampleSummary s;
    s.n = samples.size();
    if (samples.empty())
        return s;
    s.mean = mean(samples);
    s.median = median(samples);
    s.ciHalf = ciHalfWidth95(samples);
    return s;
}

bool
significantDifference(const SampleSummary &a, const SampleSummary &b)
{
    if (a.n == 0 || b.n == 0)
        return false;
    const double loA = a.mean - a.ciHalf;
    const double hiA = a.mean + a.ciHalf;
    const double loB = b.mean - b.ciHalf;
    const double hiB = b.mean + b.ciHalf;
    // Non-overlapping intervals => significant difference.
    return hiA < loB || hiB < loA;
}

bool
significantDifference(const std::vector<double> &samplesA,
                      const std::vector<double> &samplesB)
{
    return significantDifference(summarise(samplesA),
                                 summarise(samplesB));
}

} // namespace stats
} // namespace graphport
