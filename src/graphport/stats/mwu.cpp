#include "graphport/stats/mwu.hpp"

#include <algorithm>
#include <cmath>

#include "graphport/stats/ranks.hpp"

namespace graphport {
namespace stats {

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

MwuResult
mannWhitneyU(const std::vector<double> &a, const std::vector<double> &b)
{
    MwuResult res;
    res.nA = a.size();
    res.nB = b.size();
    if (a.empty() || b.empty())
        return res;

    const double nA = static_cast<double>(a.size());
    const double nB = static_cast<double>(b.size());

    std::vector<double> combined;
    combined.reserve(a.size() + b.size());
    combined.insert(combined.end(), a.begin(), a.end());
    combined.insert(combined.end(), b.begin(), b.end());

    const std::vector<double> ranks = averageRanks(combined);
    double rankSumA = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        rankSumA += ranks[i];

    // U_A counts (a, b) pairs where a ranks above b (ties half).
    res.uA = rankSumA - nA * (nA + 1.0) / 2.0;
    res.uB = nA * nB - res.uA;
    res.clEffectSize = res.uB / (nA * nB);

    const double n = nA + nB;
    const double ties = tieCorrectionTerm(combined);
    const double variance =
        (nA * nB / 12.0) * ((n + 1.0) - ties / (n * (n - 1.0)));
    if (variance <= 0.0) {
        // All observations identical: no evidence of any difference.
        res.z = 0.0;
        res.p = 1.0;
        return res;
    }

    const double meanU = nA * nB / 2.0;
    const double uMin = std::min(res.uA, res.uB);
    // Continuity correction towards the mean.
    double zNum = uMin - meanU;
    zNum += 0.5;
    if (zNum > 0.0)
        zNum = 0.0;
    res.z = zNum / std::sqrt(variance);
    res.p = 2.0 * normalCdf(res.z);
    res.p = std::min(1.0, res.p);
    return res;
}

} // namespace stats
} // namespace graphport
