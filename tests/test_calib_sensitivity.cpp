/**
 * @file
 * calib::Sensitivity: per-parameter strategy-table flip thresholds.
 */
#include <gtest/gtest.h>

#include "graphport/calib/params.hpp"
#include "graphport/calib/sensitivity.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;

namespace {

calib::SensitivityOptions
quickOptions(unsigned threads = 1)
{
    calib::SensitivityOptions opts;
    opts.nApps = 2;
    opts.stepPct = 15.0;
    opts.maxPct = 45.0;
    opts.threads = threads;
    return opts;
}

} // namespace

// The acceptance criterion: a flip threshold entry for every free
// parameter on at least one chip.
TEST(CalibSensitivity, ReportsEveryFreeParameter)
{
    const calib::SensitivityReport report =
        calib::sensitivitySweep("MALI", quickOptions());
    EXPECT_EQ(report.chip, "MALI");
    const std::vector<calib::ParamSpec> &specs = calib::freeParams();
    ASSERT_EQ(report.params.size(), specs.size());
    const sim::ChipModel &chip = sim::chipByName("MALI");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(report.params[i].param, specs[i].name);
        EXPECT_EQ(report.params[i].baseValue, chip.*(specs[i].field));
        // Every direction was actually probed (or cut short at a
        // bound, which cannot happen for the registry chips at 45%).
        EXPECT_GT(report.params[i].up.probes, 0u) << specs[i].name;
        EXPECT_GT(report.params[i].down.probes, 0u) << specs[i].name;
    }
}

TEST(CalibSensitivity, FindsAFlipOnMali)
{
    // MALI's barrier cost and divergence sensitivity are its §VII
    // performance-critical parameters; moving them far enough must
    // flip at least one strategy table configuration.
    const calib::SensitivityReport report =
        calib::sensitivitySweep("MALI", quickOptions());
    bool anyFlip = false;
    for (const calib::ParamSensitivity &p : report.params) {
        for (const calib::DirectionFlip *d : {&p.up, &p.down}) {
            if (!d->flipped)
                continue;
            anyFlip = true;
            EXPECT_GT(d->flipPct, 0.0);
            EXPECT_LE(d->flipPct, 45.0);
            EXPECT_FALSE(d->table.empty());
            EXPECT_NE(d->fromConfig, d->toConfig);
        }
    }
    EXPECT_TRUE(anyFlip);
}

TEST(CalibSensitivity, BitIdenticalAcrossThreadCounts)
{
    const calib::SensitivityReport serial =
        calib::sensitivitySweep("MALI", quickOptions(1));
    const calib::SensitivityReport parallel =
        calib::sensitivitySweep("MALI", quickOptions(4));
    ASSERT_EQ(parallel.params.size(), serial.params.size());
    for (std::size_t i = 0; i < serial.params.size(); ++i) {
        const calib::ParamSensitivity &a = serial.params[i];
        const calib::ParamSensitivity &b = parallel.params[i];
        EXPECT_EQ(a.param, b.param);
        for (unsigned dir = 0; dir < 2; ++dir) {
            const calib::DirectionFlip &da = dir ? a.down : a.up;
            const calib::DirectionFlip &db = dir ? b.down : b.up;
            EXPECT_EQ(da.flipped, db.flipped) << a.param;
            EXPECT_EQ(da.flipPct, db.flipPct) << a.param;
            EXPECT_EQ(da.table, db.table) << a.param;
            EXPECT_EQ(da.partition, db.partition) << a.param;
            EXPECT_EQ(da.fromConfig, db.fromConfig) << a.param;
            EXPECT_EQ(da.toConfig, db.toConfig) << a.param;
            EXPECT_EQ(da.probes, db.probes) << a.param;
        }
    }
}

TEST(CalibSensitivity, RejectsBadOptionsAndChips)
{
    calib::SensitivityOptions opts = quickOptions();
    opts.stepPct = 0.0;
    EXPECT_THROW(calib::sensitivitySweep("MALI", opts), FatalError);
    opts = quickOptions();
    opts.maxPct = opts.stepPct / 2.0;
    EXPECT_THROW(calib::sensitivitySweep("MALI", opts), FatalError);
    EXPECT_THROW(calib::sensitivitySweep("TPUv9", quickOptions()),
                 FatalError);
}
