/**
 * @file
 * Child-process plumbing and the framed pipe protocol under it:
 * spawnPiped round-trips frames through a real child, exit codes are
 * normalised shell-style (signal death = 128+signo), and the frame
 * envelope detects torn checksums, bit flips, and mid-frame EOF
 * while distinguishing all of them from a clean between-frames EOF.
 */
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include <unistd.h>

#include "graphport/support/error.hpp"
#include "graphport/support/framing.hpp"
#include "graphport/support/proc.hpp"

using namespace graphport;

TEST(SupportProc, SpawnPipedRoundTripsFramesThroughCat)
{
    support::ChildProcess cat =
        support::spawnPiped({"/bin/cat"});
    ASSERT_GE(cat.pid, 0);
    ASSERT_GE(cat.stdinFd, 0);
    ASSERT_GE(cat.stdoutFd, 0);

    const std::string payload(10000, 'z');
    ASSERT_TRUE(support::writeFrame(cat.stdinFd, payload));
    ASSERT_TRUE(support::writeFrame(cat.stdinFd, "second"));

    std::string got;
    std::string cause;
    EXPECT_EQ(support::readFrame(cat.stdoutFd, got, cause),
              support::FrameStatus::Ok)
        << cause;
    EXPECT_EQ(got, payload);
    EXPECT_EQ(support::readFrame(cat.stdoutFd, got, cause),
              support::FrameStatus::Ok);
    EXPECT_EQ(got, "second");

    ::close(cat.stdinFd);
    cat.stdinFd = -1;
    // cat exits on stdin EOF; the stream then reports a clean Eof,
    // not a defect.
    EXPECT_EQ(support::readFrame(cat.stdoutFd, got, cause),
              support::FrameStatus::Eof);
    EXPECT_EQ(support::waitExit(cat), 0);
}

TEST(SupportProc, WaitExitNormalisesExitAndSignalDeaths)
{
    support::ChildProcess ok = support::spawnInherit({"/bin/true"});
    EXPECT_EQ(support::waitExit(ok), 0);

    support::ChildProcess bad =
        support::spawnInherit({"/bin/false"});
    EXPECT_EQ(support::waitExit(bad), 1);

    support::ChildProcess hung =
        support::spawnPiped({"/bin/cat"});
    support::killProcess(hung);
    EXPECT_EQ(support::waitExit(hung), 128 + SIGKILL)
        << "a kill -9 must report shell-style 137";
}

TEST(SupportProc, ExecFailureReports127)
{
    support::ChildProcess child = support::spawnInherit(
        {"/nonexistent/definitely-not-a-binary"});
    EXPECT_EQ(support::waitExit(child), 127);
}

TEST(SupportProc, WaitExitForTimesOutOnRunningChildThenReaps)
{
    support::ChildProcess cat = support::spawnPiped({"/bin/cat"});
    ASSERT_GE(cat.pid, 0);

    // Still holding its stdin open: a bounded wait must come back
    // Running without reaping (both a 0 probe and a real timeout).
    int exitCode = -1;
    EXPECT_EQ(support::waitExitFor(cat, 0, &exitCode),
              support::WaitStatus::Running);
    EXPECT_EQ(support::waitExitFor(cat, 50, &exitCode),
              support::WaitStatus::Running);
    EXPECT_GE(cat.pid, 0) << "a Running verdict must not invalidate";

    ::close(cat.stdinFd);
    cat.stdinFd = -1;
    EXPECT_EQ(support::waitExitFor(cat, 5000, &exitCode),
              support::WaitStatus::Exited);
    EXPECT_EQ(exitCode, 0);
    EXPECT_LT(cat.pid, 0) << "Exited must reap like waitExit";
}

TEST(SupportProc, PausedChildMakesNoProgressUntilResumed)
{
    support::ChildProcess cat = support::spawnPiped({"/bin/cat"});
    ASSERT_GE(cat.pid, 0);

    support::pauseProcess(cat);
    // A stopped cat holds its pipes open and echoes nothing: exactly
    // the stall shape the supervisor must distinguish from a crash.
    ASSERT_TRUE(support::writeFrame(cat.stdinFd, "frozen"));
    std::vector<int> fds = {cat.stdoutFd};
    EXPECT_EQ(support::waitReadable(fds, 150), -1)
        << "a SIGSTOPped child must not answer";
    int exitCode = -1;
    EXPECT_EQ(support::waitExitFor(cat, 0, &exitCode),
              support::WaitStatus::Running)
        << "stopped is not exited";

    support::resumeProcess(cat);
    std::string got;
    std::string cause;
    EXPECT_EQ(support::readFrame(cat.stdoutFd, got, cause),
              support::FrameStatus::Ok)
        << cause;
    EXPECT_EQ(got, "frozen");

    // SIGKILL cannot be blocked by a stopped process — the verdict
    // path (pause, kill, bounded reap) must always terminate.
    support::pauseProcess(cat);
    support::killProcess(cat);
    EXPECT_EQ(support::waitExitFor(cat, 5000, &exitCode),
              support::WaitStatus::Exited);
    EXPECT_EQ(exitCode, 128 + SIGKILL);
}

TEST(SupportProc, SelfExePathResolvesOrFallsBack)
{
    const std::string path = support::selfExePath("fallback-name");
    EXPECT_FALSE(path.empty());
    // On Linux /proc/self/exe resolves to this test binary.
    EXPECT_NE(path, "fallback-name");
}

TEST(SupportFraming, CorruptedChecksumIsDetectedAsBad)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(
        support::writeFrame(fds[1], "torn on the wire", true));
    ::close(fds[1]);

    std::string payload;
    std::string cause;
    EXPECT_EQ(support::readFrame(fds[0], payload, cause),
              support::FrameStatus::Bad);
    EXPECT_NE(cause.find("checksum"), std::string::npos) << cause;
    ::close(fds[0]);
}

TEST(SupportFraming, MidFrameEofIsBadNotEof)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::uint32_t header[2] = {support::kFrameMagic, 100};
    ASSERT_EQ(::write(fds[1], header, sizeof header),
              static_cast<ssize_t>(sizeof header));
    ::close(fds[1]); // die before checksum/payload

    std::string payload;
    std::string cause;
    EXPECT_EQ(support::readFrame(fds[0], payload, cause),
              support::FrameStatus::Bad);
    EXPECT_FALSE(cause.empty());
    ::close(fds[0]);
}

TEST(SupportFraming, ChecksumSeesEveryBitAndTheLength)
{
    const std::string base(1000, 'a');
    const std::uint64_t sum = support::frameChecksum(base);
    EXPECT_EQ(support::frameChecksum(base), sum)
        << "checksum must be deterministic";

    for (std::size_t pos : {0u, 7u, 31u, 32u, 999u}) {
        std::string flipped = base;
        flipped[pos] = static_cast<char>(flipped[pos] ^ 1);
        EXPECT_NE(support::frameChecksum(flipped), sum)
            << "flip at byte " << pos << " undetected";
    }
    // Same bytes, shorter length: the zero-padded tail must not
    // collide with explicit zero bytes.
    EXPECT_NE(support::frameChecksum(base.substr(0, 995)), sum);
    std::string padded = base.substr(0, 995) + std::string(5, '\0');
    EXPECT_NE(support::frameChecksum(base.substr(0, 995)),
              support::frameChecksum(padded));
}
