/**
 * @file
 * Edge-case validation of every application on degenerate graphs:
 * a single-node path, a tiny path, a star, and a disconnected graph
 * (where BFS/SSSP meet unreachable nodes and CC/MST meet multiple
 * components).
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graphport/apps/app.hpp"
#include "graphport/graph/reference.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::graph;

namespace {

struct EdgeCase
{
    std::string app;
    std::string graphName;
};

const Csr &
edgeGraph(const std::string &name)
{
    static const std::map<std::string, Csr> graphs = [] {
        std::map<std::string, Csr> m;
        m.emplace("path2", testutil::path(2));
        m.emplace("path16", testutil::path(16));
        m.emplace("star16", testutil::star(16));
        m.emplace("disconnected", testutil::twoTriangles());
        return m;
    }();
    return graphs.at(name);
}

std::vector<EdgeCase>
allEdgeCases()
{
    std::vector<EdgeCase> cases;
    for (const std::string &app : apps::allAppNames()) {
        for (const char *g :
             {"path2", "path16", "star16", "disconnected"})
            cases.push_back({app, g});
    }
    return cases;
}

} // namespace

class AppEdgeCaseTest : public ::testing::TestWithParam<EdgeCase>
{};

TEST_P(AppEdgeCaseTest, CorrectOnDegenerateGraphs)
{
    const EdgeCase &c = GetParam();
    const Csr &g = edgeGraph(c.graphName);
    const apps::Application &app = apps::appByName(c.app);
    const auto [out, trace] = apps::runApp(app, g, c.graphName);

    const std::string problem = app.problem();
    if (problem == "BFS") {
        EXPECT_EQ(out.levels, ref::bfsLevels(g, apps::kSourceNode));
    } else if (problem == "SSSP") {
        EXPECT_EQ(out.distances, ref::sssp(g, apps::kSourceNode));
    } else if (problem == "CC") {
        EXPECT_EQ(out.labels, ref::connectedComponents(g));
    } else if (problem == "PR") {
        const double sum = std::accumulate(out.ranks.begin(),
                                           out.ranks.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-3);
        const auto expected = ref::pagerank(g);
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_NEAR(out.ranks[i], expected[i], 1e-3);
    } else if (problem == "MIS") {
        EXPECT_TRUE(ref::isMaximalIndependentSet(g, out.inSet));
    } else if (problem == "MST") {
        EXPECT_EQ(out.scalar, ref::msfWeight(g));
    } else if (problem == "TRI") {
        EXPECT_EQ(out.scalar, ref::triangleCount(g));
    }
}

TEST_P(AppEdgeCaseTest, TraceStaysConsistent)
{
    const EdgeCase &c = GetParam();
    const Csr &g = edgeGraph(c.graphName);
    const apps::Application &app = apps::appByName(c.app);
    const auto [out, trace] = apps::runApp(app, g, c.graphName);
    EXPECT_NO_THROW(trace.validate());
    EXPECT_GT(trace.hostIterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsTinyGraphs, AppEdgeCaseTest,
    ::testing::ValuesIn(allEdgeCases()),
    [](const ::testing::TestParamInfo<EdgeCase> &info) {
        std::string name =
            info.param.app + "_" + info.param.graphName;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(AppEdgeCases, BfsOnDisconnectedGraphLeavesUnreached)
{
    const Csr &g = edgeGraph("disconnected");
    const auto [out, trace] =
        apps::runApp(apps::appByName("bfs-hybrid"), g, "disc");
    EXPECT_EQ(out.levels[3], ref::kUnreached);
    EXPECT_EQ(out.levels[4], ref::kUnreached);
    EXPECT_EQ(out.levels[5], ref::kUnreached);
}

TEST(AppEdgeCases, CcFindsBothComponents)
{
    const Csr &g = edgeGraph("disconnected");
    for (const char *name : {"cc-sv", "cc-lp", "cc-af"}) {
        const auto [out, trace] =
            apps::runApp(apps::appByName(name), g, "disc");
        EXPECT_EQ(ref::componentCount(out.labels), 2u) << name;
    }
}

TEST(AppEdgeCases, MstOnForestSumsBothTrees)
{
    const Csr &g = edgeGraph("disconnected");
    for (const char *name : {"mst-boruvka", "mst-bh"}) {
        const auto [out, trace] =
            apps::runApp(apps::appByName(name), g, "disc");
        EXPECT_EQ(out.scalar, ref::msfWeight(g)) << name;
    }
}

TEST(AppEdgeCases, StarMisIsLeavesOrHub)
{
    // On a star the MIS is either {hub} or all leaves; both are
    // maximal. Priority MIS (low degree first) must pick the leaves.
    const Csr &g = edgeGraph("star16");
    const auto [out, trace] =
        apps::runApp(apps::appByName("mis-prio"), g, "star");
    EXPECT_FALSE(out.inSet[0]);
    for (NodeId u = 1; u < g.numNodes(); ++u)
        EXPECT_TRUE(out.inSet[u]);
}
