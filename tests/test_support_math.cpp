/**
 * @file
 * Tests for the numeric helpers (geomean, median, percentile, CI).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graphport/support/error.hpp"
#include "graphport/support/mathutil.hpp"

using namespace graphport;

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Geomean, IsScaleInvariant)
{
    const double g = geomean({1.5, 2.5, 3.5});
    EXPECT_NEAR(geomean({3.0, 5.0, 7.0}), 2.0 * g, 1e-9);
}

TEST(Geomean, RejectsEmptyAndNonPositive)
{
    EXPECT_THROW(geomean({}), PanicError);
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
    EXPECT_THROW(geomean({1.0, -2.0}), PanicError);
}

TEST(Mean, KnownValues)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_THROW(mean({}), PanicError);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
    EXPECT_THROW(median({}), PanicError);
}

TEST(Median, DoesNotModifyCaller)
{
    std::vector<double> v{3.0, 1.0, 2.0};
    median(v);
    EXPECT_EQ(v[0], 3.0);
}

TEST(Percentile, Endpoints)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, SingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({5.0}, 37.0), 5.0);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), PanicError);
    EXPECT_THROW(percentile({1.0}, -1.0), PanicError);
    EXPECT_THROW(percentile({1.0}, 101.0), PanicError);
}

TEST(Stddev, KnownValue)
{
    // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(TCritical, MatchesTables)
{
    EXPECT_NEAR(tCritical95(1), 12.706, 1e-3);
    EXPECT_NEAR(tCritical95(2), 4.303, 1e-3);
    EXPECT_NEAR(tCritical95(10), 2.228, 1e-3);
    EXPECT_NEAR(tCritical95(30), 2.042, 1e-3);
    EXPECT_NEAR(tCritical95(1000), 1.960, 1e-3);
}

TEST(TCritical, MonotoneDecreasing)
{
    for (std::size_t df = 1; df < 40; ++df)
        EXPECT_GE(tCritical95(df), tCritical95(df + 1));
}

TEST(CiHalfWidth, ZeroForTinySamples)
{
    EXPECT_DOUBLE_EQ(ciHalfWidth95({}), 0.0);
    EXPECT_DOUBLE_EQ(ciHalfWidth95({3.0}), 0.0);
}

TEST(CiHalfWidth, KnownThreeSampleValue)
{
    // n=3, sd=1, se=1/sqrt(3), t(2)=4.303.
    EXPECT_NEAR(ciHalfWidth95({1.0, 2.0, 3.0}),
                4.303 / std::sqrt(3.0), 1e-3);
}

TEST(CiHalfWidth, ShrinksWithMoreSamples)
{
    std::vector<double> small{1.0, 2.0, 3.0};
    std::vector<double> large;
    for (int i = 0; i < 30; ++i)
        large.push_back(1.0 + (i % 3));
    EXPECT_LT(ciHalfWidth95(large), ciHalfWidth95(small));
}

TEST(ClampTo, Basics)
{
    EXPECT_DOUBLE_EQ(clampTo(5.0, 0.0, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(clampTo(-5.0, 0.0, 3.0), 0.0);
    EXPECT_DOUBLE_EQ(clampTo(1.5, 0.0, 3.0), 1.5);
}

/** Property sweep: geomean lies between min and max. */
class GeomeanBoundsTest
    : public ::testing::TestWithParam<std::vector<double>>
{};

TEST_P(GeomeanBoundsTest, BetweenMinAndMax)
{
    const auto &v = GetParam();
    const double g = geomean(v);
    EXPECT_GE(g, *std::min_element(v.begin(), v.end()) - 1e-12);
    EXPECT_LE(g, *std::max_element(v.begin(), v.end()) + 1e-12);
    EXPECT_LE(g, mean(v) + 1e-12); // AM-GM
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GeomeanBoundsTest,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{0.5, 2.0},
                      std::vector<double>{1.0, 10.0, 100.0},
                      std::vector<double>{0.1, 0.2, 0.3},
                      std::vector<double>{3.0, 3.0, 3.0},
                      std::vector<double>{1e-6, 1e6}));
