/**
 * @file
 * Portfolio dispatch through the serving layer: covered cells answer
 * with their assigned member and the exact recomputed portability
 * cost, uncovered queries get the best-global floor *undegraded*,
 * fault pressure on a covered cell degrades one ladder step to the
 * floor, batches stay bit-identical across thread counts, and the
 * dispatch path touches the allocator zero times. This binary links
 * the counting allocator, so the budget is enforced, not skipped.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graphport/fault/injector.hpp"
#include "graphport/obs/obs.hpp"
#include "graphport/portfolio/portfolio.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/batch.hpp"
#include "graphport/serve/loadgen.hpp"
#include "graphport/support/allochook.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

const portfolio::Portfolio &
smallPortfolio()
{
    static const portfolio::Portfolio p = [] {
        portfolio::CoverOptions o;
        o.epsilon = 0.10;
        return portfolio::Portfolio::solve(testutil::smallDataset(),
                                           o);
    }();
    return p;
}

/** A fresh advisor over the small dataset with the portfolio attached. */
std::unique_ptr<serve::Advisor>
portfolioAdvisor()
{
    auto adv = std::make_unique<serve::Advisor>(
        serve::StrategyIndex::build(testutil::smallDataset()));
    adv->attachPortfolio(smallPortfolio());
    return adv;
}

unsigned
floorConfig()
{
    const portfolio::Portfolio &p = smallPortfolio();
    return p.members()[p.bestGlobalMember()];
}

} // namespace

TEST(PortfolioServe, CoveredCellsAnswerWithTheAssignedMember)
{
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    const runner::Dataset &ds = testutil::smallDataset();
    const portfolio::Portfolio &p = smallPortfolio();
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const runner::Test test = ds.testAt(t);
        const serve::Advice a = adv.adviseResilient(
            {test.app, test.input, test.chip}, t, {});
        EXPECT_EQ(a.tierId, serve::Tier::Portfolio);
        EXPECT_EQ(a.tier, "portfolio");
        EXPECT_FALSE(a.predictive);
        EXPECT_FALSE(a.degraded);
        EXPECT_FALSE(a.partition.empty());
        const portfolio::PortfolioCell &cell = p.cells()[t];
        EXPECT_EQ(a.portfolioMember, cell.member);
        EXPECT_EQ(a.config, p.members()[cell.member]);
        // The acceptance criterion: the reported portability cost
        // must equal a direct recomputation from the priced dataset,
        // exactly (both sides are the same division of means).
        EXPECT_EQ(a.portabilityCostVsOracle,
                  ds.meanNs(t, a.config) /
                      ds.meanNs(t, ds.bestConfig(t)))
            << test.app << "/" << test.input << "/" << test.chip;
        EXPECT_EQ(a.partitionSlowdownVsOracle, cell.slowdown);
    }
}

TEST(PortfolioServe, UncoveredQueryGetsTheFloorUndegraded)
{
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    // An app the study never measured, and a chip outside the index:
    // neither resolves to a cell, and the portfolio path never
    // traces, so both answer from the best-global floor.
    for (const serve::Query &q :
         {serve::Query{"no-such-app", "road", "M4000"},
          serve::Query{"bfs-topo", "road", "GTX1080"}}) {
        const serve::Advice a = adv.adviseResilient(q, 7, {});
        EXPECT_EQ(a.tierId, serve::Tier::Portfolio);
        // The floor is the intended answer for an uncovered query,
        // not a degradation.
        EXPECT_FALSE(a.degraded);
        EXPECT_EQ(a.degradeSteps, 0u);
        EXPECT_TRUE(a.partition.empty());
        EXPECT_EQ(a.config, floorConfig());
        EXPECT_EQ(a.portfolioMember,
                  smallPortfolio().bestGlobalMember());
        EXPECT_EQ(a.portabilityCostVsOracle,
                  smallPortfolio().bestGlobalGeomean());
    }
}

TEST(PortfolioServe, AttachRejectsAForeignPortfolio)
{
    // Solved over the all-chip dataset, attached to an advisor over
    // the two-chip one: the content hashes differ.
    portfolio::CoverOptions o;
    o.epsilon = 0.10;
    const portfolio::Portfolio foreign = portfolio::Portfolio::solve(
        testutil::smallAllChipDataset(), o);
    serve::Advisor adv(
        serve::StrategyIndex::build(testutil::smallDataset()));
    EXPECT_THROW(adv.attachPortfolio(foreign), FatalError);
    EXPECT_FALSE(adv.hasPortfolio());
}

TEST(PortfolioServe, SwapIndexDropsThePortfolio)
{
    const auto advPtr = portfolioAdvisor();
    serve::Advisor &adv = *advPtr;
    ASSERT_TRUE(adv.hasPortfolio());
    adv.swapIndex(
        serve::StrategyIndex::build(testutil::smallDataset()));
    EXPECT_FALSE(adv.hasPortfolio());
    // Back on the lattice descent.
    const serve::Advice a =
        adv.adviseResilient({"bfs-topo", "road", "M4000"}, 1, {});
    EXPECT_NE(a.tierId, serve::Tier::Portfolio);
    // And re-attachable against the republished index.
    adv.attachPortfolio(smallPortfolio());
    EXPECT_TRUE(adv.hasPortfolio());
    const serve::Advice b =
        adv.adviseResilient({"bfs-topo", "road", "M4000"}, 1, {});
    EXPECT_EQ(b.tierId, serve::Tier::Portfolio);
}

TEST(PortfolioServe, FaultPressureDegradesOneStepToTheFloor)
{
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    fault::Injector injector(
        fault::FaultSchedule::parse("seed=1;serve.portfolio:p=1"));
    fault::ScopedInjector scope(&injector);
    const serve::ServePolicy policy;
    const serve::Advice a = adv.adviseResilient(
        {"bfs-topo", "road", "M4000"}, 3, policy);
    EXPECT_EQ(a.tierId, serve::Tier::Portfolio);
    EXPECT_TRUE(a.degraded);
    EXPECT_EQ(a.degradeSteps, 1u);
    EXPECT_EQ(a.retries, policy.maxRetries);
    // The floor answer carries no cell attribution.
    EXPECT_TRUE(a.partition.empty());
    EXPECT_EQ(a.config, floorConfig());
    EXPECT_EQ(a.portabilityCostVsOracle,
              smallPortfolio().bestGlobalGeomean());
}

TEST(PortfolioServe, BatchIsBitIdenticalAcrossThreadCounts)
{
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    const std::vector<serve::Query> stream = serve::makeQueryStream(
        serve::StrategyIndex::build(testutil::smallDataset()), 400,
        11);
    const serve::LoadBenchResult result =
        serve::runLoadBench(adv, stream, {1, 4, 8});
    EXPECT_TRUE(result.allBitIdentical);
}

TEST(PortfolioServe, BatchIsBitIdenticalUnderFaultPressure)
{
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    fault::Injector injector(fault::FaultSchedule::parse(
        "seed=9;serve.portfolio:p=0.3"));
    fault::ScopedInjector scope(&injector);
    const std::vector<serve::Query> stream = serve::makeQueryStream(
        serve::StrategyIndex::build(testutil::smallDataset()), 400,
        13);
    const serve::LoadBenchResult result =
        serve::runLoadBench(adv, stream, {1, 4, 8});
    EXPECT_TRUE(result.allBitIdentical);
}

TEST(PortfolioServe, BatchRecordsDispatchCounters)
{
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    const std::vector<serve::Query> queries = {
        {"bfs-topo", "road", "M4000"}, // covered cell
        {"bfs-topo", "road", "R9"},    // covered cell
        {"no-such-app", "road", "M4000"}, // floor
    };
    obs::Obs obs;
    const std::vector<serve::Advice> answers =
        serve::serveBatch(adv, queries, 1, nullptr, &obs);
    ASSERT_EQ(answers.size(), queries.size());
    EXPECT_EQ(obs.metrics.counterValue("portfolio.dispatch.cell_hits"),
              2u);
    EXPECT_EQ(obs.metrics.counterValue("portfolio.dispatch.floor"),
              1u);
    EXPECT_EQ(obs.metrics.counterValue("serve.tier.portfolio"), 3u);
}

TEST(PortfolioServe, DispatchAllocatesNothing)
{
    // This test binary links bench/alloc_hook.cpp, so the counting
    // operators are live and the budget is enforced, not skipped.
    ASSERT_TRUE(support::allocCountingActive());
    const auto advPtr = portfolioAdvisor();
    const serve::Advisor &adv = *advPtr;
    const std::vector<serve::Query> stream = serve::makeQueryStream(
        serve::StrategyIndex::build(testutil::smallDataset()), 300,
        17);
    const serve::ServePolicy policy;
    const serve::Advisor::Lease bundle = adv.lease();
    const auto pass = [&] {
        for (std::size_t i = 0; i < stream.size(); ++i) {
            const serve::IdQuery id = bundle->frozen.internQuery(
                stream[i].app, stream[i].input, stream[i].chip);
            const serve::AdviceView v =
                adv.advise(id, i, policy, nullptr);
            (void)v;
        }
    };
    pass(); // warm: intern tables and code paths
    support::resetThreadAllocCounts();
    pass();
    const support::AllocCounts counts =
        support::threadAllocCounts();
    EXPECT_EQ(counts.allocs, 0u);
    EXPECT_EQ(counts.frees, 0u);
}
