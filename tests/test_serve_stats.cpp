/**
 * @file
 * Tests for the serving observability layer: latency histogram
 * percentile accuracy and merging, and ServerStats derived metrics
 * plus JSON shape.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graphport/serve/serverstats.hpp"

using namespace graphport;

TEST(LatencyHistogram, EmptyHistogramReportsZero)
{
    serve::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentileNs(50.0), 0.0);
}

TEST(LatencyHistogram, SingleValueWithinBucketResolution)
{
    serve::LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(1000.0);
    // Log bucketing with 8 buckets/octave: the reported percentile
    // is the bucket's geometric midpoint, within ~4.5% of the truth.
    EXPECT_NEAR(h.percentileNs(50.0), 1000.0, 1000.0 * 0.05);
    EXPECT_NEAR(h.percentileNs(99.0), 1000.0, 1000.0 * 0.05);
}

TEST(LatencyHistogram, PercentilesAreMonotone)
{
    serve::LatencyHistogram h;
    // 90 fast samples, 9 slower, 1 very slow.
    for (int i = 0; i < 90; ++i)
        h.record(500.0);
    for (int i = 0; i < 9; ++i)
        h.record(20000.0);
    h.record(3.0e6);
    EXPECT_EQ(h.count(), 100u);
    const double p50 = h.percentileNs(50.0);
    const double p95 = h.percentileNs(95.0);
    const double p99 = h.percentileNs(99.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_NEAR(p50, 500.0, 500.0 * 0.05);
    EXPECT_NEAR(p95, 20000.0, 20000.0 * 0.05);
    // p99 is the 99th sample (the last 20 us one); p100 would be the
    // 3 ms outlier.
    EXPECT_NEAR(p99, 20000.0, 20000.0 * 0.05);
    EXPECT_NEAR(h.percentileNs(100.0), 3.0e6, 3.0e6 * 0.05);
}

TEST(LatencyHistogram, ExtremesClampInstead0fCrashing)
{
    serve::LatencyHistogram h;
    h.record(0.0);
    h.record(-5.0);
    h.record(1e30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GT(h.percentileNs(100.0), 0.0);
}

TEST(LatencyHistogram, MergeAddsCounts)
{
    serve::LatencyHistogram a;
    serve::LatencyHistogram b;
    for (int i = 0; i < 10; ++i)
        a.record(100.0);
    for (int i = 0; i < 30; ++i)
        b.record(100000.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 40u);
    // After the merge the median lands in b's (more numerous) range.
    EXPECT_NEAR(a.percentileNs(50.0), 100000.0, 100000.0 * 0.05);
}

TEST(ServerStats, DerivedMetrics)
{
    serve::ServerStats s;
    s.queries = 500;
    s.wallSeconds = 0.25;
    EXPECT_DOUBLE_EQ(s.qps(), 2000.0);
    // No feature lookups at all counts as a perfect hit rate.
    EXPECT_DOUBLE_EQ(s.cacheHitRate(), 1.0);
    s.cacheHits = 3;
    s.cacheMisses = 1;
    EXPECT_DOUBLE_EQ(s.cacheHitRate(), 0.75);

    serve::ServerStats unmeasured;
    EXPECT_DOUBLE_EQ(unmeasured.qps(), 0.0);
}

TEST(ServerStats, JsonCarriesTheStableKeys)
{
    serve::ServerStats s;
    s.threads = 4;
    s.queries = 2;
    s.wallSeconds = 0.5;
    s.tierCounts["chip_app_input"] = 1;
    s.tierCounts["predictive"] = 1;
    s.predictiveAnswers = 1;
    s.latency.record(1000.0);
    s.latency.record(2000.0);
    const std::string json = s.toJson();
    for (const char *key :
         {"\"threads\"", "\"queries\"", "\"wall_seconds\"",
          "\"qps\"", "\"p50_us\"", "\"p95_us\"", "\"p99_us\"",
          "\"predictive_answers\"", "\"snapshot_feature_hits\"",
          "\"cache_hits\"", "\"cache_misses\"",
          "\"cache_hit_rate\"", "\"tiers\"",
          "\"chip_app_input\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(ServerStats, PrintMentionsEveryTier)
{
    serve::ServerStats s;
    s.queries = 3;
    s.tierCounts["global"] = 2;
    s.tierCounts["predictive"] = 1;
    std::ostringstream os;
    s.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("global"), std::string::npos);
    EXPECT_NE(text.find("predictive"), std::string::npos);
    EXPECT_NE(text.find("latency"), std::string::npos);
}
