/**
 * @file
 * Crash/resume tests for the sweep checkpoint (.gpk): an injected
 * kill-9-equivalent crash mid-pricing must leave a checkpoint that a
 * second build restores bit-identically — at any thread count,
 * without re-pricing the durable cells — while torn tails and
 * foreign-universe checkpoints degrade to a warning and a fresh
 * sweep, never an error.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graphport/fault/injector.hpp"
#include "graphport/obs/obs.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"

using namespace graphport;

namespace {

std::string
ckPath(const std::string &name)
{
    return ::testing::TempDir() + "graphport_ck_" + name + ".gpk";
}

runner::Universe
universe()
{
    return runner::smallUniverse(2);
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/**
 * Run a checkpointed build expecting the injected crash at cell
 * @p crashCell; returns true when the crash fired (the checkpoint is
 * then left on disk for the resume pass to prove itself on).
 */
bool
crashAtCell(const std::string &path, std::size_t crashCell,
            unsigned threads, std::size_t every = 64)
{
    fault::Injector injector(fault::FaultSchedule::parse(
        "seed=1;sweep.crash:once=" + std::to_string(crashCell)));
    fault::ScopedInjector scope(&injector);
    runner::BuildOptions options;
    options.threads = threads;
    options.checkpointPath = path;
    options.checkpointEvery = every;
    try {
        runner::Dataset::build(universe(), options);
    } catch (const fault::InjectedCrash &e) {
        EXPECT_EQ(e.site(), "sweep.crash");
        EXPECT_EQ(e.key(), crashCell);
        return true;
    }
    return false;
}

/** Resume (no injector) and return the finished dataset. */
runner::Dataset
resume(const std::string &path, unsigned threads, obs::Obs *obs,
       std::size_t every = 64)
{
    runner::BuildOptions options;
    options.threads = threads;
    options.checkpointPath = path;
    options.checkpointEvery = every;
    options.obs = obs;
    return runner::Dataset::build(universe(), options);
}

} // namespace

TEST(SweepCheckpoint, ResumeAfterInjectedCrashIsBitIdentical)
{
    const std::uint64_t expected =
        runner::Dataset::build(universe()).contentHash();

    const std::string path = ckPath("crash_resume");
    std::remove(path.c_str());
    ASSERT_TRUE(crashAtCell(path, 500, 1));
    ASSERT_TRUE(fileExists(path)) << "crash left no checkpoint";

    obs::Obs o;
    const runner::Dataset resumed = resume(path, 1, &o);
    EXPECT_EQ(resumed.contentHash(), expected);
    // Blocks 0..447 were flushed before the crash at cell 500.
    EXPECT_EQ(o.metrics.counterValue("sweep.checkpoint."
                                     "cells_restored"),
              448u);
    EXPECT_FALSE(fileExists(path))
        << "completed build must delete its checkpoint";
}

TEST(SweepCheckpoint, ResumeAtDifferentThreadCountMatches)
{
    const std::uint64_t expected =
        runner::Dataset::build(universe()).contentHash();
    const std::string path = ckPath("threads");
    std::remove(path.c_str());
    ASSERT_TRUE(crashAtCell(path, 300, 4));
    for (unsigned threads : {1u, 8u}) {
        // Re-crash then resume at each width; every resume must land
        // on the serial uninterrupted hash.
        const runner::Dataset resumed =
            resume(path, threads, nullptr);
        EXPECT_EQ(resumed.contentHash(), expected)
            << threads << " threads";
        ASSERT_TRUE(crashAtCell(path, 300, threads));
    }
    std::remove(path.c_str());
}

TEST(SweepCheckpoint, RestoredCellsAreNotRepriced)
{
    const std::string path = ckPath("no_reprice");
    std::remove(path.c_str());
    ASSERT_TRUE(crashAtCell(path, 500, 2));

    // The reference build prices every cell, so it must run before
    // the once=10 schedule is installed (it has no checkpoint to
    // shield it).
    const std::uint64_t expected =
        runner::Dataset::build(universe()).contentHash();

    // Cell 10 is durable in the checkpoint (block [0, 64) flushed
    // long before the crash). If the resume re-priced it, this
    // schedule would crash again — completing proves the restore
    // path skips it.
    fault::Injector injector(
        fault::FaultSchedule::parse("seed=1;sweep.crash:once=10"));
    fault::ScopedInjector scope(&injector);
    obs::Obs o;
    const runner::Dataset resumed = resume(path, 1, &o);
    EXPECT_EQ(resumed.contentHash(), expected);
    EXPECT_EQ(injector.injectedCount(), 0u);
}

TEST(SweepCheckpoint, TornTailIsDroppedNotFatal)
{
    const std::string path = ckPath("torn");
    std::remove(path.c_str());
    ASSERT_TRUE(crashAtCell(path, 200, 1));
    {
        // A crash mid-append: the last row stops mid-payload.
        std::ofstream out(path, std::ios::app);
        out << "cell,9999,deadbeef";
    }
    obs::Obs o;
    const runner::Dataset resumed = resume(path, 1, &o);
    EXPECT_EQ(resumed.contentHash(),
              runner::Dataset::build(universe()).contentHash());
    EXPECT_GT(
        o.metrics.counterValue("sweep.checkpoint.cells_restored"),
        0u);
}

TEST(SweepCheckpoint, ForeignUniverseCheckpointRestoresNothing)
{
    const std::string path = ckPath("foreign");
    std::remove(path.c_str());
    ASSERT_TRUE(crashAtCell(path, 200, 1));

    // Same file, different universe: the identity stamp must veto
    // the restore and the sweep must start over, warning only.
    runner::Universe other = universe();
    other.seed += 1;
    runner::BuildOptions options;
    options.checkpointPath = path;
    obs::Obs o;
    options.obs = &o;
    const runner::Dataset ds =
        runner::Dataset::build(other, options);
    EXPECT_EQ(o.metrics.counterValue("sweep.checkpoint."
                                     "cells_restored"),
              0u);
    EXPECT_EQ(ds.contentHash(),
              runner::Dataset::build(other).contentHash());
}

TEST(SweepCheckpoint, UncrashedCheckpointedBuildMatchesPlain)
{
    const std::string path = ckPath("plain");
    std::remove(path.c_str());
    runner::BuildOptions options;
    options.checkpointPath = path;
    options.checkpointEvery = 100;
    const runner::Dataset ds =
        runner::Dataset::build(universe(), options);
    EXPECT_EQ(ds.contentHash(),
              runner::Dataset::build(universe()).contentHash());
    EXPECT_FALSE(fileExists(path));
}

TEST(SweepCheckpoint, IdentityHashSeparatesUniverses)
{
    const runner::Universe a = universe();
    runner::Universe b = universe();
    b.seed += 1;
    EXPECT_NE(runner::universeIdentityHash(a),
              runner::universeIdentityHash(b));
    EXPECT_EQ(runner::universeIdentityHash(a),
              runner::universeIdentityHash(universe()));
}
