/**
 * @file
 * fault::Injector and FaultSchedule: grammar, keyed decision modes,
 * thread-count determinism, counters, and the atomicWriteFile hook
 * seam.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graphport/fault/injector.hpp"
#include "graphport/obs/metrics.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/snapshot.hpp"

using namespace graphport;

namespace {

fault::Injector
injectorFor(const std::string &spec)
{
    return fault::Injector(fault::FaultSchedule::parse(spec));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "graphport_fault_" + name;
}

} // namespace

TEST(FaultSchedule, ParsesSeedAndEveryRuleKind)
{
    const fault::FaultSchedule s = fault::FaultSchedule::parse(
        "seed=42; a:p=0.25; b:once=7; c:every=3; d:first=5;");
    EXPECT_EQ(s.seed, 42u);
    ASSERT_EQ(s.sites.size(), 4u);
    EXPECT_EQ(s.sites.at("a").mode,
              fault::SiteRule::Mode::Probability);
    EXPECT_DOUBLE_EQ(s.sites.at("a").probability, 0.25);
    EXPECT_EQ(s.sites.at("b").mode, fault::SiteRule::Mode::Once);
    EXPECT_EQ(s.sites.at("b").n, 7u);
    EXPECT_EQ(s.sites.at("c").mode, fault::SiteRule::Mode::Every);
    EXPECT_EQ(s.sites.at("c").n, 3u);
    EXPECT_EQ(s.sites.at("d").mode, fault::SiteRule::Mode::FirstN);
    EXPECT_EQ(s.sites.at("d").n, 5u);
}

TEST(FaultSchedule, EmptySpecMeansNoSites)
{
    EXPECT_TRUE(fault::FaultSchedule::parse("").empty());
    EXPECT_TRUE(fault::FaultSchedule::parse(" ; ; ").empty());
    EXPECT_FALSE(fault::FaultSchedule::parse("x:once=0").empty());
}

TEST(FaultSchedule, RejectsMalformedClausesWithDiagnostics)
{
    const auto expectRejects = [](const std::string &spec,
                                  const std::string &needle) {
        try {
            fault::FaultSchedule::parse(spec);
            FAIL() << "expected rejection of '" << spec << "'";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << spec << " -> " << e.what();
        }
    };
    expectRejects("bogus", "bad clause");
    expectRejects("speed=1", "bad clause");
    expectRejects("seed=abc", "non-negative integer");
    expectRejects(":once=1", "empty site");
    expectRejects("a:frobnicate=1", "unknown rule");
    expectRejects("a:once", "bad rule");
    expectRejects("a:p=1.5", "probability in [0, 1]");
    expectRejects("a:p=-0.1", "probability in [0, 1]");
    expectRejects("a:p=zzz", "probability in [0, 1]");
    expectRejects("a:every=0", "every=N needs N >= 1");
    expectRejects("a:once=12x", "non-negative integer");
    expectRejects("a:once=1;a:p=0.5", "given twice");
}

TEST(FaultInjector, OnceFiresForExactlyThatKey)
{
    fault::Injector inj = injectorFor("victim:once=17");
    for (std::uint64_t key = 0; key < 64; ++key)
        EXPECT_EQ(inj.shouldInject("victim", key), key == 17)
            << key;
    // Keyed, not counted: the same key fires again.
    EXPECT_TRUE(inj.shouldInject("victim", 17));
    EXPECT_FALSE(inj.shouldInject("bystander", 17));
}

TEST(FaultInjector, EveryAndFirstFollowTheirArithmetic)
{
    fault::Injector inj = injectorFor("e:every=4;f:first=3");
    for (std::uint64_t key = 0; key < 32; ++key) {
        EXPECT_EQ(inj.shouldInject("e", key), key % 4 == 0) << key;
        EXPECT_EQ(inj.shouldInject("f", key), key < 3) << key;
    }
}

TEST(FaultInjector, ProbabilityIsKeyedSeededAndRoughlyCalibrated)
{
    const unsigned kKeys = 4000;
    fault::Injector a = injectorFor("seed=1;s:p=0.25");
    fault::Injector b = injectorFor("seed=1;s:p=0.25");
    fault::Injector c = injectorFor("seed=2;s:p=0.25");
    unsigned fires = 0, differsFromC = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        const bool fa = a.shouldInject("s", key);
        EXPECT_EQ(fa, b.shouldInject("s", key)) << key;
        if (fa)
            ++fires;
        if (fa != c.shouldInject("s", key))
            ++differsFromC;
    }
    // ~1000 expected; a 4-sigma band is ~+-150.
    EXPECT_GT(fires, 850u);
    EXPECT_LT(fires, 1150u);
    // A different seed is a genuinely different sequence.
    EXPECT_GT(differsFromC, 0u);
    // p=0 never fires, p=1 always fires.
    fault::Injector never = injectorFor("n:p=0");
    fault::Injector always = injectorFor("y:p=1");
    for (std::uint64_t key = 0; key < 100; ++key) {
        EXPECT_FALSE(never.shouldInject("n", key));
        EXPECT_TRUE(always.shouldInject("y", key));
    }
}

// The determinism bar: decisions are a pure function of
// (seed, site, key), so any thread interleaving sees the same per-key
// verdicts as a serial pass.
TEST(FaultInjector, DecisionsAreIdenticalAcrossThreadCounts)
{
    const std::uint64_t kKeys = 8192;
    const std::string spec =
        "seed=7;s:p=0.125;t:every=9;u:first=100";
    const std::vector<std::string> sites = {"s", "t", "u"};

    const auto verdicts = [&](unsigned threads) {
        fault::Injector inj = injectorFor(spec);
        std::vector<char> out(kKeys * sites.size(), 0);
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (std::uint64_t key = t; key < kKeys;
                     key += threads)
                    for (std::size_t s = 0; s < sites.size(); ++s)
                        out[key * sites.size() + s] =
                            inj.shouldInject(sites[s], key) ? 1 : 0;
            });
        }
        for (std::thread &th : pool)
            th.join();
        EXPECT_EQ(inj.checkedCount(), kKeys * sites.size());
        return out;
    };

    const std::vector<char> serial = verdicts(1);
    EXPECT_EQ(verdicts(4), serial);
    EXPECT_EQ(verdicts(8), serial);
}

TEST(FaultInjector, MaybeFaultAndMaybeCrashThrowTheirTypes)
{
    fault::Injector inj = injectorFor("boom:once=3");
    EXPECT_NO_THROW(inj.maybeFault("boom", 2));
    try {
        inj.maybeFault("boom", 3);
        FAIL() << "expected InjectedFault";
    } catch (const fault::InjectedFault &e) {
        EXPECT_EQ(e.site(), "boom");
        EXPECT_EQ(e.key(), 3u);
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
    }
    try {
        inj.maybeCrash("boom", 3);
        FAIL() << "expected InjectedCrash";
    } catch (const fault::InjectedCrash &e) {
        EXPECT_EQ(e.site(), "boom");
        EXPECT_EQ(e.key(), 3u);
    }
    // InjectedCrash must not be caught as InjectedFault.
    EXPECT_THROW(inj.maybeCrash("boom", 3), fault::InjectedCrash);
}

TEST(FaultInjector, CountersFoldIntoMetrics)
{
    fault::Injector inj = injectorFor("hit:first=2;miss:once=999");
    for (std::uint64_t key = 0; key < 10; ++key) {
        inj.shouldInject("hit", key);
        inj.shouldInject("miss", key);
        inj.shouldInject("unscheduled", key);
    }
    EXPECT_EQ(inj.checkedCount(), 30u);
    EXPECT_EQ(inj.injectedCount(), 2u);

    obs::MetricsRegistry metrics;
    inj.mergeInto(metrics);
    EXPECT_EQ(metrics.counter("fault.checked").value(), 30u);
    EXPECT_EQ(metrics.counter("fault.injected").value(), 2u);
    EXPECT_EQ(metrics.counter("fault.injected.hit").value(), 2u);
    // Sites that never fired stay out of the registry.
    EXPECT_EQ(metrics.counter("fault.injected.miss").value(), 0u);
}

TEST(FaultInjector, ScopedInstallRestoresThePreviousInjector)
{
    ASSERT_EQ(fault::installedInjector(), nullptr);
    EXPECT_FALSE(fault::shouldInject("anything", 0));
    fault::Injector outer = injectorFor("outer:first=1");
    {
        fault::ScopedInjector scopeOuter(&outer);
        EXPECT_EQ(fault::installedInjector(), &outer);
        EXPECT_TRUE(fault::shouldInject("outer", 0));
        fault::Injector inner = injectorFor("inner:first=1");
        {
            fault::ScopedInjector scopeInner(&inner);
            EXPECT_EQ(fault::installedInjector(), &inner);
            EXPECT_TRUE(fault::shouldInject("inner", 0));
            EXPECT_FALSE(fault::shouldInject("outer", 0));
        }
        EXPECT_EQ(fault::installedInjector(), &outer);
    }
    EXPECT_EQ(fault::installedInjector(), nullptr);
    EXPECT_NO_THROW(fault::maybeFault("outer", 0));
    EXPECT_NO_THROW(fault::maybeCrash("outer", 0));
}

// The atomicWriteFile fault seam, end to end: ENOSPC aborts before
// publication, a vetoed rename keeps the previous contents, a bitflip
// publishes bytes the checksummed reader must reject.
TEST(FaultInjector, WriteFaultSitesDriveAtomicWriteFile)
{
    const std::string path = tempPath("write_seam");
    std::remove(path.c_str());
    const auto writeHello = [](std::ostream &os) {
        os << "hello\n";
    };

    {
        fault::Injector inj =
            injectorFor("snapshot.write.enospc:p=1");
        fault::ScopedInjector scope(&inj);
        EXPECT_THROW(
            support::atomicWriteFile(path, "test artefact",
                                     writeHello),
            FatalError);
        EXPECT_EQ(inj.injectedCount(), 1u);
    }
    // Nothing was published, and no temp file leaked.
    EXPECT_EQ(readFile(path), "");
    EXPECT_EQ(readFile(path + ".tmp"), "");

    // A clean write succeeds once the scope has uninstalled hooks.
    support::atomicWriteFile(path, "test artefact", writeHello);
    EXPECT_EQ(readFile(path), "hello\n");

    {
        fault::Injector inj = injectorFor("snapshot.rename:p=1");
        fault::ScopedInjector scope(&inj);
        EXPECT_THROW(support::atomicWriteFile(
                         path, "test artefact",
                         [](std::ostream &os) { os << "evil\n"; }),
                     FatalError);
    }
    // The veto removed the temp file and kept the old contents.
    EXPECT_EQ(readFile(path), "hello\n");
    EXPECT_EQ(readFile(path + ".tmp"), "");

    {
        fault::Injector inj =
            injectorFor("snapshot.write.short:p=1");
        fault::ScopedInjector scope(&inj);
        support::atomicWriteFile(
            path, "test artefact", [](std::ostream &os) {
                os << "0123456789abcdef\n";
            });
    }
    // The short write *published* truncated bytes — that is the
    // point: only a reader-side checksum can catch it.
    EXPECT_EQ(readFile(path), "01234567");

    {
        fault::Injector inj =
            injectorFor("snapshot.write.bitflip:p=1");
        fault::ScopedInjector scope(&inj);
        support::atomicWriteFile(path, "test artefact", writeHello);
    }
    const std::string flipped = readFile(path);
    EXPECT_EQ(flipped.size(), std::string("hello\n").size());
    EXPECT_NE(flipped, "hello\n");
    std::remove(path.c_str());
}

// A bitflipped *snapshot* write is caught by the whole-file checksum
// on the next load — the writer seam and reader guard compose.
TEST(FaultInjector, BitflippedSnapshotFailsItsChecksumOnLoad)
{
    const std::string path = tempPath("bitflip_roundtrip");
    const auto writeSnapshot = [](std::ostream &os) {
        support::SnapshotWriter w(os, "graphport-test", 1);
        w.row({"payload", "42"});
        w.end();
    };

    support::atomicWriteFile(path, "test snapshot", writeSnapshot);
    const std::string clean = readFile(path);
    {
        std::ifstream in(path);
        support::SnapshotReader r(in, "graphport-test", 1,
                                  "test snapshot", "rewrite it");
        EXPECT_EQ(r.expect("payload", 2)[1], "42");
        EXPECT_NO_THROW(r.expectEnd());
    }

    fault::Injector inj = injectorFor("snapshot.write.bitflip:p=1");
    fault::ScopedInjector scope(&inj);
    support::atomicWriteFile(path, "test snapshot", writeSnapshot);
    ASSERT_NE(readFile(path), clean);
    std::ifstream in(path);
    try {
        support::SnapshotReader r(in, "graphport-test", 1,
                                  "test snapshot", "rewrite it");
        r.expect("payload", 2);
        r.expectEnd();
        // Header or row parsing may also legitimately reject the
        // flip; reaching here silently would be the bug.
        FAIL() << "corrupt snapshot accepted";
    } catch (const FatalError &) {
        // Cause-labelled reject: exactly what the fuzz suite checks
        // in bulk.
    }
    std::remove(path.c_str());
}
