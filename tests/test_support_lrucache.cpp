/**
 * @file
 * Tests for support::LruCache: hit/miss accounting, recency-driven
 * eviction, in-place update, and capacity validation.
 */
#include <gtest/gtest.h>

#include <string>

#include "graphport/support/error.hpp"
#include "graphport/support/lrucache.hpp"

using namespace graphport;

TEST(LruCache, MissThenHit)
{
    support::LruCache<std::string, int> cache(4);
    EXPECT_EQ(cache.get("a"), nullptr);
    cache.put("a", 1);
    const int *v = cache.get("a");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 1);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    support::LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    // Touch 1 so that 2 becomes the LRU entry.
    ASSERT_NE(cache.get(1), nullptr);
    cache.put(3, 30);
    EXPECT_EQ(cache.get(2), nullptr);
    ASSERT_NE(cache.get(1), nullptr);
    ASSERT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutPromotesExistingKey)
{
    support::LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    // Re-putting 1 updates the value and makes 2 the LRU entry.
    cache.put(1, 11);
    cache.put(3, 30);
    EXPECT_EQ(cache.get(2), nullptr);
    const int *v = cache.get(1);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 11);
}

TEST(LruCache, CapacityOneStillCaches)
{
    support::LruCache<int, int> cache(1);
    cache.put(1, 10);
    ASSERT_NE(cache.get(1), nullptr);
    cache.put(2, 20);
    EXPECT_EQ(cache.get(1), nullptr);
    ASSERT_NE(cache.get(2), nullptr);
}

TEST(LruCache, ZeroCapacityIsFatal)
{
    EXPECT_THROW((support::LruCache<int, int>(0)), FatalError);
}

TEST(LruCache, SizeNeverExceedsCapacity)
{
    support::LruCache<int, int> cache(3);
    for (int i = 0; i < 50; ++i)
        cache.put(i, i);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.capacity(), 3u);
    // The three most recent keys survive.
    for (int i = 47; i < 50; ++i)
        EXPECT_NE(cache.get(i), nullptr) << i;
}
