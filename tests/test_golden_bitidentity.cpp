/**
 * @file
 * Golden bit-identity pins for the schedule-language refactor: the
 * legacy 96-config study must produce byte-identical artifacts
 * before and after dsl::Schedule replaced the OptConfig tuple in the
 * pricing and analysis pipeline.
 *
 * The constants below were captured from a build of the pre-refactor
 * tree (the seed of this PR); any drift in dataset content hashes,
 * study CSV checksums or strategy tables is a reproduction break,
 * not a test to update lightly.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/port/strategy.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/strings.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

// Captured from the pre-refactor seed (legacy OptConfig pipeline).
constexpr std::uint64_t kGoldenSmall2ContentHash =
    0x8961ab9c56014df2ull;
constexpr std::uint64_t kGoldenSmall3ContentHash =
    0xfc83d5c7228dacceull;
const char *const kGoldenSmall2CsvSum = "# sum ecab24b28c2adb25";
const char *const kGoldenSmall3CsvSum = "# sum daef247d04d7f18f";
constexpr std::uint64_t kGoldenSmall2StrategiesHash =
    0xa24ed78823ce5929ull;

std::string
csvBytes(const runner::Dataset &ds)
{
    std::ostringstream os;
    ds.saveCsv(os);
    return os.str();
}

/** Last non-empty line of the CSV — the "# sum <hex>" trailer. */
std::string
csvTrailer(const std::string &bytes)
{
    std::string last;
    for (const std::string &line : split(bytes, '\n'))
        if (!trim(line).empty())
            last = trim(line);
    return last;
}

/** Order-sensitive chain hash over every strategy's full table. */
std::uint64_t
strategiesHash(const runner::Dataset &ds)
{
    std::uint64_t h = 0x5eed;
    for (const port::Strategy &s : port::allStrategies(ds)) {
        h = splitmix64(h ^ hashStr(s.name));
        for (unsigned c : s.configPerTest)
            h = splitmix64(h ^ c);
    }
    return h;
}

} // namespace

TEST(GoldenBitIdentity, Small2StudyMatchesSeed)
{
    const runner::Dataset ds =
        runner::Dataset::build(runner::smallUniverse(2));
    EXPECT_EQ(ds.universe().space.size(), 96u);
    EXPECT_EQ(ds.contentHash(), kGoldenSmall2ContentHash);
    EXPECT_EQ(csvTrailer(csvBytes(ds)), kGoldenSmall2CsvSum);
}

TEST(GoldenBitIdentity, Small3StudyMatchesSeed)
{
    const runner::Dataset ds =
        runner::Dataset::build(runner::smallUniverse(3));
    EXPECT_EQ(ds.contentHash(), kGoldenSmall3ContentHash);
    EXPECT_EQ(csvTrailer(csvBytes(ds)), kGoldenSmall3CsvSum);
}

TEST(GoldenBitIdentity, Small2StrategyTablesMatchSeed)
{
    const runner::Dataset ds =
        runner::Dataset::build(runner::smallUniverse(2));
    EXPECT_EQ(strategiesHash(ds), kGoldenSmall2StrategiesHash);
}

TEST(GoldenBitIdentity, ThreadCountsPreserveSeedBytes)
{
    const runner::Universe u = runner::smallUniverse(2);
    for (unsigned threads : {4u, 8u}) {
        runner::BuildOptions options;
        options.threads = threads;
        const runner::Dataset ds = runner::Dataset::build(u, options);
        EXPECT_EQ(ds.contentHash(), kGoldenSmall2ContentHash)
            << threads << " threads";
        EXPECT_EQ(csvTrailer(csvBytes(ds)), kGoldenSmall2CsvSum)
            << threads << " threads";
    }
}

TEST(GoldenBitIdentity, ShardedBuildsPreserveSeedBytes)
{
    const runner::Universe u = runner::smallUniverse(2);
    const std::size_t items = u.numTests() * dsl::kNumConfigs;
    for (std::size_t shards : {2u, 4u}) {
        std::vector<std::string> paths;
        for (std::size_t s = 0; s < shards; ++s) {
            const shard::WorkRange r =
                shard::rangeOf(s, shards, items);
            const std::string path =
                ::testing::TempDir() + "graphport_golden_shard" +
                std::to_string(shards) + "_" + std::to_string(s) +
                ".gpk";
            std::remove(path.c_str());
            runner::BuildOptions options;
            options.checkpointPath = path;
            options.workBegin = r.begin;
            options.workEnd = r.end;
            options.keepCheckpoint = true;
            (void)runner::Dataset::build(u, options);
            paths.push_back(path);
        }
        const runner::Dataset merged =
            runner::Dataset::fromShardCheckpoints(u, paths);
        EXPECT_EQ(merged.contentHash(), kGoldenSmall2ContentHash)
            << shards << " shards";
        EXPECT_EQ(csvTrailer(csvBytes(merged)), kGoldenSmall2CsvSum)
            << shards << " shards";
        for (const std::string &path : paths)
            std::remove(path.c_str());
    }
}
