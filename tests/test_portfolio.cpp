/**
 * @file
 * Tests for portfolio::solveCover / paretoFrontier and the `.gpp`
 * snapshot: degenerate covers (K = 1, ε = 0), greedy-vs-exact
 * agreement on the small universe, frontier monotonicity, thread-count
 * determinism, and the versioned-format / dataset-hash / epsilon
 * guards of Portfolio::solveOrLoadCached.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "graphport/portfolio/cover.hpp"
#include "graphport/portfolio/portfolio.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

const portfolio::SlowdownMatrix &
smallMatrix()
{
    static const portfolio::SlowdownMatrix m =
        portfolio::SlowdownMatrix::build(testutil::smallDataset(), 1);
    return m;
}

portfolio::CoverOptions
optsAt(double eps)
{
    portfolio::CoverOptions o;
    o.epsilon = eps;
    return o;
}

portfolio::Portfolio
smallPortfolio()
{
    return portfolio::Portfolio::solve(testutil::smallDataset(),
                                       optsAt(0.10));
}

std::string
savedSnapshot()
{
    std::ostringstream os;
    smallPortfolio().save(os);
    return os.str();
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "graphport_" + name;
}

/** Max-over-cells slowdown of one configuration. */
double
maxSlowdownOf(const portfolio::SlowdownMatrix &m, unsigned cfg)
{
    double worst = 0.0;
    for (std::size_t t = 0; t < m.cells(); ++t)
        worst = std::max(worst, m.at(t, cfg));
    return worst;
}

} // namespace

TEST(PortfolioCover, SlowdownMatrixIsOneAtOracle)
{
    const portfolio::SlowdownMatrix &m = smallMatrix();
    EXPECT_EQ(m.cells(), testutil::smallDataset().numTests());
    EXPECT_EQ(m.configs(), testutil::smallDataset().numConfigs());
    for (std::size_t t = 0; t < m.cells(); ++t) {
        EXPECT_EQ(m.at(t, m.oracle(t)), 1.0);
        for (unsigned c = 0; c < m.configs(); ++c)
            EXPECT_GE(m.at(t, c), 1.0);
    }
}

TEST(PortfolioCover, FrontierKOneIsTheMinimaxConfig)
{
    // The K = 1 frontier point degenerates to the best single global
    // choice: the configuration minimising the worst-case slowdown
    // (ties to the lowest configuration id).
    const portfolio::SlowdownMatrix &m = smallMatrix();
    double minimax = maxSlowdownOf(m, 0);
    unsigned best = 0;
    for (unsigned c = 1; c < m.configs(); ++c) {
        const double worst = maxSlowdownOf(m, c);
        if (worst < minimax) {
            minimax = worst;
            best = c;
        }
    }
    const std::vector<portfolio::FrontierPoint> frontier =
        portfolio::paretoFrontier(m, optsAt(0.10));
    ASSERT_FALSE(frontier.empty());
    ASSERT_EQ(frontier.front().k, 1u);
    ASSERT_EQ(frontier.front().members.size(), 1u);
    EXPECT_EQ(frontier.front().members[0], best);
    EXPECT_EQ(frontier.front().maxSlowdown, minimax);
}

TEST(PortfolioCover, GenerousRadiusYieldsASingleMember)
{
    const portfolio::SlowdownMatrix &m = smallMatrix();
    double minimax = maxSlowdownOf(m, 0);
    for (unsigned c = 1; c < m.configs(); ++c)
        minimax = std::min(minimax, maxSlowdownOf(m, c));
    // A radius past the minimax slowdown is coverable by one member.
    const portfolio::CoverSolution s =
        portfolio::solveCover(m, optsAt(minimax));
    ASSERT_EQ(s.members.size(), 1u);
    EXPECT_EQ(s.bestGlobalMember, 0u);
    EXPECT_LE(s.maxSlowdown, 1.0 + minimax);
    for (const portfolio::CellAssignment &a : s.cellAssignments)
        EXPECT_EQ(a.member, 0u);
}

TEST(PortfolioCover, EpsilonZeroRequiresTheFullOracleSet)
{
    const portfolio::SlowdownMatrix &m = smallMatrix();
    std::set<unsigned> oracles;
    for (std::size_t t = 0; t < m.cells(); ++t)
        oracles.insert(m.oracle(t));
    const portfolio::CoverSolution s =
        portfolio::solveCover(m, optsAt(0.0));
    EXPECT_EQ(s.members.size(), oracles.size());
    EXPECT_EQ(s.maxSlowdown, 1.0);
    EXPECT_EQ(s.geomeanSlowdown, 1.0);
    for (const portfolio::CellAssignment &a : s.cellAssignments)
        EXPECT_EQ(a.slowdown, 1.0);
}

TEST(PortfolioCover, GreedyAndExactAgreeOnTheSmallUniverse)
{
    const portfolio::SlowdownMatrix &m = smallMatrix();
    portfolio::CoverOptions o = optsAt(0.10);
    const portfolio::CoverSolution greedy =
        portfolio::solveCover(m, o);
    o.exact = true;
    const portfolio::CoverSolution exact =
        portfolio::solveCover(m, o);
    EXPECT_FALSE(greedy.exact);
    EXPECT_TRUE(exact.exact);
    // The exact search is seeded with the greedy incumbent, so it can
    // only be smaller — and on the small universe greedy is optimal.
    EXPECT_EQ(exact.members.size(), greedy.members.size());
    std::vector<unsigned> a = greedy.members, b = exact.members;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_LE(greedy.maxSlowdown, 1.10);
    EXPECT_LE(exact.maxSlowdown, 1.10);
}

TEST(PortfolioCover, CoverIsFeasibleAndAttributedAtEveryRadius)
{
    const portfolio::SlowdownMatrix &m = smallMatrix();
    for (const double eps : {0.0, 0.02, 0.05, 0.10, 0.25, 1.0}) {
        const portfolio::CoverSolution s =
            portfolio::solveCover(m, optsAt(eps));
        EXPECT_LE(s.maxSlowdown, 1.0 + eps);
        ASSERT_EQ(s.cellAssignments.size(), m.cells());
        for (std::size_t t = 0; t < m.cells(); ++t) {
            const portfolio::CellAssignment &a = s.cellAssignments[t];
            ASSERT_LT(a.member, s.members.size());
            EXPECT_EQ(a.slowdown, m.at(t, s.members[a.member]));
        }
    }
}

TEST(PortfolioCover, RejectsNegativeEpsilon)
{
    EXPECT_THROW(portfolio::solveCover(smallMatrix(), optsAt(-0.5)),
                 FatalError);
}

TEST(PortfolioCover, FrontierIsMonotoneAndEndsAtZero)
{
    const std::vector<portfolio::FrontierPoint> frontier =
        portfolio::paretoFrontier(smallMatrix(), optsAt(0.10));
    ASSERT_FALSE(frontier.empty());
    EXPECT_EQ(frontier.front().k, 1u);
    EXPECT_EQ(frontier.back().epsilon, 0.0);
    EXPECT_EQ(frontier.back().maxSlowdown, 1.0);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        EXPECT_EQ(frontier[i].members.size(), frontier[i].k);
        EXPECT_LE(frontier[i].maxSlowdown,
                  1.0 + frontier[i].epsilon + 1e-12);
        if (i > 0) {
            EXPECT_GT(frontier[i].k, frontier[i - 1].k);
            EXPECT_LT(frontier[i].epsilon,
                      frontier[i - 1].epsilon);
        }
    }
}

TEST(PortfolioCover, DeterministicAcrossThreadCounts)
{
    const portfolio::SlowdownMatrix &m = smallMatrix();
    portfolio::CoverOptions o = optsAt(0.10);
    const portfolio::CoverSolution serial =
        portfolio::solveCover(m, o);
    const std::vector<portfolio::FrontierPoint> serialFrontier =
        portfolio::paretoFrontier(m, o);
    for (const unsigned threads : {4u, 8u}) {
        o.threads = threads;
        const portfolio::SlowdownMatrix mt =
            portfolio::SlowdownMatrix::build(testutil::smallDataset(),
                                             threads);
        const portfolio::CoverSolution s =
            portfolio::solveCover(mt, o);
        EXPECT_EQ(s.members, serial.members);
        EXPECT_EQ(s.maxSlowdown, serial.maxSlowdown);
        EXPECT_EQ(s.geomeanSlowdown, serial.geomeanSlowdown);
        ASSERT_EQ(s.cellAssignments.size(),
                  serial.cellAssignments.size());
        for (std::size_t t = 0; t < s.cellAssignments.size(); ++t) {
            EXPECT_EQ(s.cellAssignments[t].member,
                      serial.cellAssignments[t].member);
            EXPECT_EQ(s.cellAssignments[t].slowdown,
                      serial.cellAssignments[t].slowdown);
        }
        const std::vector<portfolio::FrontierPoint> frontier =
            portfolio::paretoFrontier(mt, o);
        ASSERT_EQ(frontier.size(), serialFrontier.size());
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            EXPECT_EQ(frontier[i].k, serialFrontier[i].k);
            EXPECT_EQ(frontier[i].epsilon,
                      serialFrontier[i].epsilon);
            EXPECT_EQ(frontier[i].members,
                      serialFrontier[i].members);
        }
    }
}

TEST(PortfolioSnapshot, RoundTripIsExact)
{
    const portfolio::Portfolio built = smallPortfolio();
    std::istringstream is(savedSnapshot());
    const portfolio::Portfolio loaded =
        portfolio::Portfolio::load(is, "'test'");
    EXPECT_EQ(loaded.datasetHash(), built.datasetHash());
    EXPECT_EQ(loaded.epsilon(), built.epsilon());
    EXPECT_EQ(loaded.exact(), built.exact());
    EXPECT_EQ(loaded.members(), built.members());
    EXPECT_EQ(loaded.bestGlobalMember(), built.bestGlobalMember());
    EXPECT_EQ(loaded.bestGlobalGeomean(), built.bestGlobalGeomean());
    EXPECT_EQ(loaded.maxSlowdown(), built.maxSlowdown());
    EXPECT_EQ(loaded.geomeanSlowdown(), built.geomeanSlowdown());
    ASSERT_EQ(loaded.cells().size(), built.cells().size());
    for (std::size_t c = 0; c < built.cells().size(); ++c) {
        const portfolio::PortfolioCell &a = built.cells()[c];
        const portfolio::PortfolioCell &b = loaded.cells()[c];
        EXPECT_EQ(a.app, b.app);
        EXPECT_EQ(a.input, b.input);
        EXPECT_EQ(a.chip, b.chip);
        EXPECT_EQ(a.member, b.member);
        EXPECT_EQ(a.slowdown, b.slowdown);
    }
}

TEST(PortfolioSnapshot, SecondRoundTripIsByteIdentical)
{
    const std::string first = savedSnapshot();
    std::istringstream is(first);
    const portfolio::Portfolio loaded =
        portfolio::Portfolio::load(is, "'test'");
    std::ostringstream os;
    loaded.save(os);
    EXPECT_EQ(os.str(), first);
}

TEST(PortfolioSnapshot, ForeignFileFailsWithBadMagic)
{
    std::istringstream is("hello,world\n1,2,3\n");
    try {
        portfolio::Portfolio::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PortfolioSnapshot, VersionMismatchNamesBothVersions)
{
    std::string text = savedSnapshot();
    const std::string header = "graphport-portfolio,1";
    ASSERT_EQ(text.rfind(header, 0), 0u);
    text.replace(0, header.size(), "graphport-portfolio,999");
    std::istringstream is(text);
    try {
        portfolio::Portfolio::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("format version 999"), std::string::npos)
            << what;
        EXPECT_NE(what.find("this build reads 1"), std::string::npos)
            << what;
    }
}

TEST(PortfolioSnapshot, TruncatedSnapshotFails)
{
    std::string text = savedSnapshot();
    const std::size_t cut = text.rfind("cell,");
    ASSERT_NE(cut, std::string::npos);
    std::istringstream is(text.substr(0, cut));
    try {
        portfolio::Portfolio::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PortfolioSnapshot, OutOfRangeCellMemberFails)
{
    std::string text = savedSnapshot();
    // Point the first cell at a member index beyond K and reseal so
    // the semantic guard (not the checksum) is what rejects it.
    const std::size_t pos = text.find("\ncell,");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t lineEnd = text.find('\n', pos + 1);
    std::string line = text.substr(pos + 1, lineEnd - pos - 1);
    // cell,<app>,<input>,<chip>,<member>,<slowdown>
    std::size_t comma = 0;
    for (int i = 0; i < 4; ++i)
        comma = line.find(',', comma + 1);
    const std::size_t memberEnd = line.find(',', comma + 1);
    line.replace(comma + 1, memberEnd - comma - 1, "9999");
    text.replace(pos + 1, lineEnd - pos - 1, line);
    std::istringstream is(testutil::resealSnapshot(text));
    try {
        portfolio::Portfolio::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("member index out of range"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PortfolioSnapshot, LoadFileMissingFails)
{
    EXPECT_THROW(portfolio::Portfolio::loadFile(
                     tempPath("no_such_portfolio.gpp")),
                 FatalError);
}

TEST(PortfolioSnapshot, SaveFileLoadFileRoundTrip)
{
    const std::string path = tempPath("portfolio_roundtrip.gpp");
    const portfolio::Portfolio built = smallPortfolio();
    built.saveFile(path);
    const portfolio::Portfolio loaded =
        portfolio::Portfolio::loadFile(path);
    EXPECT_EQ(loaded.datasetHash(), built.datasetHash());
    EXPECT_EQ(loaded.members(), built.members());
    std::remove(path.c_str());
}

TEST(PortfolioSnapshot, SolveOrLoadCachedReusesMatchingSnapshot)
{
    const std::string path = tempPath("portfolio_cache.gpp");
    std::remove(path.c_str());
    const runner::Dataset &ds = testutil::smallDataset();
    const portfolio::Portfolio first =
        portfolio::Portfolio::solveOrLoadCached(ds, path,
                                                optsAt(0.10));
    std::ifstream exists(path);
    EXPECT_TRUE(exists.good());
    const portfolio::Portfolio second =
        portfolio::Portfolio::solveOrLoadCached(ds, path,
                                                optsAt(0.10));
    EXPECT_EQ(second.datasetHash(), first.datasetHash());
    EXPECT_EQ(second.members(), first.members());
    std::remove(path.c_str());
}

TEST(PortfolioSnapshot, SolveOrLoadCachedRebuildsOnStaleHash)
{
    const std::string path = tempPath("portfolio_stale.gpp");
    std::string text = savedSnapshot();
    const std::size_t pos = text.find("dataset_hash,");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t val =
        pos + std::string("dataset_hash,").size();
    text.replace(val, 16, "deadbeefdeadbeef");
    {
        std::ofstream out(path);
        out << testutil::resealSnapshot(text);
    }
    const runner::Dataset &ds = testutil::smallDataset();
    ::testing::internal::CaptureStderr();
    const portfolio::Portfolio p =
        portfolio::Portfolio::solveOrLoadCached(ds, path,
                                                optsAt(0.10));
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("different dataset"), std::string::npos)
        << err;
    EXPECT_NE(err.find("re-solving"), std::string::npos) << err;
    EXPECT_EQ(p.datasetHash(), ds.contentHash());
    std::remove(path.c_str());
}

TEST(PortfolioSnapshot, SolveOrLoadCachedRebuildsOnEpsilonMismatch)
{
    const std::string path = tempPath("portfolio_eps.gpp");
    smallPortfolio().saveFile(path); // solved at eps = 0.10
    const runner::Dataset &ds = testutil::smallDataset();
    ::testing::internal::CaptureStderr();
    const portfolio::Portfolio p =
        portfolio::Portfolio::solveOrLoadCached(ds, path,
                                                optsAt(0.25));
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("epsilon"), std::string::npos) << err;
    EXPECT_NE(err.find("re-solving"), std::string::npos) << err;
    EXPECT_EQ(p.epsilon(), 0.25);
    std::remove(path.c_str());
}

TEST(PortfolioSnapshot, SolveOrLoadCachedRebuildsOnCorruptFile)
{
    const std::string path = tempPath("portfolio_corrupt.gpp");
    {
        std::ofstream out(path);
        out << "this is not a portfolio\n";
    }
    const runner::Dataset &ds = testutil::smallDataset();
    ::testing::internal::CaptureStderr();
    const portfolio::Portfolio p =
        portfolio::Portfolio::solveOrLoadCached(ds, path,
                                                optsAt(0.10));
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("rejected"), std::string::npos) << err;
    EXPECT_EQ(p.datasetHash(), ds.contentHash());
    std::remove(path.c_str());
}
