/**
 * @file
 * Tests for string helpers and CSV (de)serialisation.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graphport/support/csv.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/strings.hpp"

using namespace graphport;

TEST(Split, Basics)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("a,,b", ','),
              (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, Basics)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("\t\n hi \r"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Join, Basics)
{
    EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
    EXPECT_EQ(join({"a"}, ","), "a");
    EXPECT_EQ(join({}, ","), "");
}

TEST(FmtDouble, Decimals)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
    EXPECT_EQ(fmtDouble(-2.5, 1), "-2.5");
}

TEST(FmtFactor, PaperStyle)
{
    EXPECT_EQ(fmtFactor(22.31), "22.31x");
    EXPECT_EQ(fmtFactor(0.88), "0.88x");
}

TEST(StartsWith, Basics)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_FALSE(startsWith("hello", "hello!"));
}

TEST(ToLower, Basics)
{
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(toLower("123"), "123");
}

TEST(CsvEscape, OnlyQuotesWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvRow, JoinsEscaped)
{
    EXPECT_EQ(csvRow({"a", "b,c", "d"}), "a,\"b,c\",d");
}

TEST(CsvParseLine, Basics)
{
    EXPECT_EQ(csvParseLine("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(csvParseLine("a,\"b,c\",d"),
              (std::vector<std::string>{"a", "b,c", "d"}));
    EXPECT_EQ(csvParseLine("\"he said \"\"hi\"\"\""),
              (std::vector<std::string>{"he said \"hi\""}));
    EXPECT_EQ(csvParseLine(""), (std::vector<std::string>{""}));
}

TEST(CsvParseLine, ToleratesCrlf)
{
    EXPECT_EQ(csvParseLine("a,b\r"),
              (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParseLine, RejectsUnbalancedQuotes)
{
    EXPECT_THROW(csvParseLine("\"oops"), FatalError);
}

TEST(CsvReadWrite, RoundTripsRows)
{
    const std::vector<std::vector<std::string>> rows = {
        {"app", "input", "value"},
        {"bfs-wl", "road", "1.5"},
        {"name,with,commas", "quote\"y", "x"},
    };
    std::stringstream ss;
    csvWrite(ss, rows);
    EXPECT_EQ(csvRead(ss), rows);
}

TEST(CsvRead, SkipsBlankLines)
{
    std::stringstream ss("a,b\n\n  \nc,d\n");
    const auto rows = csvRead(ss);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

/** Round-trip property over assorted nasty fields. */
class CsvRoundTripTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(CsvRoundTripTest, FieldSurvives)
{
    const std::string field = GetParam();
    const auto parsed = csvParseLine(csvRow({field, "x"}));
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0], field);
}

INSTANTIATE_TEST_SUITE_P(
    Fields, CsvRoundTripTest,
    ::testing::Values("", "plain", "with space", "a,b", "\"", "\"\"",
                      "mix,\"of\",both", "trailing,", ",leading"));
