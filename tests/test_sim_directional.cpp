/**
 * @file
 * Directional property tests over the full chip grid: for every chip,
 * each optimisation's effect must follow from that chip's own model
 * parameters (not from hard-coded per-chip expectations). These tests
 * encode the paper's Section V "performance considerations" as
 * machine-checked implications, so any future chip added to the
 * roster is automatically held to them.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/dsl/trace.hpp"
#include "graphport/sim/chip.hpp"
#include "graphport/sim/costengine.hpp"

using namespace graphport;
using namespace graphport::sim;
using graphport::dsl::FgMode;
using graphport::dsl::KernelLaunch;
using graphport::dsl::OptConfig;

namespace {

/** A short-kernel, many-iteration trace (road BFS flavour). */
dsl::AppTrace
launchBoundTrace(unsigned iterations = 300)
{
    dsl::AppTrace trace;
    trace.app = "synthetic";
    trace.input = "road-like";
    trace.hostIterations = iterations;
    for (unsigned i = 0; i < iterations; ++i) {
        KernelLaunch l;
        l.name = "frontier";
        l.iteration = i;
        l.items = 128;
        l.hasNeighborLoop = true;
        for (int n = 0; n < 128; ++n)
            l.hist.add(4);
        l.edges = 128 * 4;
        l.hostSyncAfter = true;
        trace.launches.push_back(l);
    }
    return trace;
}

/** A skewed, compute-heavy kernel (social flavour). */
KernelLaunch
socialKernel()
{
    KernelLaunch l;
    l.name = "expand";
    l.items = 8192;
    l.hasNeighborLoop = true;
    l.randomAccess = true;
    std::uint64_t edges = 0;
    for (std::uint64_t i = 0; i < l.items; ++i) {
        const std::uint64_t d = (i % 64 == 0) ? 700 : 12;
        l.hist.add(d);
        edges += d;
    }
    l.edges = edges;
    l.computePerEdge = 3.0;
    return l;
}

class ChipGridTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const ChipModel &chip() const { return chipByName(GetParam()); }
};

} // namespace

TEST_P(ChipGridTest, OitergbDirectionFollowsOverheadBalance)
{
    // Outlining wins exactly when one global-barrier episode costs
    // less than the launch + memcpy it replaces (the trace is
    // sync-bound, so the balance dominates the total).
    const ChipModel &c = chip();
    const dsl::AppTrace trace = launchBoundTrace();
    OptConfig oit;
    oit.oitergb = true;
    const double base =
        CostEngine(c, OptConfig::baseline()).appTimeNs(trace);
    const double outlined = CostEngine(c, oit).appTimeNs(trace);
    const double barrierEpisode =
        c.globalBarrierBaseNs + c.globalBarrierCostNs(128);
    const double launchEpisode = c.kernelLaunchNs + c.hostMemcpyNs;
    if (barrierEpisode < 0.9 * launchEpisode) {
        EXPECT_LT(outlined, base) << c.shortName;
    }
    if (barrierEpisode > 1.1 * launchEpisode) {
        EXPECT_GT(outlined, base) << c.shortName;
    }
}

TEST_P(ChipGridTest, CoopCvDirectionFollowsDriverCombining)
{
    const ChipModel &c = chip();
    KernelLaunch l;
    l.name = "push";
    l.items = 20000;
    l.contendedPushes = 20000;
    l.randomAccess = false;
    OptConfig cc;
    cc.coopCv = true;
    const double base =
        CostEngine(c, OptConfig::baseline()).kernelTimeNs(l);
    const double coop = CostEngine(c, cc).kernelTimeNs(l);
    if (!c.driverCombinesAtomics && c.subgroupSize > 1) {
        // Real combining opportunity: must be a clear win.
        EXPECT_LT(coop, base / 2.0) << c.shortName;
    } else {
        // Redundant or impossible: never a win.
        EXPECT_GE(coop, base) << c.shortName;
    }
}

TEST_P(ChipGridTest, NpSchemesBeatSerialOnSkewedWork)
{
    // Any fine-grained load balancing must beat the serial schedule
    // on heavily skewed neighbour work, on every chip.
    const ChipModel &c = chip();
    const KernelLaunch l = socialKernel();
    OptConfig fg8;
    fg8.fg = FgMode::Fg8;
    const double serial =
        CostEngine(c, OptConfig::baseline()).kernelTimeNs(l);
    EXPECT_LT(CostEngine(c, fg8).kernelTimeNs(l), serial)
        << c.shortName;
}

TEST_P(ChipGridTest, SgBenefitScalesWithDivergenceSensitivity)
{
    // The relative gain of sg on divergent work must grow with the
    // chip's divergence sensitivity: compare against a hypothetical
    // twin with near-zero sensitivity.
    const ChipModel &c = chip();
    ChipModel twin = c;
    twin.memDivergenceSensitivity = 0.01;
    const KernelLaunch l = socialKernel();
    OptConfig sg;
    sg.sg = true;
    const double gain =
        CostEngine(c, OptConfig::baseline()).kernelTimeNs(l) /
        CostEngine(c, sg).kernelTimeNs(l);
    const double twinGain =
        CostEngine(twin, OptConfig::baseline()).kernelTimeNs(l) /
        CostEngine(twin, sg).kernelTimeNs(l);
    EXPECT_GE(gain, twinGain * 0.999) << c.shortName;
    if (c.memDivergenceSensitivity > 1.0) {
        EXPECT_GT(gain, 1.5 * twinGain) << c.shortName;
    }
}

TEST_P(ChipGridTest, Sz256NeverHelpsLatencyHiding)
{
    // effectiveLanes(256) <= effectiveLanes(128) on every chip in
    // the roster (equal-thread occupancy at best, group-count
    // penalty always).
    const ChipModel &c = chip();
    EXPECT_LE(c.effectiveLanes(256), c.effectiveLanes(128) + 1e-9)
        << c.shortName;
}

TEST_P(ChipGridTest, BandwidthFloorBindsEventually)
{
    // A pure streaming kernel large enough must be bandwidth-bound:
    // doubling edges doubles time.
    const ChipModel &c = chip();
    auto mk = [](std::uint64_t items) {
        KernelLaunch l;
        l.name = "stream";
        l.items = items;
        l.hasNeighborLoop = true;
        l.randomAccess = false;
        for (std::uint64_t i = 0; i < items; ++i)
            l.hist.add(16);
        l.edges = items * 16;
        l.computePerEdge = 0.01;
        l.computePerItem = 0.01;
        return l;
    };
    const CostEngine engine(c, OptConfig::baseline());
    const double t1 = engine.kernelTimeNs(mk(1u << 18));
    const double t2 = engine.kernelTimeNs(mk(1u << 19));
    EXPECT_NEAR(t2 / t1, 2.0, 0.25) << c.shortName;
}

TEST_P(ChipGridTest, NoiseSigmaMatchesEmpiricalSpread)
{
    // The lognormal noise injected at measurement time must have
    // roughly the chip's configured sigma in log space.
    const ChipModel &c = chip();
    const dsl::AppTrace trace = launchBoundTrace(10);
    std::vector<double> logs;
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
        logs.push_back(std::log(
            measureAppRunNs(c, OptConfig::baseline(), trace, seed)));
    }
    double mean = 0.0;
    for (double v : logs)
        mean += v;
    mean /= static_cast<double>(logs.size());
    double var = 0.0;
    for (double v : logs)
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(logs.size() - 1);
    EXPECT_NEAR(std::sqrt(var), c.noiseSigma, 0.35 * c.noiseSigma)
        << c.shortName;
}

INSTANTIATE_TEST_SUITE_P(AllChips, ChipGridTest,
                         ::testing::Values("M4000", "GTX1080",
                                           "HD5500", "IRIS", "R9",
                                           "MALI"));
