/**
 * @file
 * Tests for the open-loop load generator: the Poisson arrival
 * schedule is deterministic, monotonic and has the right mean
 * interarrival gap, and runOpenLoop serves every query, measures
 * coordinated-omission-safe latency from intended send times, and
 * reports a consistent kept-up verdict.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graphport/serve/advisor.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/serve/loadgen.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

const serve::StrategyIndex &
smallIndex()
{
    static const serve::StrategyIndex index =
        serve::StrategyIndex::build(testutil::smallDataset());
    return index;
}

const serve::Advisor &
advisor()
{
    static const serve::Advisor adv(smallIndex());
    return adv;
}

} // namespace

TEST(OpenLoopSchedule, DeterministicForAFixedSeed)
{
    const std::vector<std::uint64_t> a =
        serve::makeArrivalScheduleNs(500, 10000.0, 42);
    const std::vector<std::uint64_t> b =
        serve::makeArrivalScheduleNs(500, 10000.0, 42);
    ASSERT_EQ(a.size(), 500u);
    EXPECT_EQ(a, b);
    const std::vector<std::uint64_t> c =
        serve::makeArrivalScheduleNs(500, 10000.0, 43);
    EXPECT_NE(a, c);
}

TEST(OpenLoopSchedule, MonotonicNonDecreasing)
{
    const std::vector<std::uint64_t> sched =
        serve::makeArrivalScheduleNs(2000, 50000.0, 7);
    for (std::size_t i = 1; i < sched.size(); ++i)
        ASSERT_GE(sched[i], sched[i - 1]) << i;
}

TEST(OpenLoopSchedule, MeanInterarrivalMatchesTargetQps)
{
    // Exponential interarrivals with rate targetQps: the mean gap
    // over 20k draws must sit within a few percent of 1e9/qps.
    const double qps = 25000.0;
    const std::size_t n = 20000;
    const std::vector<std::uint64_t> sched =
        serve::makeArrivalScheduleNs(n, qps, 1);
    const double meanGapNs =
        static_cast<double>(sched.back()) /
        static_cast<double>(n - 1);
    const double expectedNs = 1e9 / qps;
    EXPECT_NEAR(meanGapNs, expectedNs, expectedNs * 0.05);
}

TEST(OpenLoopSchedule, ScalesInverselyWithRate)
{
    const std::vector<std::uint64_t> slow =
        serve::makeArrivalScheduleNs(1000, 1000.0, 9);
    const std::vector<std::uint64_t> fast =
        serve::makeArrivalScheduleNs(1000, 100000.0, 9);
    EXPECT_GT(slow.back(), fast.back());
}

TEST(OpenLoop, ServesEveryQueryAndReportsConsistently)
{
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 300, 21);
    serve::OpenLoopOptions opts;
    opts.targetQps = 50000.0; // ~6 ms schedule: quick but non-trivial
    opts.threads = 2;
    opts.seed = 5;
    const serve::OpenLoopResult result =
        serve::runOpenLoop(advisor(), stream, opts);

    EXPECT_EQ(result.targetQps, opts.targetQps);
    // The schedule's actual rate sits near the nominal target (a
    // finite Poisson draw, so not exactly on it).
    EXPECT_NEAR(result.offeredQps, opts.targetQps,
                opts.targetQps * 0.2);
    EXPECT_EQ(result.queries, stream.size());
    EXPECT_LE(result.steadyQueries, result.queries);
    EXPECT_GT(result.steadyQueries, 0u);
    EXPECT_GT(result.wallSeconds, 0.0);
    EXPECT_GT(result.achievedQps, 0.0);
    EXPECT_EQ(result.latency.count(), stream.size());
    EXPECT_EQ(result.serviceTime.count(), stream.size());
    // Latency is measured from the intended send time, so it can
    // only exceed pure service time.
    EXPECT_GE(result.latency.percentileNs(50.0),
              result.serviceTime.percentileNs(50.0));
    EXPECT_EQ(result.keptUp,
              result.achievedQps >= 0.97 * result.offeredQps);
}

TEST(OpenLoop, SingleThreadedPassAlsoCompletes)
{
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 150, 29);
    serve::OpenLoopOptions opts;
    opts.targetQps = 30000.0;
    opts.threads = 1;
    const serve::OpenLoopResult result =
        serve::runOpenLoop(advisor(), stream, opts);
    EXPECT_EQ(result.queries, stream.size());
    EXPECT_EQ(result.latency.count(), stream.size());
}
