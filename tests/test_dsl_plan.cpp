/**
 * @file
 * Tests for the execution-plan lowering (scheme partitioning).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graphport/dsl/plan.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::dsl;

namespace {

OptConfig
config(bool wg, bool sg, FgMode fg)
{
    OptConfig c;
    c.wg = wg;
    c.sg = sg;
    c.fg = fg;
    return c;
}

} // namespace

TEST(Plan, BaselineIsAllSerial)
{
    const SchemePartition p =
        partitionSchemes(OptConfig::baseline(), 32, 128);
    for (unsigned b = 0; b < kDegreeBuckets; ++b)
        EXPECT_EQ(p.bucketScheme[b], Scheme::Serial);
    EXPECT_FALSE(p.anyScheme());
    EXPECT_EQ(p.fgChunk, 0u);
}

TEST(Plan, FgCatchesEverythingWhenAlone)
{
    const SchemePartition p =
        partitionSchemes(config(false, false, FgMode::Fg8), 32, 128);
    for (unsigned b = 0; b < kDegreeBuckets; ++b)
        EXPECT_EQ(p.bucketScheme[b], Scheme::Fg);
    EXPECT_EQ(p.fgChunk, 8u);
}

TEST(Plan, Fg1ChunkIsOne)
{
    const SchemePartition p =
        partitionSchemes(config(false, false, FgMode::Fg1), 32, 128);
    EXPECT_EQ(p.fgChunk, 1u);
}

TEST(Plan, SgTakesMediumDegrees)
{
    const SchemePartition p =
        partitionSchemes(config(false, true, FgMode::Off), 32, 128);
    // Bucket 5 = [32, 64): at the subgroup-size threshold.
    EXPECT_EQ(p.bucketScheme[4], Scheme::Serial); // [16,32)
    EXPECT_EQ(p.bucketScheme[5], Scheme::Sg);
    EXPECT_EQ(p.bucketScheme[12], Scheme::Sg); // no wg: sg unbounded
    EXPECT_TRUE(p.usesSg);
}

TEST(Plan, WgTakesOnlyVeryHighDegrees)
{
    const SchemePartition p =
        partitionSchemes(config(true, true, FgMode::Fg8), 32, 128);
    // wg threshold is 4x the workgroup size = 512 (bucket 9).
    EXPECT_EQ(p.bucketScheme[8], Scheme::Sg);  // [256, 512)
    EXPECT_EQ(p.bucketScheme[9], Scheme::Wg);  // [512, 1024)
    EXPECT_EQ(p.bucketScheme[5], Scheme::Sg);
    EXPECT_EQ(p.bucketScheme[2], Scheme::Fg);
    EXPECT_TRUE(p.usesWg);
}

TEST(Plan, WgWithoutSgLeavesMediumToFgOrSerial)
{
    const SchemePartition noFg =
        partitionSchemes(config(true, false, FgMode::Off), 32, 128);
    EXPECT_EQ(noFg.bucketScheme[7], Scheme::Serial); // [128,256)
    EXPECT_EQ(noFg.bucketScheme[9], Scheme::Wg);
    const SchemePartition withFg =
        partitionSchemes(config(true, false, FgMode::Fg8), 32, 128);
    EXPECT_EQ(withFg.bucketScheme[7], Scheme::Fg);
}

TEST(Plan, SubgroupSizeOneDisablesSgScheme)
{
    // MALI: sg requested but no physical subgroups — the scheme
    // assigns nothing, yet the request (and its phase barriers) is
    // recorded.
    const SchemePartition p =
        partitionSchemes(config(false, true, FgMode::Off), 1, 128);
    EXPECT_FALSE(p.usesSg);
    EXPECT_TRUE(p.sgRequested);
    for (unsigned b = 0; b < kDegreeBuckets; ++b)
        EXPECT_EQ(p.bucketScheme[b], Scheme::Serial);
}

TEST(Plan, WorkgroupSizeShiftsWgThreshold)
{
    const SchemePartition p128 =
        partitionSchemes(config(true, false, FgMode::Off), 32, 128);
    const SchemePartition p256 =
        partitionSchemes(config(true, false, FgMode::Off), 32, 256);
    // 4*128 = 512 (bucket 9); 4*256 = 1024 (bucket 10).
    EXPECT_EQ(p128.bucketScheme[9], Scheme::Wg);
    EXPECT_EQ(p256.bucketScheme[9], Scheme::Serial);
    EXPECT_EQ(p256.bucketScheme[10], Scheme::Wg);
}

TEST(Plan, RejectsZeroSizes)
{
    EXPECT_THROW(partitionSchemes(OptConfig::baseline(), 0, 128),
                 PanicError);
    EXPECT_THROW(partitionSchemes(OptConfig::baseline(), 32, 0),
                 PanicError);
}

/**
 * Property sweep: every bucket is assigned exactly one scheme and
 * scheme thresholds are respected, across the full config space and
 * realistic chip geometries.
 */
struct PlanSweepParam
{
    unsigned sgSize;
    unsigned wgSize;
};

class PlanSweepTest : public ::testing::TestWithParam<PlanSweepParam>
{};

TEST_P(PlanSweepTest, ThresholdInvariants)
{
    const auto [sgSize, wgSize] = GetParam();
    for (const OptConfig &c : allConfigs()) {
        const SchemePartition p =
            partitionSchemes(c, sgSize, wgSize);
        for (unsigned b = 0; b < kDegreeBuckets; ++b) {
            const double lo =
                b == 0 ? 0.0 : std::pow(2.0, static_cast<double>(b));
            switch (p.bucketScheme[b]) {
              case Scheme::Wg:
                EXPECT_TRUE(c.wg);
                EXPECT_GE(lo, 4.0 * wgSize);
                break;
              case Scheme::Sg:
                EXPECT_TRUE(c.sg && sgSize > 1);
                EXPECT_GE(lo, static_cast<double>(sgSize));
                break;
              case Scheme::Fg:
                EXPECT_NE(c.fg, FgMode::Off);
                break;
              case Scheme::Serial:
                // Serial only when no scheme claims the bucket.
                EXPECT_TRUE(c.fg == FgMode::Off ||
                            p.bucketScheme[b] != Scheme::Serial);
                break;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChipGeometries, PlanSweepTest,
    ::testing::Values(PlanSweepParam{1, 128}, PlanSweepParam{16, 128},
                      PlanSweepParam{32, 128}, PlanSweepParam{64, 128},
                      PlanSweepParam{16, 256}, PlanSweepParam{32, 256},
                      PlanSweepParam{64, 256}));
