/**
 * @file
 * Tests for the aligned text-table renderer.
 */
#include <gtest/gtest.h>

#include "graphport/support/error.hpp"
#include "graphport/support/table.hpp"

using namespace graphport;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"Chip", "Speedup"});
    t.addRow({"R9", "22.31x"});
    t.addRow({"MALI", "1.00x"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("Chip"), std::string::npos);
    EXPECT_NE(out.find("22.31x"), std::string::npos);
    EXPECT_NE(out.find("MALI"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"A", "B"});
    t.addRow({"xxxxxxxx", "1"});
    t.addRow({"y", "2"});
    const std::string out = t.toString();
    // All lines between rules must have equal length.
    std::size_t expected = out.find('\n');
    std::size_t start = 0;
    while (start < out.size()) {
        std::size_t end = out.find('\n', start);
        if (end == std::string::npos)
            break;
        EXPECT_EQ(end - start, expected) << out;
        start = end + 1;
    }
}

TEST(TextTable, SeparatorAddsRule)
{
    TextTable t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.toString();
    // 3 structural rules + 1 separator = 4 lines starting with '+'.
    int rules = 0;
    for (std::size_t pos = 0; pos < out.size(); ++pos) {
        if (out[pos] == '+' && (pos == 0 || out[pos - 1] == '\n'))
            ++rules;
    }
    EXPECT_EQ(rules, 4);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable t({"A", "B"});
    EXPECT_THROW(t.addRow({"only one"}), PanicError);
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable({}), PanicError);
}
