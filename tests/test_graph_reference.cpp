/**
 * @file
 * Tests for the sequential reference algorithms — the oracles the
 * whole application suite is validated against, so these are checked
 * against hand-computed results on small graphs.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graphport/graph/generators.hpp"
#include "graphport/graph/reference.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::graph;

TEST(RefBfs, PathLevels)
{
    const auto levels = ref::bfsLevels(testutil::path(5), 0);
    EXPECT_EQ(levels, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(RefBfs, UnreachableNodes)
{
    const auto levels =
        ref::bfsLevels(testutil::twoTriangles(), 0);
    EXPECT_EQ(levels[1], 1);
    EXPECT_EQ(levels[2], 1);
    EXPECT_EQ(levels[3], ref::kUnreached);
    EXPECT_EQ(levels[5], ref::kUnreached);
}

TEST(RefBfs, RejectsBadSource)
{
    EXPECT_THROW(ref::bfsLevels(testutil::path(3), 3), FatalError);
}

TEST(RefSssp, TriangleShortcuts)
{
    // Triangle weights: 0-1 (1), 1-2 (2), 0-2 (4). Shortest 0->2 is
    // via 1: 3 < 4.
    const auto dist = ref::sssp(testutil::triangle(), 0);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], 1u);
    EXPECT_EQ(dist[2], 3u);
}

TEST(RefSssp, UnreachableIsInf)
{
    const auto dist = ref::sssp(testutil::twoTriangles(), 0);
    EXPECT_EQ(dist[4], ref::kInfDist);
}

TEST(RefSssp, RequiresWeights)
{
    graph::Builder b(2);
    b.addEdge(0, 1);
    const Csr g = b.build("unweighted");
    EXPECT_THROW(ref::sssp(g, 0), FatalError);
}

TEST(RefCc, LabelsAreComponentMinima)
{
    const auto labels =
        ref::connectedComponents(testutil::twoTriangles());
    EXPECT_EQ(labels, (std::vector<NodeId>{0, 0, 0, 3, 3, 3}));
    EXPECT_EQ(ref::componentCount(labels), 2u);
}

TEST(RefCc, SingletonNodes)
{
    graph::Builder b(3);
    b.addEdge(0, 1);
    Builder::Options opts;
    opts.symmetrize = true;
    const auto labels =
        ref::connectedComponents(b.build("g", opts));
    EXPECT_EQ(labels[2], 2u);
    EXPECT_EQ(ref::componentCount(labels), 2u);
}

TEST(RefPagerank, SumsToOne)
{
    const auto ranks = ref::pagerank(gen::rmat(8, 6.0));
    const double sum =
        std::accumulate(ranks.begin(), ranks.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(RefPagerank, UniformOnSymmetricRegularGraph)
{
    // On a triangle every node has the same rank by symmetry.
    const auto ranks = ref::pagerank(testutil::triangle());
    EXPECT_NEAR(ranks[0], 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(ranks[1], 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(ranks[2], 1.0 / 3.0, 1e-9);
}

TEST(RefPagerank, HubOutranksLeaves)
{
    const auto ranks = ref::pagerank(testutil::star(8));
    for (NodeId u = 1; u < 8; ++u)
        EXPECT_GT(ranks[0], ranks[u]);
}

TEST(RefTriangles, KnownCounts)
{
    EXPECT_EQ(ref::triangleCount(testutil::triangle()), 1u);
    EXPECT_EQ(ref::triangleCount(testutil::twoTriangles()), 2u);
    EXPECT_EQ(ref::triangleCount(testutil::path(6)), 0u);
    EXPECT_EQ(ref::triangleCount(testutil::star(6)), 0u);
}

TEST(RefTriangles, CompleteGraphK5)
{
    graph::Builder b(5);
    for (NodeId u = 0; u < 5; ++u) {
        for (NodeId v = u + 1; v < 5; ++v)
            b.addEdge(u, v);
    }
    Builder::Options opts;
    opts.symmetrize = true;
    EXPECT_EQ(ref::triangleCount(b.build("k5", opts)), 10u);
}

TEST(RefMsf, TriangleDropsHeaviestCycleEdge)
{
    // Weights 1, 2, 4: MST keeps 1 and 2.
    EXPECT_EQ(ref::msfWeight(testutil::triangle()), 3u);
}

TEST(RefMsf, ForestSumsComponents)
{
    // Two triangles with weights {1,1,1} and {2,2,2}: each MST keeps
    // two edges.
    EXPECT_EQ(ref::msfWeight(testutil::twoTriangles()), 2u + 4u);
}

TEST(RefMsf, PathKeepsAllEdges)
{
    EXPECT_EQ(ref::msfWeight(testutil::path(5)), 4u);
}

TEST(RefMis, Validators)
{
    const Csr g = testutil::path(4); // 0-1-2-3
    EXPECT_TRUE(ref::isIndependentSet(g, {true, false, true, false}));
    EXPECT_TRUE(
        ref::isMaximalIndependentSet(g, {true, false, true, false}));
    // Adjacent pair is not independent.
    EXPECT_FALSE(ref::isIndependentSet(g, {true, true, false, false}));
    // Independent but not maximal: node 3 could be added.
    EXPECT_FALSE(ref::isMaximalIndependentSet(
        g, {true, false, false, false}));
    // Empty set is independent but not maximal.
    EXPECT_TRUE(
        ref::isIndependentSet(g, {false, false, false, false}));
    EXPECT_FALSE(ref::isMaximalIndependentSet(
        g, {false, false, false, false}));
}

TEST(RefSssp, AgreesWithBfsOnUnitWeights)
{
    // On a unit-weight graph, SSSP distance == BFS level.
    graph::Builder b(20);
    for (NodeId u = 0; u + 1 < 20; ++u)
        b.addEdge(u, u + 1, 1);
    b.addEdge(0, 10, 1);
    Builder::Options opts;
    opts.symmetrize = true;
    opts.weighted = true;
    const Csr g = b.build("g", opts);
    const auto dist = ref::sssp(g, 0);
    const auto levels = ref::bfsLevels(g, 0);
    for (NodeId u = 0; u < 20; ++u)
        EXPECT_EQ(dist[u], static_cast<std::uint64_t>(levels[u]));
}
