/**
 * @file
 * Golden-value regression tests for the calibrated model.
 *
 * The chip parameters were calibrated against the paper's Section
 * VIII fingerprints (see DESIGN.md section 12); these tests pin the
 * exact values so an accidental parameter or formula change — which
 * would silently re-shape every reproduced table — fails loudly.
 * When a calibration change is *intentional*, update the constants
 * here and re-validate EXPERIMENTS.md.
 */
#include <gtest/gtest.h>

#include "graphport/apps/app.hpp"
#include "graphport/graph/generators.hpp"
#include "graphport/micro/micro.hpp"
#include "graphport/sim/costengine.hpp"

using namespace graphport;

namespace {

struct Golden
{
    const char *chip;
    double sgCmb;
    double mDivg;
    double appBaseNs;
    double appFullNs;
};

// bfs-wl on rmat(scale 10, avg degree 8, seed 12); "full" is
// [sg, fg8, coop-cv, oitergb].
constexpr Golden kGolden[] = {
    {"M4000", 0.894778, 1.581371, 43206.476239, 44578.438007},
    {"GTX1080", 0.895105, 1.465804, 37603.231259, 60013.639904},
    {"HD5500", 0.875201, 1.397798, 278173.378888, 131717.173664},
    {"IRIS", 6.159231, 1.802671, 245691.726260, 126424.414857},
    {"R9", 25.187266, 1.677199, 131911.562256, 69629.610447},
    {"MALI", 0.859538, 6.206299, 2197912.685475, 389563.390625},
};

const dsl::AppTrace &
goldenTrace()
{
    static const dsl::AppTrace trace = [] {
        const graph::Csr g = graph::gen::rmat(10, 8.0, 12);
        auto [out, t] = apps::runApp(apps::appByName("bfs-wl"), g,
                                     "social");
        return t;
    }();
    return trace;
}

} // namespace

class GoldenTest : public ::testing::TestWithParam<Golden>
{};

TEST_P(GoldenTest, MicrobenchmarksPinned)
{
    const Golden &gold = GetParam();
    const sim::ChipModel &chip = sim::chipByName(gold.chip);
    EXPECT_NEAR(micro::sgCmbSpeedup(chip), gold.sgCmb,
                1e-4 * gold.sgCmb);
    EXPECT_NEAR(micro::mDivgSpeedup(chip), gold.mDivg,
                1e-4 * gold.mDivg);
}

TEST_P(GoldenTest, AppTimesPinned)
{
    const Golden &gold = GetParam();
    const sim::ChipModel &chip = sim::chipByName(gold.chip);
    dsl::OptConfig full;
    full.fg = dsl::FgMode::Fg8;
    full.sg = true;
    full.coopCv = true;
    full.oitergb = true;
    const double base =
        sim::CostEngine(chip, dsl::OptConfig::baseline())
            .appTimeNs(goldenTrace());
    const double opt =
        sim::CostEngine(chip, full).appTimeNs(goldenTrace());
    EXPECT_NEAR(base, gold.appBaseNs, 1e-6 * gold.appBaseNs);
    EXPECT_NEAR(opt, gold.appFullNs, 1e-6 * gold.appFullNs);
}

INSTANTIATE_TEST_SUITE_P(
    AllChips, GoldenTest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(info.param.chip);
    });

TEST(GoldenShapes, PortableSetHelpsExactlyWhereExpected)
{
    // The portable set [sg, fg8, coop-cv, oitergb] must hurt the two
    // Nvidia chips (launch-bound, driver-combined) and help everyone
    // else on this worklist BFS.
    for (const Golden &gold : kGolden) {
        const bool nvidia = std::string(gold.chip) == "M4000" ||
                            std::string(gold.chip) == "GTX1080";
        if (nvidia)
            EXPECT_LT(gold.appBaseNs, gold.appFullNs) << gold.chip;
        else
            EXPECT_GT(gold.appBaseNs, gold.appFullNs) << gold.chip;
    }
}
