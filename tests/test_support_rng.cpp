/**
 * @file
 * Tests for the deterministic RNG: reproducibility, stream
 * independence, range correctness and distribution sanity.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"

using namespace graphport;

TEST(SplitMix64, IsDeterministic)
{
    EXPECT_EQ(splitmix64(0), splitmix64(0));
    EXPECT_EQ(splitmix64(42), splitmix64(42));
    EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(SplitMix64, KnownReferenceValues)
{
    // Reference outputs of the canonical SplitMix64 algorithm.
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ull);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(123), b(124);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3u);
}

TEST(Rng, ReseedResetsState)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, NextDoubleMeanIsHalf)
{
    Rng rng(6);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(10);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowZeroPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextBelow(0), PanicError);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NextRangeBadBoundsPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextRange(3, 2), PanicError);
}

TEST(Rng, GaussianMomentsAreStandard)
{
    Rng rng(12);
    constexpr int n = 200000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sumSq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedianNearOne)
{
    Rng rng(13);
    std::vector<double> samples;
    for (int i = 0; i < 20001; ++i)
        samples.push_back(rng.nextLognormal(0.05));
    std::sort(samples.begin(), samples.end());
    EXPECT_NEAR(samples[samples.size() / 2], 1.0, 0.01);
    for (double s : samples)
        ASSERT_GT(s, 0.0);
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(14);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng parent(21);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    Rng a2 = Rng(21).fork(1);
    EXPECT_EQ(a.next(), a2.next());
    // Streams 1 and 2 should not be correlated.
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3u);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(31);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    std::vector<int> orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleDeterministicPerSeed)
{
    std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> b = a;
    Rng r1(77), r2(77);
    r1.shuffle(a);
    r2.shuffle(b);
    EXPECT_EQ(a, b);
}

/** Parameterized: raw output passes a crude equidistribution check. */
class RngBitsTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngBitsTest, BitBalance)
{
    Rng rng(GetParam());
    std::array<int, 64> ones{};
    constexpr int n = 4096;
    for (int i = 0; i < n; ++i) {
        std::uint64_t x = rng.next();
        for (int bit = 0; bit < 64; ++bit)
            ones[bit] += (x >> bit) & 1;
    }
    for (int bit = 0; bit < 64; ++bit) {
        EXPECT_NEAR(static_cast<double>(ones[bit]) / n, 0.5, 0.05)
            << "bit " << bit;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBitsTest,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           ~0ull));
