/**
 * @file
 * Strict shard-checkpoint merging (Dataset::fromShardCheckpoints):
 * checkpoint blocks written at different --checkpoint-every
 * granularities, listed out of order, or overlapping with identical
 * payloads must merge into a dataset bit-identical to a
 * single-process build — while a conflicting duplicate payload, a
 * coverage gap, or a foreign-universe checkpoint rejects with a
 * cause naming the file and defect.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/snapshot.hpp"
#include "graphport/support/strings.hpp"

using namespace graphport;

namespace {

runner::Universe
universe()
{
    return runner::smallUniverse(2);
}

std::size_t
workItems()
{
    return universe().numTests() * dsl::kNumConfigs;
}

std::string
shardPath(const std::string &name)
{
    return ::testing::TempDir() + "graphport_shard_" + name + ".gpk";
}

/** Price [begin, end) into @p path, flushing every @p every cells. */
void
buildShard(const std::string &path, std::size_t begin,
           std::size_t end, std::size_t every)
{
    std::remove(path.c_str());
    runner::BuildOptions options;
    options.checkpointPath = path;
    options.checkpointEvery = every;
    options.workBegin = begin;
    options.workEnd = end;
    options.keepCheckpoint = true;
    (void)runner::Dataset::build(universe(), options);
}

std::string
csvBytes(const runner::Dataset &ds)
{
    std::ostringstream os;
    ds.saveCsv(os);
    return os.str();
}

/** The row checksum the .gpk format appends to every cell row. */
std::uint64_t
rowSum(const std::string &payload)
{
    return splitmix64(support::kSnapshotSumInit ^ hashStr(payload));
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path,
           const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const std::string &line : lines)
        out << line << "\n";
}

} // namespace

TEST(ShardMerge, MixedGranularitiesMergeBitIdentically)
{
    const runner::Dataset expected = runner::Dataset::build(universe());
    const std::size_t items = workItems();

    // Three shards, each flushing at a different cadence — the block
    // boundaries inside the .gpk files disagree, the cells don't.
    const std::size_t granularity[3] = {64, 100, 256};
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < 3; ++s) {
        const shard::WorkRange r = shard::rangeOf(s, 3, items);
        paths.push_back(shardPath("gran" + std::to_string(s)));
        buildShard(paths.back(), r.begin, r.end, granularity[s]);
    }

    const runner::Dataset merged =
        runner::Dataset::fromShardCheckpoints(universe(), paths);
    EXPECT_EQ(merged.contentHash(), expected.contentHash());
    EXPECT_EQ(csvBytes(merged), csvBytes(expected));
}

TEST(ShardMerge, OutOfOrderCheckpointListMergesIdentically)
{
    const runner::Dataset expected = runner::Dataset::build(universe());
    const std::size_t items = workItems();

    std::vector<std::string> paths;
    for (std::size_t s = 0; s < 4; ++s) {
        const shard::WorkRange r = shard::rangeOf(s, 4, items);
        paths.push_back(shardPath("ooo" + std::to_string(s)));
        buildShard(paths.back(), r.begin, r.end, 128);
    }
    std::vector<std::string> reversed(paths.rbegin(), paths.rend());

    const runner::Dataset merged =
        runner::Dataset::fromShardCheckpoints(universe(), reversed);
    EXPECT_EQ(merged.contentHash(), expected.contentHash());
    EXPECT_EQ(csvBytes(merged), csvBytes(expected));
}

TEST(ShardMerge, OverlappingIdenticalRowsAreTolerated)
{
    const runner::Dataset expected = runner::Dataset::build(universe());
    const std::size_t items = workItems();

    // A retried worker re-prices a range its predecessor partially
    // covered: the two files overlap on [800, 1200) with identical
    // payloads.
    const std::string a = shardPath("ovl_a");
    const std::string b = shardPath("ovl_b");
    buildShard(a, 0, 1200, 64);
    buildShard(b, 800, items, 256);

    const runner::Dataset merged =
        runner::Dataset::fromShardCheckpoints(universe(), {a, b});
    EXPECT_EQ(merged.contentHash(), expected.contentHash());
    EXPECT_EQ(csvBytes(merged), csvBytes(expected));
}

TEST(ShardMerge, ConflictingDuplicatePayloadRejectsWithCause)
{
    const std::size_t items = workItems();
    const std::string a = shardPath("conf_a");
    const std::string b = shardPath("conf_b");
    buildShard(a, 0, 1200, 128);
    buildShard(b, 1200, items, 128);

    // Forge a divergent duplicate of one of A's rows into B: flip a
    // payload bit and re-seal the row checksum, so the row itself
    // parses cleanly and only the cross-file comparison can object.
    std::vector<std::string> lines = readLines(a);
    std::string forged;
    for (const std::string &line : lines) {
        const std::string row = trim(line);
        if (row.rfind("cell,", 0) != 0)
            continue;
        const std::size_t lastComma = row.rfind(',');
        std::string payload = row.substr(0, lastComma);
        payload.back() = payload.back() == '0' ? '1' : '0';
        forged = payload + ',' + support::hexU64(rowSum(payload));
        break;
    }
    ASSERT_FALSE(forged.empty()) << "no cell row found in " << a;
    std::vector<std::string> blines = readLines(b);
    blines.push_back(forged);
    writeLines(b, blines);

    try {
        runner::Dataset::fromShardCheckpoints(universe(), {a, b});
        FAIL() << "conflicting duplicate accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("conflicting duplicate row"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(b), std::string::npos)
            << "cause must name the offending file: " << e.what();
    }
}

TEST(ShardMerge, CoverageGapRejectsNamingFirstMissingIndex)
{
    const std::size_t items = workItems();
    const std::string a = shardPath("gap_a");
    const std::string b = shardPath("gap_b");
    buildShard(a, 0, 1000, 128);
    buildShard(b, 1200, items, 128);

    try {
        runner::Dataset::fromShardCheckpoints(universe(), {a, b});
        FAIL() << "partial coverage accepted";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("200 of 2304 cells unpriced"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("first missing work index 1000"),
                  std::string::npos)
            << what;
    }
}

TEST(ShardMerge, ForeignUniverseCheckpointRejects)
{
    const std::string foreign = shardPath("foreign");
    {
        std::remove(foreign.c_str());
        runner::BuildOptions options;
        options.checkpointPath = foreign;
        options.checkpointEvery = 128;
        options.workBegin = 0;
        options.workEnd = 500;
        options.keepCheckpoint = true;
        (void)runner::Dataset::build(runner::smallUniverse(3),
                                     options);
    }
    const std::string rest = shardPath("foreign_rest");
    buildShard(rest, 0, workItems(), 256);

    try {
        runner::Dataset::fromShardCheckpoints(universe(),
                                              {foreign, rest});
        FAIL() << "foreign-universe checkpoint accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("written for a different universe"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardMerge, TornRowRejectsStrictlyInTheMergePath)
{
    // The in-build resume drops a torn tail with a warning; the
    // coordinator merge must instead refuse — it has no way to
    // re-price another process's range.
    const std::size_t items = workItems();
    const std::string a = shardPath("torn_a");
    buildShard(a, 0, items, 256);
    std::vector<std::string> lines = readLines(a);
    ASSERT_GT(lines.size(), 3u);
    lines.back() = lines.back().substr(0, lines.back().size() / 2);
    writeLines(a, lines);

    try {
        runner::Dataset::fromShardCheckpoints(universe(), {a});
        FAIL() << "torn row accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("torn row"),
                  std::string::npos)
            << e.what();
    }
}
