/**
 * @file
 * Chaos suite for the hardened serving pipeline: seeded fault
 * schedules over serveBatch must never lose a query, must only ever
 * degrade *down* the strategy lattice, and must answer bit-identically
 * at every thread count — the determinism bar that makes fault
 * injection a regression test rather than a flake generator.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "graphport/fault/injector.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/batch.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/serve/loadgen.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

const serve::StrategyIndex &
smallIndex()
{
    static const serve::StrategyIndex index =
        serve::StrategyIndex::build(testutil::smallDataset());
    return index;
}

const serve::Advisor &
advisor()
{
    static const serve::Advisor adv(smallIndex());
    return adv;
}

/** The mixed stream: lattice hits, unseen inputs, unknown chips. */
std::vector<serve::Query>
chaosStream(std::size_t n, std::uint64_t seed)
{
    return serve::makeQueryStream(smallIndex(), n, seed);
}

/** Position of @p tier in the lattice order; tierOrder().size() for
 *  "predictive" (above the whole descriptive ladder). */
std::size_t
tierRank(const std::string &tier)
{
    const std::vector<std::string> &order =
        serve::Advisor::tierOrder();
    const auto it = std::find(order.begin(), order.end(), tier);
    if (it != order.end())
        return static_cast<std::size_t>(it - order.begin());
    EXPECT_EQ(tier, "predictive") << "unknown tier " << tier;
    return order.size();
}

std::vector<serve::Advice>
serveUnder(const std::string &spec,
           const std::vector<serve::Query> &queries,
           unsigned threads,
           const serve::ServePolicy &policy,
           serve::ServerStats *stats = nullptr)
{
    fault::Injector injector(fault::FaultSchedule::parse(spec));
    fault::ScopedInjector scope(&injector);
    return serve::serveBatch(advisor(), queries, threads, stats,
                             nullptr, policy);
}

} // namespace

TEST(FaultChaos, EveryQueryAnsweredUnderHeavySchedule)
{
    const std::vector<serve::Query> queries = chaosStream(96, 11);
    serve::ServerStats stats;
    const std::vector<serve::Advice> advices = serveUnder(
        "seed=3;serve.lookup:p=0.6;serve.predict:p=0.6", queries, 1,
        serve::ServePolicy{}, &stats);

    ASSERT_EQ(advices.size(), queries.size());
    std::size_t degraded = 0, retries = 0;
    for (const serve::Advice &a : advices) {
        // Answered means a concrete configuration with a tier label.
        EXPECT_FALSE(a.tier.empty());
        EXPECT_FALSE(a.configLabel.empty());
        EXPECT_FALSE(a.intendedTier.empty());
        if (a.degraded) {
            ++degraded;
            EXPECT_GT(a.degradeSteps, 0u);
        } else {
            EXPECT_EQ(a.degradeSteps, 0u);
        }
        retries += a.retries;
    }
    // p=0.6 with 2 retries must visibly degrade a mixed stream.
    EXPECT_GT(degraded, 0u);
    EXPECT_GT(retries, 0u);
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_EQ(stats.degradedAnswers, degraded);
    EXPECT_EQ(stats.retries, retries);
}

TEST(FaultChaos, DegradationOnlyDescendsTheLattice)
{
    const std::vector<serve::Query> queries = chaosStream(96, 23);
    const std::vector<serve::Advice> advices = serveUnder(
        "seed=5;serve.lookup:p=0.7;serve.predict:p=0.7", queries, 1,
        serve::ServePolicy{});

    for (const serve::Advice &a : advices) {
        if (a.intendedTier == "predictive") {
            // The predictive path's only fallback is the global
            // floor.
            EXPECT_TRUE(a.tier == "predictive" || a.tier == "global")
                << a.tier;
            if (a.degraded) {
                EXPECT_EQ(a.tier, "global");
            }
            continue;
        }
        // Descriptive queries: the answered tier is never more
        // specialised than the intended one, and strictly less so
        // when the answer degraded.
        const std::size_t intended = tierRank(a.intendedTier);
        const std::size_t answered = tierRank(a.tier);
        EXPECT_GE(answered, intended)
            << a.tier << " above intended " << a.intendedTier;
        if (a.degraded)
            EXPECT_GT(answered, intended);
        else
            EXPECT_EQ(answered, intended);
    }
}

TEST(FaultChaos, BitIdenticalAcrossThreadCounts)
{
    const std::vector<serve::Query> queries = chaosStream(128, 42);
    serve::ServePolicy policy;
    policy.deadlineNs = 50000; // tight enough to trip sometimes

    for (const char *spec :
         {"seed=1;serve.lookup:p=0.4;serve.predict:p=0.4",
          "seed=9;serve.lookup:every=3;serve.predict:first=40"}) {
        const std::vector<serve::Advice> serial =
            serveUnder(spec, queries, 1, policy);
        for (unsigned threads : {4u, 8u}) {
            const std::vector<serve::Advice> parallel =
                serveUnder(spec, queries, threads, policy);
            ASSERT_EQ(parallel.size(), serial.size());
            for (std::size_t i = 0; i < serial.size(); ++i)
                EXPECT_TRUE(serial[i].sameAnswer(parallel[i]))
                    << "spec " << spec << ", " << threads
                    << " threads, query " << i;
        }
    }
}

TEST(FaultChaos, DeadlineBudgetCutsRetriesShort)
{
    const std::vector<serve::Query> queries = chaosStream(64, 7);
    const char *spec = "seed=2;serve.lookup:p=0.5;serve.predict:p=0.5";

    // A budget smaller than the first backoff forbids any retry:
    // every injected failure degrades immediately, yet every query
    // still gets an answer.
    serve::ServePolicy tight;
    tight.backoffBaseNs = 1000;
    tight.deadlineNs = 1;
    const std::vector<serve::Advice> rushed =
        serveUnder(spec, queries, 1, tight);
    ASSERT_EQ(rushed.size(), queries.size());
    for (const serve::Advice &a : rushed)
        EXPECT_EQ(a.retries, 0u);

    // The same schedule with no deadline retries freely and, with
    // more attempts available, never degrades more than the rushed
    // pass did.
    serve::ServerStats relaxedStats, rushedStats;
    serveUnder(spec, queries, 1, tight, &rushedStats);
    const std::vector<serve::Advice> relaxed = serveUnder(
        spec, queries, 1, serve::ServePolicy{}, &relaxedStats);
    EXPECT_GT(relaxedStats.retries, 0u);
    EXPECT_LE(relaxedStats.degradedAnswers,
              rushedStats.degradedAnswers);
    // Per query: a tier the relaxed pass fails (all attempts fire)
    // the rushed pass fails too (its single attempt fired), so extra
    // retry budget can only reduce degradation steps.
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_LE(relaxed[i].degradeSteps, rushed[i].degradeSteps)
            << "query " << i;
}

TEST(FaultChaos, BreakerNeverChangesAnswers)
{
    const std::vector<serve::Query> queries = chaosStream(96, 31);
    const char *spec = "seed=4;serve.lookup:p=0.6;serve.predict:p=0.6";

    serve::ServePolicy hair;
    hair.breakerFailureThreshold = 1; // opens on the first failure
    serve::ServerStats hairStats, calmStats;
    const std::vector<serve::Advice> withHairTrigger =
        serveUnder(spec, queries, 1, hair, &hairStats);
    const std::vector<serve::Advice> withCalmBreaker = serveUnder(
        spec, queries, 1, serve::ServePolicy{}, &calmStats);

    // The breaker is observability + sleep-gating only: answers are
    // identical whatever its threshold.
    ASSERT_EQ(withHairTrigger.size(), withCalmBreaker.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_TRUE(
            withHairTrigger[i].sameAnswer(withCalmBreaker[i]))
            << "query " << i;
    EXPECT_GT(hairStats.breakerOpened, 0u);
    EXPECT_GE(hairStats.breakerOpened, calmStats.breakerOpened);
}

TEST(FaultChaos, NoInjectorMeansNoRetriesNoDegradation)
{
    const std::vector<serve::Query> queries = chaosStream(48, 19);
    serve::ServerStats stats;
    const std::vector<serve::Advice> advices = serve::serveBatch(
        advisor(), queries, 4, &stats, nullptr,
        serve::ServePolicy{});
    ASSERT_EQ(advices.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const serve::Advice &a = advices[i];
        EXPECT_EQ(a.retries, 0u);
        EXPECT_FALSE(a.degraded);
        EXPECT_EQ(a.tier, a.intendedTier);
        // The resilient path without faults is the plain advise().
        EXPECT_TRUE(a.sameAnswer(advisor().advise(queries[i])))
            << "query " << i;
    }
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.degradedAnswers, 0u);
    EXPECT_EQ(stats.breakerOpened, 0u);
}

TEST(FaultChaos, LoadBenchChecksBitIdentityUnderFaults)
{
    const std::vector<serve::Query> queries = chaosStream(64, 3);
    fault::Injector injector(fault::FaultSchedule::parse(
        "seed=8;serve.lookup:p=0.5;serve.predict:p=0.5"));
    fault::ScopedInjector scope(&injector);
    const serve::LoadBenchResult result = serve::runLoadBench(
        advisor(), queries, {1, 4, 8}, nullptr,
        serve::ServePolicy{});
    EXPECT_TRUE(result.allBitIdentical);
    ASSERT_EQ(result.variants.size(), 3u);
    EXPECT_GT(result.variants.front().stats.degradedAnswers, 0u);
    EXPECT_GT(injector.injectedCount(), 0u);
}
