/**
 * @file
 * The partitioner contract (DESIGN §19): contiguous balanced ranges
 * that tile the row space at any shard count, chip slices that
 * reassemble to the index's chip list in order, a deterministic home
 * shard for unknown chips, the uniform shard-count rejection message,
 * and ".crash" site stripping for respawned workers.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graphport/shard/partition.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;

TEST(ShardPartition, RangesTileTheRowSpaceExactly)
{
    for (std::size_t rows : {0u, 1u, 5u, 96u, 97u, 2304u}) {
        for (std::size_t shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
            std::size_t covered = 0;
            std::size_t prevEnd = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                const shard::WorkRange r =
                    shard::rangeOf(s, shards, rows);
                EXPECT_EQ(r.begin, prevEnd)
                    << "gap/overlap at shard " << s << " of "
                    << shards << " over " << rows;
                EXPECT_LE(r.begin, r.end);
                prevEnd = r.end;
                covered += r.size();
            }
            EXPECT_EQ(prevEnd, rows);
            EXPECT_EQ(covered, rows);
        }
    }
}

TEST(ShardPartition, RangesAreBalancedToWithinOneRow)
{
    const std::size_t rows = 2304;
    for (std::size_t shards : {2u, 3u, 5u, 7u}) {
        std::size_t lo = rows;
        std::size_t hi = 0;
        for (std::size_t s = 0; s < shards; ++s) {
            const std::size_t n =
                shard::rangeOf(s, shards, rows).size();
            lo = std::min(lo, n);
            hi = std::max(hi, n);
        }
        EXPECT_LE(hi - lo, 1u) << shards << " shards";
    }
}

TEST(ShardPartition, OwnerOfRowInvertsRangeOf)
{
    const std::size_t rows = 997; // prime: every remainder exercised
    for (std::size_t shards : {1u, 2u, 3u, 8u}) {
        for (std::size_t row = 0; row < rows; ++row) {
            const std::size_t owner =
                shard::ownerOfRow(row, shards, rows);
            EXPECT_TRUE(shard::rangeOf(owner, shards, rows)
                            .contains(row))
                << "row " << row << ", " << shards << " shards";
        }
    }
}

TEST(ShardPartition, ChipSlicesConcatenateToTheChipList)
{
    const std::vector<std::string> chips = {"P100", "V100", "A100",
                                            "MI50", "MI100", "H100"};
    for (std::size_t shards : {1u, 2u, 3u, 4u, 6u}) {
        std::vector<std::string> reassembled;
        for (std::size_t s = 0; s < shards; ++s) {
            const std::vector<std::string> slice =
                shard::chipsOf(s, shards, chips);
            EXPECT_FALSE(slice.empty())
                << "shard " << s << " of " << shards
                << " owns no chip";
            reassembled.insert(reassembled.end(), slice.begin(),
                               slice.end());
        }
        EXPECT_EQ(reassembled, chips) << shards << " shards";
    }
}

TEST(ShardPartition, HomeShardForUnknownChipIsStableAndInRange)
{
    for (std::size_t shards : {1u, 2u, 5u}) {
        std::set<std::size_t> seen;
        for (const char *chip :
             {"FutureChip", "TPUv9", "", "H100", "hopper-ng"}) {
            const std::size_t home =
                shard::homeShardForUnknownChip(chip, shards);
            EXPECT_LT(home, shards);
            EXPECT_EQ(home,
                      shard::homeShardForUnknownChip(chip, shards))
                << "not deterministic for '" << chip << "'";
            seen.insert(home);
        }
        if (shards >= 5) {
            EXPECT_GT(seen.size(), 1u)
                << "hash sends every chip to one shard";
        }
    }
}

TEST(ShardPartition, ValidateShardCountUsesTheUniformErrorFormat)
{
    // Satellite contract: the rejection reads exactly like a cliopts
    // parse error ("<cmd>: ..."), so shard misuse and flag misuse
    // are indistinguishable to scripts grepping stderr.
    try {
        shard::validateShardCount("serve-bench", 0, 6);
        FAIL() << "0 shards accepted";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(),
                     "fatal: serve-bench: --shards expects at "
                     "least 1 shard, got 0");
    }
    try {
        shard::validateShardCount("study", 7, 6);
        FAIL() << "7 shards over 6 chips accepted";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(),
                     "fatal: study: --shards (7) cannot exceed the "
                     "chip count (6); a shard owning no chip can "
                     "answer nothing");
    }
    EXPECT_NO_THROW(shard::validateShardCount("serve-bench", 1, 6));
    EXPECT_NO_THROW(shard::validateShardCount("serve-bench", 6, 6));
}

TEST(ShardPartition, StripCrashSitesDropsOnlyCrashClauses)
{
    EXPECT_EQ(shard::stripCrashSites(
                  "seed=1;sweep.crash:once=500;serve.lookup:p=0.2"),
              "seed=1;serve.lookup:p=0.2");
    EXPECT_EQ(shard::stripCrashSites(
                  "seed=9;shard.worker.crash:once=3"),
              "seed=9");
    EXPECT_EQ(shard::stripCrashSites("seed=2;serve.lookup:p=0.5"),
              "seed=2;serve.lookup:p=0.5");
    EXPECT_EQ(shard::stripCrashSites(""), "");
}
