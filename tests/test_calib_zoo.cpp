/**
 * @file
 * calib::ChipZoo: synthetic chips and the leave-one-chip-out score
 * of serve::Advisor's unknown-chip fallback.
 */
#include <gtest/gtest.h>

#include <set>

#include "graphport/calib/params.hpp"
#include "graphport/calib/zoo.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;

namespace {

calib::ZooOptions
quickOptions()
{
    calib::ZooOptions opts;
    opts.nSynthetic = 3;
    opts.nApps = 2;
    return opts;
}

} // namespace

TEST(CalibZoo, SynthesizeIsSeededDeterministicAndValid)
{
    const std::vector<sim::ChipModel> roster = sim::allChips();
    const std::vector<sim::ChipModel> a =
        calib::synthesizeZoo(roster, quickOptions());
    const std::vector<sim::ChipModel> b =
        calib::synthesizeZoo(roster, quickOptions());
    ASSERT_EQ(a.size(), 3u);
    std::set<std::string> names;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(calib::paramsOf(a[i]), calib::paramsOf(b[i]));
        EXPECT_EQ(a[i].shortName, "ZOO" + std::to_string(i));
        EXPECT_EQ(a[i].vendor, "Zoo");
        EXPECT_TRUE(calib::insideBounds(calib::paramsOf(a[i])));
        EXPECT_NO_THROW(a[i].validate());
        names.insert(a[i].shortName);
    }
    EXPECT_EQ(names.size(), a.size());

    calib::ZooOptions reseeded = quickOptions();
    reseeded.seed = quickOptions().seed + 1;
    const std::vector<sim::ChipModel> c =
        calib::synthesizeZoo(roster, reseeded);
    bool anyDiffers = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        anyDiffers |= calib::paramsOf(a[i]) != calib::paramsOf(c[i]);
    EXPECT_TRUE(anyDiffers);
}

TEST(CalibZoo, SynthesizeRejectsATinyRoster)
{
    const std::vector<sim::ChipModel> one = {sim::chipByName("R9")};
    EXPECT_THROW(calib::synthesizeZoo(one, quickOptions()),
                 FatalError);
}

TEST(CalibZoo, ScoreRejectsAKnownChip)
{
    EXPECT_THROW(
        calib::scoreAgainstOracle(sim::chipByName("R9"),
                                  sim::allChipNames(),
                                  quickOptions()),
        FatalError);
}

// The acceptance criterion: leave-one-chip-out over the six paper
// chips exercises the advisor's predictive fallback tier and yields
// a finite geomean slowdown vs the oracle.
TEST(CalibZoo, LocoCoversAllSixChipsViaTheFallbackTier)
{
    const std::vector<calib::ZooChipResult> results =
        calib::locoExperiment(quickOptions());
    const std::vector<std::string> names = sim::allChipNames();
    ASSERT_EQ(results.size(), names.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const calib::ZooChipResult &r = results[i];
        EXPECT_EQ(r.chip, names[i]);
        // The held-out chip is unknown to the index, so the advisor
        // must answer from the k-NN fallback tier with an
        // expected-slowdown label attached.
        EXPECT_EQ(r.tier, "predictive") << r.chip;
        EXPECT_GE(r.expectedSlowdown, 1.0) << r.chip;
        // The oracle is the per-test best config by construction.
        EXPECT_GE(r.geomeanVsOracle, 1.0) << r.chip;
        EXPECT_EQ(r.pairs, quickOptions().nApps * 2u) << r.chip;
    }
}

TEST(CalibZoo, RunZooAggregatesBothExperiments)
{
    const calib::ZooReport report = calib::runZoo(quickOptions());
    EXPECT_EQ(report.synthetic.size(), 3u);
    EXPECT_EQ(report.loco.size(), sim::allChipNames().size());
    EXPECT_GE(report.syntheticGeomean, 1.0);
    EXPECT_GE(report.locoGeomean, 1.0);
    for (const calib::ZooChipResult &r : report.synthetic) {
        EXPECT_EQ(r.tier, "predictive") << r.chip;
        EXPECT_GE(r.geomeanVsOracle, 1.0) << r.chip;
    }
}
