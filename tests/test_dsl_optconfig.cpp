/**
 * @file
 * Tests for the optimisation space: exactly 96 configurations,
 * bijective encoding, label formatting, and the with/without algebra
 * Algorithm 1 depends on.
 */
#include <gtest/gtest.h>

#include <set>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::dsl;

TEST(OptSpace, Has96ConfigsAnd95Combinations)
{
    EXPECT_EQ(allConfigs().size(), 96u);
    unsigned nonBaseline = 0;
    for (const OptConfig &c : allConfigs())
        nonBaseline += c.isBaseline() ? 0 : 1;
    EXPECT_EQ(nonBaseline, 95u); // the paper's combination count
}

TEST(OptSpace, BaselineIsIdZero)
{
    EXPECT_EQ(OptConfig::baseline().encode(), 0u);
    EXPECT_TRUE(OptConfig::decode(0).isBaseline());
}

TEST(OptSpace, OptNamesMatchPaper)
{
    EXPECT_EQ(optName(Opt::CoopCv), "coop-cv");
    EXPECT_EQ(optName(Opt::Wg), "wg");
    EXPECT_EQ(optName(Opt::Sg), "sg");
    EXPECT_EQ(optName(Opt::Fg1), "fg");
    EXPECT_EQ(optName(Opt::Fg8), "fg8");
    EXPECT_EQ(optName(Opt::OiterGb), "oitergb");
    EXPECT_EQ(optName(Opt::Sz256), "sz256");
    EXPECT_EQ(allOpts().size(), kNumOpts);
}

TEST(OptConfigTest, WorkgroupSize)
{
    OptConfig c;
    EXPECT_EQ(c.workgroupSize(), 128u);
    c.sz256 = true;
    EXPECT_EQ(c.workgroupSize(), 256u);
}

TEST(OptConfigTest, LabelFormatting)
{
    EXPECT_EQ(OptConfig::baseline().label(), "baseline");
    OptConfig c;
    c.fg = FgMode::Fg8;
    c.sg = true;
    c.oitergb = true;
    EXPECT_EQ(c.label(), "sg, fg8, oitergb");
    OptConfig d;
    d.fg = FgMode::Fg1;
    EXPECT_EQ(d.label(), "fg");
}

TEST(OptConfigTest, HasMatchesFields)
{
    OptConfig c;
    c.fg = FgMode::Fg1;
    EXPECT_TRUE(c.has(Opt::Fg1));
    EXPECT_FALSE(c.has(Opt::Fg8));
    c.fg = FgMode::Fg8;
    EXPECT_FALSE(c.has(Opt::Fg1));
    EXPECT_TRUE(c.has(Opt::Fg8));
    EXPECT_FALSE(c.has(Opt::CoopCv));
    c.coopCv = true;
    EXPECT_TRUE(c.has(Opt::CoopCv));
}

TEST(OptConfigTest, WithWithoutAreInverse)
{
    for (Opt opt : allOpts()) {
        const OptConfig on = OptConfig::baseline().with(opt);
        EXPECT_TRUE(on.has(opt)) << optName(opt);
        EXPECT_TRUE(on.without(opt).isBaseline()) << optName(opt);
    }
}

TEST(OptConfigTest, FgVariantsAreMutuallyExclusive)
{
    const OptConfig fg1 = OptConfig::baseline().with(Opt::Fg1);
    const OptConfig fg8 = fg1.with(Opt::Fg8);
    EXPECT_FALSE(fg8.has(Opt::Fg1));
    EXPECT_TRUE(fg8.has(Opt::Fg8));
    // Disabling either fg variant turns fg off entirely.
    EXPECT_EQ(fg8.without(Opt::Fg8).fg, FgMode::Off);
    EXPECT_EQ(fg8.without(Opt::Fg1).fg, FgMode::Off);
}

TEST(OptConfigTest, DecodeRejectsOutOfRange)
{
    EXPECT_THROW(OptConfig::decode(96), FatalError);
}

TEST(OptSpace, AllConfigsWithCounts)
{
    // Binary opts appear in half the space (48); each fg variant in
    // a third (32).
    EXPECT_EQ(allConfigsWith(Opt::CoopCv).size(), 48u);
    EXPECT_EQ(allConfigsWith(Opt::Wg).size(), 48u);
    EXPECT_EQ(allConfigsWith(Opt::Sg).size(), 48u);
    EXPECT_EQ(allConfigsWith(Opt::OiterGb).size(), 48u);
    EXPECT_EQ(allConfigsWith(Opt::Sz256).size(), 48u);
    EXPECT_EQ(allConfigsWith(Opt::Fg1).size(), 32u);
    EXPECT_EQ(allConfigsWith(Opt::Fg8).size(), 32u);
}

TEST(OptSpace, MirrorSettingsDifferOnlyInOpt)
{
    // Algorithm 1's (os, dis_os) pairs: identical except for opt.
    for (Opt opt : allOpts()) {
        for (const OptConfig &os : allConfigsWith(opt)) {
            const OptConfig dis = os.without(opt);
            EXPECT_FALSE(dis.has(opt));
            for (Opt other : allOpts()) {
                if (other == opt)
                    continue;
                // Disabling fg1 also kills fg8 and vice versa; all
                // other opts must be untouched.
                const bool fgPair =
                    (opt == Opt::Fg1 && other == Opt::Fg8) ||
                    (opt == Opt::Fg8 && other == Opt::Fg1);
                if (!fgPair) {
                    EXPECT_EQ(os.has(other), dis.has(other))
                        << optName(opt) << " vs " << optName(other);
                }
            }
        }
    }
}

/** Encode/decode bijection over the full space. */
class EncodeRoundTripTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(EncodeRoundTripTest, RoundTrips)
{
    const unsigned id = GetParam();
    const OptConfig c = OptConfig::decode(id);
    EXPECT_EQ(c.encode(), id);
}

INSTANTIATE_TEST_SUITE_P(AllIds, EncodeRoundTripTest,
                         ::testing::Range(0u, kNumConfigs));

TEST(OptSpace, EncodingIsInjective)
{
    std::set<unsigned> ids;
    for (const OptConfig &c : allConfigs())
        ids.insert(c.encode());
    EXPECT_EQ(ids.size(), 96u);
}

TEST(OptSpace, LabelsAreUnique)
{
    std::set<std::string> labels;
    for (const OptConfig &c : allConfigs())
        labels.insert(c.label());
    EXPECT_EQ(labels.size(), 96u);
}
