/**
 * @file
 * graphport::obs metrics: counters, gauges, the log-bucketed
 * histogram, registry semantics (get-or-create, sorted enumeration,
 * prefix queries, merge), and the wall-time naming scheme.
 */
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graphport/obs/metrics.hpp"
#include "graphport/support/threadpool.hpp"

using namespace graphport;

TEST(ObsCounterTest, StartsAtZeroAndAccumulates)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGaugeTest, LastWriteWins)
{
    obs::Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(1.5);
    g.set(-2.25);
    EXPECT_EQ(g.value(), -2.25);
}

TEST(ObsHistogramTest, EmptyHistogramReportsZero)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentileNs(50.0), 0.0);
    EXPECT_EQ(h.percentileNs(99.0), 0.0);
}

TEST(ObsHistogramTest, PercentileWithinBucketResolution)
{
    obs::Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(1000.0);
    EXPECT_EQ(h.count(), 1000u);
    // Buckets are 8 per octave, so the geometric bucket midpoint is
    // within ~4.5% of the recorded value.
    EXPECT_NEAR(h.percentileNs(50.0), 1000.0, 1000.0 * 0.05);
    EXPECT_NEAR(h.percentileNs(99.0), 1000.0, 1000.0 * 0.05);
}

TEST(ObsHistogramTest, PercentilesSeparateMixedPopulations)
{
    obs::Histogram h;
    // 90% fast (100ns), 10% slow (100us).
    for (int i = 0; i < 900; ++i)
        h.record(100.0);
    for (int i = 0; i < 100; ++i)
        h.record(100000.0);
    EXPECT_NEAR(h.percentileNs(50.0), 100.0, 100.0 * 0.05);
    EXPECT_NEAR(h.percentileNs(95.0), 100000.0, 100000.0 * 0.05);
    EXPECT_NEAR(h.percentileNs(99.0), 100000.0, 100000.0 * 0.05);
}

TEST(ObsHistogramTest, SubUnitSamplesLandInTheFirstBucket)
{
    obs::Histogram h;
    h.record(0.0);
    h.record(0.5);
    h.record(-3.0); // clamped, not dropped
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GT(h.percentileNs(50.0), 0.0);
    EXPECT_LT(h.percentileNs(50.0), 2.0);
}

TEST(ObsHistogramTest, CopyDetachesFromTheOriginal)
{
    obs::Histogram a;
    a.record(64.0);
    obs::Histogram b = a;
    b.record(64.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(b.count(), 2u);
}

TEST(ObsHistogramTest, MergeAddsBucketCounts)
{
    obs::Histogram a;
    obs::Histogram b;
    for (int i = 0; i < 10; ++i)
        a.record(100.0);
    for (int i = 0; i < 10; ++i)
        b.record(100000.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 20u);
    EXPECT_NEAR(a.percentileNs(25.0), 100.0, 100.0 * 0.05);
    EXPECT_NEAR(a.percentileNs(75.0), 100000.0, 100000.0 * 0.05);
}

TEST(ObsRegistryTest, GetOrCreateReturnsTheSameMetric)
{
    obs::MetricsRegistry r;
    EXPECT_TRUE(r.empty());
    obs::Counter &c1 = r.counter("a.hits");
    obs::Counter &c2 = r.counter("a.hits");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    EXPECT_EQ(r.counterValue("a.hits"), 3u);
    EXPECT_FALSE(r.empty());
}

TEST(ObsRegistryTest, AbsentMetricsReadAsZeroOrNull)
{
    obs::MetricsRegistry r;
    EXPECT_EQ(r.counterValue("no.such"), 0u);
    EXPECT_EQ(r.gaugeValue("no.such"), 0.0);
    EXPECT_EQ(r.findHistogram("no.such"), nullptr);
}

TEST(ObsRegistryTest, EnumerationIsNameSorted)
{
    obs::MetricsRegistry r;
    r.counter("z.last").add(1);
    r.counter("a.first").add(2);
    r.counter("m.middle").add(3);
    const auto counters = r.counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0].first, "a.first");
    EXPECT_EQ(counters[1].first, "m.middle");
    EXPECT_EQ(counters[2].first, "z.last");
}

TEST(ObsRegistryTest, CountersWithPrefixSelectsOneSubsystem)
{
    obs::MetricsRegistry r;
    r.counter("serve.tier.exact").add(5);
    r.counter("serve.tier.global").add(2);
    r.counter("serve.queries").add(7);
    r.counter("sweep.cells").add(9);
    const auto tiers = r.countersWithPrefix("serve.tier.");
    ASSERT_EQ(tiers.size(), 2u);
    EXPECT_EQ(tiers[0].first, "serve.tier.exact");
    EXPECT_EQ(tiers[0].second, 5u);
    EXPECT_EQ(tiers[1].first, "serve.tier.global");
    EXPECT_EQ(tiers[1].second, 2u);
}

TEST(ObsRegistryTest, MergeAddsCountersOverwritesGauges)
{
    obs::MetricsRegistry a;
    a.counter("n.events").add(10);
    a.gauge("n.level").set(1.0);
    a.histogram("n.lat_ns").record(100.0);

    obs::MetricsRegistry b;
    b.counter("n.events").add(5);
    b.counter("n.other").add(1);
    b.gauge("n.level").set(2.0);
    b.histogram("n.lat_ns").record(100.0);

    a.merge(b);
    EXPECT_EQ(a.counterValue("n.events"), 15u);
    EXPECT_EQ(a.counterValue("n.other"), 1u);
    EXPECT_EQ(a.gaugeValue("n.level"), 2.0);
    ASSERT_NE(a.findHistogram("n.lat_ns"), nullptr);
    EXPECT_EQ(a.findHistogram("n.lat_ns")->count(), 2u);
}

TEST(ObsRegistryTest, ConcurrentRecordingLosesNothing)
{
    obs::MetricsRegistry r;
    obs::Counter &hits = r.counter("t.hits");
    obs::Histogram &lat = r.histogram("t.lat_ns");
    support::ThreadPool pool(4);
    pool.parallelFor(
        10000,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                hits.add();
                lat.record(100.0 + static_cast<double>(i % 7));
                // Creation under contention must also be safe.
                r.counter("t.created").add();
            }
        },
        64);
    EXPECT_EQ(r.counterValue("t.hits"), 10000u);
    EXPECT_EQ(r.counterValue("t.created"), 10000u);
    EXPECT_EQ(lat.count(), 10000u);
}

TEST(ObsNamingTest, WallTimeSuffixesAreRecognised)
{
    EXPECT_TRUE(obs::isWallTimeMetric("sweep.record_seconds"));
    EXPECT_TRUE(obs::isWallTimeMetric("a.b_ms"));
    EXPECT_TRUE(obs::isWallTimeMetric("a.b_us"));
    EXPECT_TRUE(obs::isWallTimeMetric("serve.latency_ns"));
    EXPECT_FALSE(obs::isWallTimeMetric("sweep.cells"));
    EXPECT_FALSE(obs::isWallTimeMetric("serve.answers"));
    EXPECT_FALSE(obs::isWallTimeMetric("ns"));
    EXPECT_FALSE(obs::isWallTimeMetric(""));
}

TEST(ObsNamingTest, RunDependentCoversWallTimesAndThreadCounts)
{
    EXPECT_TRUE(obs::isRunDependentMetric("sweep.total_seconds"));
    EXPECT_TRUE(obs::isRunDependentMetric("sweep.threads"));
    EXPECT_TRUE(obs::isRunDependentMetric("serve.threads"));
    EXPECT_TRUE(obs::isRunDependentMetric("threads"));
    EXPECT_FALSE(obs::isRunDependentMetric("sweep.cells"));
    EXPECT_FALSE(obs::isRunDependentMetric("calib.evals"));
}

TEST(ObsNamingTest, SupervisionRacesAreRunDependentDeathsAreNot)
{
    // Hedge and steal outcomes depend on wall-clock races (which
    // worker the deadline catches), so trajectory diffs must ignore
    // them; a permanent death under a seeded schedule is exact.
    EXPECT_TRUE(obs::isRunDependentMetric("shard.hedge.fired"));
    EXPECT_TRUE(obs::isRunDependentMetric("shard.hedge.replica_won"));
    EXPECT_TRUE(obs::isRunDependentMetric("shard.steal.cells"));
    EXPECT_TRUE(obs::isRunDependentMetric("shard.steal.victims"));
    EXPECT_FALSE(obs::isRunDependentMetric("shard.dead.shards"));
    EXPECT_FALSE(
        obs::isRunDependentMetric("shard.dead.degraded_queries"));
}
