/**
 * @file
 * Tests for the schedule language: the extended id space layers the
 * paper's 96 OptConfig ids as a strict prefix, encode/decode is a
 * bijection over all 576 ids, the canonical spec string round-trips
 * through the parser, and the space enumerations Algorithm 1 consumes
 * match the legacy OptConfig enumerations exactly.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/dsl/schedule.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::dsl;

TEST(ScheduleSpaceTest, SizesAndNames)
{
    EXPECT_EQ(kNumSchedules, 576u);
    EXPECT_EQ(ScheduleSpace::legacy().size(), 96u);
    EXPECT_EQ(ScheduleSpace::extended().size(), 576u);
    EXPECT_EQ(ScheduleSpace::legacy().name(), "legacy");
    EXPECT_EQ(ScheduleSpace::extended().name(), "extended");
    EXPECT_EQ(ScheduleSpace().kind(), ScheduleSpace::Kind::Legacy);
    EXPECT_EQ(ScheduleSpace::legacy().versionString(),
              "legacy/v1 (96 schedules)");
    EXPECT_EQ(ScheduleSpace::extended().versionString(),
              "extended/v1 (576 schedules)");
}

TEST(ScheduleSpaceTest, ByNameRoundTrips)
{
    EXPECT_TRUE(ScheduleSpace::byName("legacy").isLegacy());
    EXPECT_FALSE(ScheduleSpace::byName("extended").isLegacy());
    ScheduleSpace out;
    EXPECT_TRUE(ScheduleSpace::tryByName("extended", &out));
    EXPECT_EQ(out, ScheduleSpace::extended());
    EXPECT_FALSE(ScheduleSpace::tryByName("wide", &out));
    EXPECT_THROW(ScheduleSpace::byName("wide"), FatalError);
}

TEST(ScheduleSpaceTest, IdentityTagZeroOnlyForLegacy)
{
    // Legacy universes must hash exactly as before the schedule
    // language existed, so the legacy tag is the no-op value.
    EXPECT_EQ(ScheduleSpace::legacy().identityTag(), 0u);
    EXPECT_NE(ScheduleSpace::extended().identityTag(), 0u);
}

TEST(ScheduleTest, EncodeDecodeIsBijectionOver576)
{
    std::set<unsigned> seen;
    for (unsigned id = 0; id < kNumSchedules; ++id) {
        const Schedule s = Schedule::decode(id);
        EXPECT_EQ(s.encode(), id);
        seen.insert(s.encode());
        // Spec and label round-trip through decode too.
        EXPECT_EQ(Schedule::parseSpec(s.spec()), s) << s.spec();
    }
    EXPECT_EQ(seen.size(), kNumSchedules);
}

TEST(ScheduleTest, LegacyIdsAreAStrictPrefix)
{
    for (unsigned id = 0; id < kNumConfigs; ++id) {
        const OptConfig legacy = OptConfig::decode(id);
        const Schedule s = Schedule::fromLegacy(legacy);
        EXPECT_EQ(s.encode(), id);
        EXPECT_TRUE(s.isLegacy());
        EXPECT_EQ(s.label(), legacy.label());
        EXPECT_EQ(s.workgroupSize(), legacy.workgroupSize());
        EXPECT_EQ(s.toLegacy().encode(), id);
        // decode agrees with fromLegacy on the shared prefix.
        EXPECT_EQ(Schedule::decode(id), s);
    }
    for (unsigned id = kNumConfigs; id < kNumSchedules; ++id)
        EXPECT_FALSE(Schedule::decode(id).isLegacy()) << id;
}

TEST(ScheduleTest, ExtendedBlockLayout)
{
    // id = legacy + 96 * (dirIdx + 2 * fuseIdx)
    for (unsigned id = 0; id < kNumSchedules; ++id) {
        const Schedule s = Schedule::decode(id);
        const unsigned block = id / kNumConfigs;
        EXPECT_EQ(s.dir == Direction::Pull ? 1u : 0u, block % 2);
        const unsigned fuseIdx = block / 2;
        EXPECT_EQ(s.fuse, fuseIdx == 0 ? 1u : fuseIdx == 1 ? 2u : 4u);
        EXPECT_EQ(s.loadBalance().encode(), id % kNumConfigs);
    }
}

TEST(ScheduleTest, ToLegacyThrowsOffTheLegacyPrefix)
{
    Schedule pull;
    pull.dir = Direction::Pull;
    EXPECT_THROW(pull.toLegacy(), FatalError);
    Schedule fused;
    fused.fuse = 2;
    EXPECT_THROW(fused.toLegacy(), FatalError);
    // loadBalance() stays total: it just drops the extended axes.
    EXPECT_EQ(pull.loadBalance().encode(), 0u);
    EXPECT_EQ(fused.loadBalance().encode(), 0u);
}

TEST(ScheduleTest, BaselineIsIdZero)
{
    EXPECT_EQ(Schedule::baseline().encode(), 0u);
    EXPECT_TRUE(Schedule::decode(0).isBaseline());
    EXPECT_TRUE(Schedule::baseline().isLegacy());
    EXPECT_FALSE(Schedule::baseline().with(Knob::Pull).isBaseline());
}

TEST(ScheduleTest, KnobsMirrorOpts)
{
    for (Opt opt : allOpts())
        EXPECT_EQ(knobName(knobOf(opt)), optName(opt));
    EXPECT_EQ(knobName(Knob::Pull), "pull");
    EXPECT_EQ(knobName(Knob::Fuse2), "fuse2");
    EXPECT_EQ(knobName(Knob::Fuse4), "fuse4");
}

TEST(ScheduleTest, WithWithoutAlgebra)
{
    const Schedule base = Schedule::baseline();
    for (unsigned k = 0; k < kNumKnobs; ++k) {
        const Knob knob = static_cast<Knob>(k);
        EXPECT_FALSE(base.has(knob));
        const Schedule on = base.with(knob);
        EXPECT_TRUE(on.has(knob)) << knobName(knob);
        EXPECT_EQ(on.without(knob), base) << knobName(knob);
    }
    // Mutually exclusive pairs: enabling one disables the other.
    EXPECT_FALSE(base.with(Knob::Fg1).with(Knob::Fg8).has(Knob::Fg1));
    EXPECT_FALSE(base.with(Knob::Fuse2).with(Knob::Fuse4).has(
        Knob::Fuse2));
    EXPECT_EQ(base.with(Knob::Fuse4).fuse, 4u);
    EXPECT_EQ(base.with(Knob::Pull).dir, Direction::Pull);
}

TEST(ScheduleTest, CanonicalSpecFormatting)
{
    EXPECT_EQ(Schedule::baseline().spec(),
              "dir=push,lb=serial,wgsize=128");
    Schedule s;
    s.wg = true;
    s.sg = true;
    s.fg = FgMode::Fg8;
    s.oitergb = true;
    s.sz256 = true;
    EXPECT_EQ(s.spec(), "dir=push,lb=wg+sg+fg8,oiter=gb,wgsize=256");
    s.dir = Direction::Pull;
    s.coopCv = true;
    s.fuse = 4;
    EXPECT_EQ(s.spec(),
              "dir=pull,lb=wg+sg+fg8,coop=cv,oiter=gb,wgsize=256,"
              "fuse=4");
}

TEST(ScheduleTest, ParseAcceptsAnyOrderAndAliases)
{
    const Schedule a = Schedule::parseSpec(
        "wgsize=256, lb=fg8+wg, dir=pull, fuse=2");
    EXPECT_TRUE(a.sz256);
    EXPECT_TRUE(a.wg);
    EXPECT_EQ(a.fg, FgMode::Fg8);
    EXPECT_EQ(a.dir, Direction::Pull);
    EXPECT_EQ(a.fuse, 2u);
    // "fg" is an alias for fg1; omitted keys default to baseline.
    EXPECT_EQ(Schedule::parseSpec("lb=fg").fg, FgMode::Fg1);
    EXPECT_EQ(Schedule::parseSpec("lb=fg1").fg, FgMode::Fg1);
    EXPECT_EQ(Schedule::parseSpec("dir=pull").fuse, 1u);
    EXPECT_EQ(Schedule::parseSpec("coop=off"), Schedule::baseline());
    EXPECT_EQ(Schedule::parseSpec("oiter=off"), Schedule::baseline());
}

TEST(ScheduleTest, ParseRejectsWithUniformMessages)
{
    Schedule out;
    std::string error;
    EXPECT_FALSE(Schedule::tryParseSpec("speed=11", &out, &error));
    EXPECT_EQ(error, "unknown schedule key 'speed'");
    EXPECT_FALSE(Schedule::tryParseSpec("dir=sideways", &out, &error));
    EXPECT_EQ(error,
              "schedule key 'dir' expects push|pull, got 'sideways'");
    EXPECT_FALSE(
        Schedule::tryParseSpec("dir=push,dir=pull", &out, &error));
    EXPECT_EQ(error, "duplicate schedule key 'dir'");
    EXPECT_FALSE(Schedule::tryParseSpec("dir=push,,fuse=2", &out,
                                        &error));
    EXPECT_EQ(error, "empty schedule entry");
    EXPECT_FALSE(Schedule::tryParseSpec("pull", &out, &error));
    EXPECT_EQ(error, "entry 'pull' is not of the form key=value");
    EXPECT_FALSE(Schedule::tryParseSpec("fuse=3", &out, &error));
    EXPECT_EQ(error, "schedule key 'fuse' expects 1|2|4, got '3'");
    EXPECT_FALSE(Schedule::tryParseSpec("wgsize=512", &out, &error));
    EXPECT_EQ(error,
              "schedule key 'wgsize' expects 128|256, got '512'");
    EXPECT_THROW(Schedule::parseSpec("speed=11"), FatalError);
}

TEST(ScheduleSpaceTest, AllEnumeratesInIdOrder)
{
    const std::vector<Schedule> &legacy =
        ScheduleSpace::legacy().all();
    ASSERT_EQ(legacy.size(), 96u);
    for (unsigned id = 0; id < 96u; ++id)
        EXPECT_EQ(legacy[id].encode(), id);
    const std::vector<Schedule> &ext =
        ScheduleSpace::extended().all();
    ASSERT_EQ(ext.size(), kNumSchedules);
    for (unsigned id = 0; id < kNumSchedules; ++id)
        EXPECT_EQ(ext[id].encode(), id);
}

TEST(ScheduleSpaceTest, LegacyAllWithMatchesOptConfigEnumeration)
{
    // Algorithm 1's enumerations must be exactly the legacy ones so
    // strategy tables stay bit-identical.
    for (Opt opt : allOpts()) {
        const std::vector<OptConfig> expect = allConfigsWith(opt);
        const std::vector<Schedule> got =
            ScheduleSpace::legacy().allWith(knobOf(opt));
        ASSERT_EQ(got.size(), expect.size()) << optName(opt);
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].encode(), expect[i].encode());
    }
}

TEST(ScheduleSpaceTest, KnobDecisionOrder)
{
    const std::vector<Knob> &legacy = ScheduleSpace::legacy().knobs();
    ASSERT_EQ(legacy.size(), kNumOpts);
    for (std::size_t i = 0; i < legacy.size(); ++i)
        EXPECT_EQ(legacy[i], knobOf(allOpts()[i]));
    const std::vector<Knob> &ext = ScheduleSpace::extended().knobs();
    ASSERT_EQ(ext.size(), kNumKnobs);
    EXPECT_EQ(ext[kNumOpts + 0], Knob::Pull);
    EXPECT_EQ(ext[kNumOpts + 1], Knob::Fuse2);
    EXPECT_EQ(ext[kNumOpts + 2], Knob::Fuse4);
}

TEST(ScheduleSpaceTest, ExtendedAllWithCoversExtendedKnobs)
{
    const ScheduleSpace ext = ScheduleSpace::extended();
    const std::vector<Schedule> pull = ext.allWith(Knob::Pull);
    EXPECT_EQ(pull.size(), kNumSchedules / 2);
    for (const Schedule &s : pull)
        EXPECT_EQ(s.dir, Direction::Pull);
    const std::vector<Schedule> fuse2 = ext.allWith(Knob::Fuse2);
    EXPECT_EQ(fuse2.size(), kNumSchedules / 3);
    for (const Schedule &s : fuse2)
        EXPECT_EQ(s.fuse, 2u);
}
