/**
 * @file
 * Tests for the experiment universe definitions.
 */
#include <gtest/gtest.h>

#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::runner;

TEST(StudyUniverse, MatchesPaperScale)
{
    const Universe u = studyUniverse();
    EXPECT_EQ(u.apps.size(), 17u);
    EXPECT_EQ(u.inputs.size(), 3u);
    EXPECT_EQ(u.chips.size(), 6u);
    EXPECT_EQ(u.runs, 3u); // the paper runs each test 3 times
    EXPECT_EQ(u.numTests(), 17u * 3u * 6u);
    EXPECT_NO_THROW(u.validate());
}

TEST(StudyUniverse, InputClassesArePresent)
{
    const Universe u = studyUniverse();
    EXPECT_EQ(inputByName(u, "road").cls, "road network");
    EXPECT_EQ(inputByName(u, "social").cls, "social network");
    EXPECT_EQ(inputByName(u, "random").cls, "uniform random");
    EXPECT_THROW(inputByName(u, "missing"), FatalError);
}

TEST(StudyUniverse, InputSpecsInstantiate)
{
    for (const InputSpec &spec : studyUniverse().inputs) {
        const graph::Csr g = spec.make();
        EXPECT_GT(g.numNodes(), 1000u) << spec.name;
        EXPECT_TRUE(g.hasWeights()) << spec.name;
        EXPECT_EQ(g.name(), spec.name);
    }
}

TEST(SmallUniverse, RespectsRequestedShape)
{
    const Universe u = smallUniverse(3, {"M4000", "MALI"});
    EXPECT_EQ(u.apps.size(), 3u);
    EXPECT_EQ(u.chips.size(), 2u);
    EXPECT_NO_THROW(u.validate());
}

TEST(SmallUniverse, DefaultsToAllChips)
{
    EXPECT_EQ(smallUniverse(2).chips.size(), 6u);
}

TEST(UniverseValidation, RejectsUnknownNames)
{
    Universe u = smallUniverse(2, {"M4000"});
    u.apps.push_back("not-an-app");
    EXPECT_THROW(u.validate(), FatalError);

    Universe u2 = smallUniverse(2, {"M4000"});
    u2.chips.push_back("not-a-chip");
    EXPECT_THROW(u2.validate(), FatalError);

    Universe u3 = smallUniverse(2, {"M4000"});
    u3.runs = 0;
    EXPECT_THROW(u3.validate(), FatalError);

    Universe u4 = smallUniverse(2, {"M4000"});
    u4.inputs.clear();
    EXPECT_THROW(u4.validate(), FatalError);
}

TEST(CustomChips, ChipForPrefersTheCustomRoster)
{
    Universe u = smallUniverse(2, {"R9"});
    EXPECT_EQ(&chipFor(u, "R9"), &sim::chipByName("R9"));

    // A custom chip with a registry name shadows the registry entry.
    sim::ChipModel tuned = sim::chipByName("R9");
    tuned.contendedRmwNs *= 2.0;
    u.customChips = {tuned};
    EXPECT_NO_THROW(u.validate());
    EXPECT_EQ(chipFor(u, "R9").contendedRmwNs, tuned.contendedRmwNs);
    EXPECT_THROW(chipFor(u, "not-a-chip"), FatalError);
}

TEST(CustomChips, ValidateRejectsBrokenOrDuplicateCustoms)
{
    Universe u = smallUniverse(2, {"R9"});
    sim::ChipModel broken = sim::chipByName("R9");
    broken.memBandwidthGBs = 0.0;
    u.customChips = {broken};
    EXPECT_ANY_THROW(u.validate());

    Universe u2 = smallUniverse(2, {"R9"});
    u2.customChips = {sim::chipByName("R9"), sim::chipByName("R9")};
    EXPECT_THROW(u2.validate(), FatalError);
}

TEST(CustomChips, UniverseCanRunAChipTheRegistryLacks)
{
    Universe u = smallUniverse(2, {"M4000"});
    sim::ChipModel synth = sim::chipByName("M4000");
    synth.shortName = "SYNTH";
    u.customChips = {synth};
    u.chips = {"SYNTH"};
    EXPECT_NO_THROW(u.validate());
    EXPECT_EQ(chipFor(u, "SYNTH").shortName, "SYNTH");
}

TEST(CustomChips, DatasetSeesTheSubstitutedChip)
{
    const Universe base = smallUniverse(2, {"MALI"});
    const Dataset ref = Dataset::build(base);

    // Same universe, but MALI's barrier cost is doubled through the
    // custom roster: the numbers and the content hash must move.
    Universe tuned = base;
    sim::ChipModel chip = sim::chipByName("MALI");
    chip.wgBarrierNs *= 2.0;
    tuned.customChips = {chip};
    const Dataset moved = Dataset::build(tuned);

    EXPECT_NE(moved.contentHash(), ref.contentHash());
    bool anyDiffers = false;
    for (std::size_t t = 0; t < ref.numTests(); ++t) {
        for (unsigned cfg = 0; cfg < ref.numConfigs(); ++cfg)
            anyDiffers |= moved.meanNs(t, cfg) != ref.meanNs(t, cfg);
    }
    EXPECT_TRUE(anyDiffers);

    // An empty custom roster is identity: the hash is unchanged.
    Universe noop = base;
    noop.customChips = {};
    EXPECT_EQ(Dataset::build(noop).contentHash(), ref.contentHash());
}
