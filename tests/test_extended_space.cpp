/**
 * @file
 * End-to-end coverage of the extended schedule space: an extended
 * sweep prices the two new axes (direction, fusion) while carrying
 * the paper's 96 legacy ids bit-identically as a prefix; Algorithm 1,
 * the serve index and the portfolio cover all widen to 576 ids; and
 * artifacts built over one space reject under the other with a cause
 * naming the schedule-space version.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graphport/dsl/schedule.hpp"
#include "graphport/port/algorithm1.hpp"
#include "graphport/port/strategy.hpp"
#include "graphport/portfolio/portfolio.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using dsl::Knob;
using dsl::ScheduleSpace;

namespace {

runner::Universe
tinyUniverse(ScheduleSpace space)
{
    runner::Universe u = runner::smallUniverse(2, {"M4000", "R9"});
    u.space = space;
    return u;
}

/** Extended small dataset, built once per binary. */
const runner::Dataset &
extendedDataset()
{
    static const runner::Dataset ds =
        runner::Dataset::build(tinyUniverse(ScheduleSpace::extended()));
    return ds;
}

const runner::Dataset &
legacyDataset()
{
    static const runner::Dataset ds =
        runner::Dataset::build(tinyUniverse(ScheduleSpace::legacy()));
    return ds;
}

} // namespace

TEST(ExtendedSpace, SweepWidensTo576Configs)
{
    const runner::Dataset &ds = extendedDataset();
    EXPECT_EQ(ds.numConfigs(), dsl::kNumSchedules);
    EXPECT_EQ(ds.numTests(), legacyDataset().numTests());
    // Extended cells are really priced (non-zero timings).
    for (unsigned cfg : {96u, 191u, 575u})
        EXPECT_GT(ds.meanNs(0, cfg), 0.0) << cfg;
}

TEST(ExtendedSpace, LegacyPrefixIsBitIdentical)
{
    // Per-cell seeds depend only on the schedule id, so the first 96
    // ids of an extended sweep must reproduce the legacy sweep
    // bit for bit — this is what lets CI diff the prefix.
    const runner::Dataset &legacy = legacyDataset();
    const runner::Dataset &ext = extendedDataset();
    for (std::size_t t = 0; t < legacy.numTests(); ++t)
        for (unsigned cfg = 0; cfg < legacy.numConfigs(); ++cfg)
            ASSERT_EQ(legacy.runs(t, cfg), ext.runs(t, cfg))
                << "test " << t << " config " << cfg;
}

TEST(ExtendedSpace, UniverseIdentityDependsOnSpace)
{
    const std::uint64_t legacy = runner::universeIdentityHash(
        tinyUniverse(ScheduleSpace::legacy()));
    const std::uint64_t ext = runner::universeIdentityHash(
        tinyUniverse(ScheduleSpace::extended()));
    EXPECT_NE(legacy, ext);
    EXPECT_NE(legacyDataset().contentHash(),
              extendedDataset().contentHash());
}

TEST(ExtendedSpace, Algorithm1DecidesExtendedKnobs)
{
    const runner::Dataset &ds = extendedDataset();
    std::vector<std::size_t> tests;
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        tests.push_back(t);
    const port::PartitionAnalysis pa =
        port::optsForPartition(ds, tests);
    ASSERT_EQ(pa.decisions.size(), dsl::kNumKnobs);
    // Decisions follow the space's knob order and include the two
    // new axes.
    const std::vector<Knob> &knobs =
        ds.universe().space.knobs();
    for (std::size_t i = 0; i < knobs.size(); ++i)
        EXPECT_EQ(pa.decisions[i].opt, knobs[i]);
    EXPECT_NO_THROW(pa.decisionFor(Knob::Pull));
    EXPECT_NO_THROW(pa.decisionFor(Knob::Fuse2));
    EXPECT_NO_THROW(pa.decisionFor(Knob::Fuse4));
    EXPECT_LT(pa.config.encode(), dsl::kNumSchedules);
}

TEST(ExtendedSpace, StrategiesStayInsideTheSpace)
{
    const runner::Dataset &ds = extendedDataset();
    const std::vector<port::Strategy> strategies =
        port::allStrategies(ds);
    ASSERT_FALSE(strategies.empty());
    bool anyExtended = false;
    for (const port::Strategy &s : strategies)
        for (unsigned cfg : s.configPerTest) {
            EXPECT_LT(cfg, dsl::kNumSchedules) << s.name;
            anyExtended = anyExtended || cfg >= dsl::kNumConfigs;
        }
    // The oracle at least must exploit the widened space whenever an
    // extended schedule wins any cell; with 576 candidates over 8
    // tests that is overwhelmingly likely — assert it so a silently
    // truncated enumeration can't pass.
    EXPECT_TRUE(anyExtended);
}

TEST(ExtendedSpace, IndexAndAdvisorServeExtendedIds)
{
    const runner::Dataset &ds = extendedDataset();
    serve::StrategyIndex index = serve::StrategyIndex::build(ds);
    EXPECT_EQ(index.space(), ScheduleSpace::extended());

    // Round-trip through the snapshot keeps the space.
    std::stringstream ss;
    index.save(ss);
    const serve::StrategyIndex loaded =
        serve::StrategyIndex::load(ss, "<test>");
    EXPECT_EQ(loaded.space(), ScheduleSpace::extended());

    const serve::Advisor advisor(std::move(index));
    const runner::Test test = ds.testAt(0);
    const serve::Advice advice = advisor.advise(
        serve::Query{test.app, test.input, test.chip});
    EXPECT_LT(advice.config, dsl::kNumSchedules);
    EXPECT_EQ(advice.configLabel,
              dsl::Schedule::decode(advice.config).label());
}

TEST(ExtendedSpace, PortfolioCoversExtendedSpace)
{
    const runner::Dataset &ds = extendedDataset();
    portfolio::CoverOptions opts;
    opts.epsilon = 0.25;
    const portfolio::Portfolio p = portfolio::Portfolio::solve(ds, opts);
    EXPECT_EQ(p.space(), ScheduleSpace::extended());
    ASSERT_FALSE(p.members().empty());
    for (unsigned member : p.members())
        EXPECT_LT(member, dsl::kNumSchedules);

    // Snapshot round-trip keeps the space row.
    std::stringstream ss;
    p.save(ss);
    const portfolio::Portfolio loaded =
        portfolio::Portfolio::load(ss, "<test>");
    EXPECT_EQ(loaded.space(), ScheduleSpace::extended());
}

TEST(ExtendedSpace, CheckpointRejectNamesScheduleSpace)
{
    // A .gpk written for the legacy universe must reject under the
    // extended universe, and the cause must name the space so the
    // operator can tell a schedule-space flip from dataset drift.
    const std::string path = ::testing::TempDir() +
                             "graphport_extended_space_test.gpk";
    std::remove(path.c_str());
    runner::BuildOptions options;
    options.checkpointPath = path;
    options.keepCheckpoint = true;
    (void)runner::Dataset::build(tinyUniverse(ScheduleSpace::legacy()),
                                 options);
    try {
        (void)runner::Dataset::fromShardCheckpoints(
            tinyUniverse(ScheduleSpace::extended()), {path});
        FAIL() << "foreign-space checkpoint merged";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("written for a different universe"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("extended/v1"), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(ExtendedSpace, StaleIndexCacheIsRejectedAndRebuilt)
{
    // An index cached over the legacy space must not answer for an
    // extended dataset: buildOrLoadCached warns (cause names both
    // space versions) and rebuilds over the widened space.
    const std::string path = ::testing::TempDir() +
                             "graphport_extended_space_test.gpi";
    std::remove(path.c_str());
    (void)serve::StrategyIndex::buildOrLoadCached(legacyDataset(),
                                                  path);
    EXPECT_EQ(serve::StrategyIndex::loadFile(path).space(),
              ScheduleSpace::legacy());

    const serve::StrategyIndex rebuilt =
        serve::StrategyIndex::buildOrLoadCached(extendedDataset(),
                                                path);
    EXPECT_EQ(rebuilt.space(), ScheduleSpace::extended());
    // The rebuilt snapshot replaced the stale one on disk.
    EXPECT_EQ(serve::StrategyIndex::loadFile(path).space(),
              ScheduleSpace::extended());
    std::remove(path.c_str());
}
