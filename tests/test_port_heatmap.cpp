/**
 * @file
 * Tests for the Figure 1 cross-chip heatmap.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graphport/port/heatmap.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

TEST(Heatmap, DiagonalIsExactlyOne)
{
    const Heatmap hm =
        computeHeatmap(testutil::smallAllChipDataset());
    for (std::size_t i = 0; i < hm.chips.size(); ++i)
        EXPECT_DOUBLE_EQ(hm.cells[i][i], 1.0);
}

TEST(Heatmap, AllCellsAreSlowdowns)
{
    // Every cell normalises against the row chip's own optimum, so
    // no cell can be below 1.
    const Heatmap hm =
        computeHeatmap(testutil::smallAllChipDataset());
    for (const auto &row : hm.cells) {
        for (double cell : row)
            EXPECT_GE(cell, 1.0 - 1e-12);
    }
}

TEST(Heatmap, DimensionsMatchUniverse)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const Heatmap hm = computeHeatmap(ds);
    EXPECT_EQ(hm.chips, ds.universe().chips);
    EXPECT_EQ(hm.cells.size(), hm.chips.size());
    for (const auto &row : hm.cells)
        EXPECT_EQ(row.size(), hm.chips.size());
    EXPECT_EQ(hm.rowGeomean.size(), hm.chips.size());
    EXPECT_EQ(hm.columnGeomean.size(), hm.chips.size());
}

TEST(Heatmap, MarginalsAreGeomeansOfCells)
{
    const Heatmap hm =
        computeHeatmap(testutil::smallAllChipDataset());
    const std::size_t n = hm.chips.size();
    for (std::size_t i = 0; i < n; ++i) {
        double rowLog = 0.0, colLog = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            rowLog += std::log(hm.cells[i][j]);
            colLog += std::log(hm.cells[j][i]);
        }
        EXPECT_NEAR(hm.rowGeomean[i],
                    std::exp(rowLog / static_cast<double>(n)), 1e-9);
        EXPECT_NEAR(hm.columnGeomean[i],
                    std::exp(colLog / static_cast<double>(n)), 1e-9);
    }
}

TEST(Heatmap, CrossVendorPortingCosts)
{
    // Porting between vendors must cost something: at least one
    // off-diagonal cell in every row shows a real slowdown.
    const Heatmap hm =
        computeHeatmap(testutil::smallAllChipDataset());
    const std::size_t n = hm.chips.size();
    for (std::size_t r = 0; r < n; ++r) {
        double worst = 1.0;
        for (std::size_t c = 0; c < n; ++c) {
            if (c != r)
                worst = std::max(worst, hm.cells[r][c]);
        }
        EXPECT_GT(worst, 1.01) << hm.chips[r];
    }
}
