/**
 * @file
 * Correctness validation of all 17 applications against the
 * sequential reference oracles, on all three input classes, plus
 * structural checks on the recorded traces.
 */
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "graphport/apps/app.hpp"
#include "graphport/graph/generators.hpp"
#include "graphport/graph/reference.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::graph;

namespace {

/** Small instances of the three input classes. */
const Csr &
inputGraph(const std::string &name)
{
    static const std::map<std::string, Csr> graphs = [] {
        std::map<std::string, Csr> m;
        m.emplace("road", gen::roadGrid(20, 20, 0.01, 11));
        m.emplace("social", gen::rmat(9, 8.0, 12));
        m.emplace("random", gen::uniformRandom(512, 6.0, 13));
        return m;
    }();
    return graphs.at(name);
}

struct Case
{
    std::string app;
    std::string input;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const std::string &app : apps::allAppNames()) {
        for (const char *input : {"road", "social", "random"})
            cases.push_back({app, input});
    }
    return cases;
}

void
validateOutput(const std::string &app_name, const Csr &g,
               const apps::AppOutput &out)
{
    const apps::Application &app = apps::appByName(app_name);
    const std::string problem = app.problem();
    if (problem == "BFS") {
        EXPECT_EQ(out.levels, ref::bfsLevels(g, apps::kSourceNode));
    } else if (problem == "SSSP") {
        EXPECT_EQ(out.distances, ref::sssp(g, apps::kSourceNode));
    } else if (problem == "CC") {
        EXPECT_EQ(out.labels, ref::connectedComponents(g));
    } else if (problem == "PR") {
        const auto expected = ref::pagerank(g);
        ASSERT_EQ(out.ranks.size(), expected.size());
        const double sum = std::accumulate(out.ranks.begin(),
                                           out.ranks.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-3);
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_NEAR(out.ranks[i], expected[i], 1e-3)
                << "node " << i;
    } else if (problem == "MIS") {
        EXPECT_TRUE(ref::isMaximalIndependentSet(g, out.inSet));
    } else if (problem == "MST") {
        EXPECT_EQ(out.scalar, ref::msfWeight(g));
    } else if (problem == "TRI") {
        EXPECT_EQ(out.scalar, ref::triangleCount(g));
    } else {
        FAIL() << "unknown problem " << problem;
    }
}

} // namespace

class AppCorrectnessTest : public ::testing::TestWithParam<Case>
{};

TEST_P(AppCorrectnessTest, OutputMatchesReference)
{
    const Case &c = GetParam();
    const Csr &g = inputGraph(c.input);
    const apps::Application &app = apps::appByName(c.app);
    const auto [out, trace] = apps::runApp(app, g, c.input);
    validateOutput(c.app, g, out);
}

TEST_P(AppCorrectnessTest, TraceIsWellFormed)
{
    const Case &c = GetParam();
    const Csr &g = inputGraph(c.input);
    const apps::Application &app = apps::appByName(c.app);
    const auto [out, trace] = apps::runApp(app, g, c.input);
    EXPECT_EQ(trace.app, c.app);
    EXPECT_EQ(trace.input, c.input);
    EXPECT_GT(trace.launchCount(), 0u);
    EXPECT_GT(trace.hostIterations, 0u);
    EXPECT_EQ(trace.numNodes, g.numNodes());
    EXPECT_EQ(trace.numEdges, g.numEdges());
    EXPECT_NO_THROW(trace.validate());
    for (const dsl::KernelLaunch &l : trace.launches) {
        EXPECT_FALSE(l.name.empty());
        EXPECT_LT(l.iteration, trace.hostIterations);
        if (l.hasNeighborLoop) {
            EXPECT_EQ(l.hist.totalItems(), l.items) << l.name;
        }
    }
}

TEST_P(AppCorrectnessTest, DeterministicAcrossRuns)
{
    const Case &c = GetParam();
    const Csr &g = inputGraph(c.input);
    const apps::Application &app = apps::appByName(c.app);
    const auto [out1, trace1] = apps::runApp(app, g, c.input);
    const auto [out2, trace2] = apps::runApp(app, g, c.input);
    EXPECT_EQ(out1.scalar, out2.scalar);
    EXPECT_EQ(out1.levels, out2.levels);
    EXPECT_EQ(out1.labels, out2.labels);
    EXPECT_EQ(trace1.launchCount(), trace2.launchCount());
    EXPECT_EQ(trace1.hostIterations, trace2.hostIterations);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllInputs, AppCorrectnessTest,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name = info.param.app + "_" + info.param.input;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(AppRegistry, SeventeenAppsSevenProblems)
{
    const auto &apps = apps::allApplications();
    EXPECT_EQ(apps.size(), 17u);
    std::map<std::string, unsigned> perProblem;
    unsigned fastest = 0;
    for (const auto &app : apps) {
        ++perProblem[app->problem()];
        fastest += app->fastestVariant() ? 1 : 0;
        EXPECT_FALSE(app->description().empty());
    }
    EXPECT_EQ(perProblem.size(), 7u);
    // One fastest variant per problem (Table VII's (*) markers).
    EXPECT_EQ(fastest, 7u);
    EXPECT_EQ(perProblem["BFS"], 3u);
    EXPECT_EQ(perProblem["SSSP"], 3u);
    EXPECT_EQ(perProblem["CC"], 3u);
    EXPECT_EQ(perProblem["MIS"], 2u);
    EXPECT_EQ(perProblem["MST"], 2u);
    EXPECT_EQ(perProblem["PR"], 2u);
    EXPECT_EQ(perProblem["TRI"], 2u);
}

TEST(AppRegistry, NamesAreUniqueAndLookupWorks)
{
    const auto names = apps::allAppNames();
    for (const std::string &name : names)
        EXPECT_EQ(apps::appByName(name).name(), name);
    EXPECT_THROW(apps::appByName("nonexistent"), FatalError);
}

TEST(AppBehaviour, RoadBfsHasManyIterations)
{
    // The large-diameter property that makes oitergb matter.
    const Csr &road = inputGraph("road");
    const Csr &social = inputGraph("social");
    const auto [o1, roadTrace] =
        apps::runApp(apps::appByName("bfs-wl"), road, "road");
    const auto [o2, socialTrace] =
        apps::runApp(apps::appByName("bfs-wl"), social, "social");
    EXPECT_GT(roadTrace.hostIterations,
              4 * socialTrace.hostIterations);
}

TEST(AppBehaviour, WorklistAppsPushAtomically)
{
    const Csr &g = inputGraph("social");
    for (const char *name : {"bfs-wl", "sssp-wl", "sssp-nf"}) {
        const auto [out, trace] =
            apps::runApp(apps::appByName(name), g, "social");
        std::uint64_t pushes = 0;
        for (const auto &l : trace.launches)
            pushes += l.contendedPushes;
        EXPECT_GT(pushes, 0u) << name;
    }
}

TEST(AppBehaviour, TopologyDrivenAppsDoNot)
{
    const Csr &g = inputGraph("social");
    for (const char *name : {"bfs-topo", "sssp-bf", "pr-topo"}) {
        const auto [out, trace] =
            apps::runApp(apps::appByName(name), g, "social");
        std::uint64_t pushes = 0;
        for (const auto &l : trace.launches)
            pushes += l.contendedPushes;
        EXPECT_EQ(pushes, 0u) << name;
    }
}
