/**
 * @file
 * Tests for strategy evaluation, combination ranking, the envelope
 * and the naive selectors.
 */
#include <gtest/gtest.h>

#include "graphport/port/evaluate.hpp"
#include "graphport/port/ranking.hpp"
#include "graphport/port/strategy.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

TEST(Evaluate, BaselineShowsNoChangeEverywhere)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const StrategyEval e =
        evaluateStrategy(ds, makeBaseline(ds));
    EXPECT_EQ(e.speedups, 0u);
    EXPECT_EQ(e.slowdowns, 0u);
    EXPECT_EQ(e.noChange, e.testsConsidered);
    EXPECT_DOUBLE_EQ(e.geomeanVsBaseline, 1.0);
    EXPECT_GE(e.geomeanVsOracle, 1.0);
}

TEST(Evaluate, OracleDominatesEverything)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const StrategyEval oracle =
        evaluateStrategy(ds, makeOracle(ds));
    EXPECT_DOUBLE_EQ(oracle.geomeanVsOracle, 1.0);
    EXPECT_EQ(oracle.slowdowns, 0u);
    EXPECT_EQ(oracle.speedups, oracle.testsConsidered);
    for (const Strategy &s : allStrategies(ds)) {
        const StrategyEval e = evaluateStrategy(ds, s);
        EXPECT_LE(oracle.geomeanVsOracle,
                  e.geomeanVsOracle + 1e-12)
            << s.name;
        EXPECT_LE(e.geomeanVsBaseline,
                  oracle.geomeanVsBaseline + 1e-12)
            << s.name;
    }
}

TEST(Evaluate, CountsAddUp)
{
    const runner::Dataset &ds = testutil::smallDataset();
    for (const Strategy &s : allStrategies(ds)) {
        const StrategyEval e = evaluateStrategy(ds, s);
        EXPECT_EQ(e.speedups + e.slowdowns + e.noChange,
                  e.testsConsidered)
            << s.name;
        EXPECT_GE(e.maxSpeedup, 1.0);
        EXPECT_GE(e.maxSlowdown, 1.0);
    }
}

TEST(Evaluate, PerChipBreakdownCoversAllChips)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const auto perChip =
        evaluatePerChip(ds, makeOracle(ds));
    EXPECT_EQ(perChip.size(), ds.universe().chips.size());
    for (const ChipEval &ce : perChip) {
        EXPECT_EQ(ce.slowdowns, 0u) << ce.chip;
        EXPECT_GE(ce.geomeanVsBaseline, 1.0) << ce.chip;
    }
}

TEST(Ranking, CoversAllNonBaselineConfigs)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto ranking = rankCombos(ds);
    EXPECT_EQ(ranking.size(), 95u);
    std::set<unsigned> configs;
    for (const ComboStats &cs : ranking) {
        EXPECT_NE(cs.config, dsl::OptConfig::baseline().encode());
        configs.insert(cs.config);
        EXPECT_FALSE(cs.label.empty());
        EXPECT_GE(cs.maxSpeedup, 1.0 - 1e-12);
    }
    EXPECT_EQ(configs.size(), 95u);
}

TEST(Ranking, SortedBySlowdowns)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto ranking = rankCombos(ds);
    for (std::size_t i = 1; i < ranking.size(); ++i)
        EXPECT_LE(ranking[i - 1].slowdowns, ranking[i].slowdowns);
}

TEST(Ranking, RankOfFindsEntries)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto ranking = rankCombos(ds);
    EXPECT_EQ(rankOf(ranking, ranking[7].config), 7u);
    EXPECT_EQ(rankOf(ranking, dsl::OptConfig::baseline().encode()),
              std::numeric_limits<std::size_t>::max());
}

TEST(Envelope, OneRowPerChipWithSaneExtremes)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const auto rows = computeEnvelope(ds);
    EXPECT_EQ(rows.size(), ds.universe().chips.size());
    for (const EnvelopeRow &row : rows) {
        EXPECT_GE(row.maxSpeedup, 1.0);
        EXPECT_GE(row.maxSlowdown, 1.0);
        EXPECT_FALSE(row.speedupApp.empty());
        EXPECT_FALSE(row.slowdownApp.empty());
    }
}

TEST(Naive, SelectorsAreConsistentWithRanking)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto ranking = rankCombos(ds);
    const NaiveAnalyses naive = naiveAnalyses(ranking);
    EXPECT_EQ(naive.fewestSlowdowns, ranking.front().config);
    // The max-geomean pick really has the highest geomean.
    double best = 0.0;
    for (const ComboStats &cs : ranking)
        best = std::max(best, cs.geomean);
    EXPECT_DOUBLE_EQ(
        ranking[rankOf(ranking, naive.maxGeomean)].geomean, best);
    // Every do-no-harm entry has zero slowdowns.
    for (unsigned cfg : naive.doNoHarm) {
        EXPECT_EQ(ranking[rankOf(ranking, cfg)].slowdowns, 0u);
    }
}

TEST(Evaluate, PartitionSlowdownsCoverEveryPartition)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation spec{false, false, true};
    const Strategy s = makeSpecialised(ds, spec);
    const auto slowdowns = partitionSlowdowns(ds, s, spec);
    EXPECT_EQ(slowdowns.size(), ds.universe().chips.size());
    for (const auto &[key, slowdown] : slowdowns)
        EXPECT_GE(slowdown, 1.0) << key;
}

TEST(Evaluate, PartitionSlowdownsOfOracleAreExactlyOne)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation all{true, true, true};
    const auto slowdowns =
        partitionSlowdowns(ds, makeOracle(ds), all);
    EXPECT_EQ(slowdowns.size(), ds.numTests());
    for (const auto &[key, slowdown] : slowdowns)
        EXPECT_DOUBLE_EQ(slowdown, 1.0) << key;
}

TEST(Evaluate, GlobalPartitionSlowdownMatchesWholeDatasetEval)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation none{false, false, false};
    const Strategy s = makeSpecialised(ds, none);
    const auto slowdowns = partitionSlowdowns(ds, s, none);
    ASSERT_EQ(slowdowns.size(), 1u);
    const StrategyEval e = evaluateStrategy(ds, s);
    EXPECT_DOUBLE_EQ(slowdowns.at(""), e.geomeanVsOracle);
}
