/**
 * @file
 * Shard supervision: the pure planning layer (steal plans, respawn
 * backoff, worker argv, checkpoint pruning) and the full supervised
 * machinery over real worker processes — a SIGSTOPped sweep worker is
 * declared stalled, its rows stolen, and the merged CSV stays
 * byte-identical to a 1-process sweep; a serve worker killed at every
 * (re)spawn is declared permanently dead and its chips answered from
 * live slices with the degraded label; a worker stalled mid-batch is
 * hedged to a replica that answers bit-identically.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/fault/injector.hpp"
#include "graphport/obs/obs.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/serve/loadgen.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/shard/router.hpp"
#include "graphport/shard/supervise.hpp"
#include "graphport/shard/sweep.hpp"
#include "graphport/shard/wire.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/proc.hpp"

using namespace graphport;

namespace {

runner::Universe
universe()
{
    return runner::smallUniverse(2);
}

std::size_t
workItems()
{
    return universe().numTests() * dsl::kNumConfigs;
}

std::string
shardPath(const std::string &name)
{
    return ::testing::TempDir() + "graphport_supervise_" + name +
           ".gpk";
}

/** Price [begin, end) into @p path, flushing every @p every cells. */
void
buildShard(const std::string &path, std::size_t begin,
           std::size_t end, std::size_t every)
{
    std::remove(path.c_str());
    runner::BuildOptions options;
    options.checkpointPath = path;
    options.checkpointEvery = every;
    options.workBegin = begin;
    options.workEnd = end;
    options.keepCheckpoint = true;
    (void)runner::Dataset::build(universe(), options);
}

std::string
csvBytes(const runner::Dataset &ds)
{
    std::ostringstream os;
    ds.saveCsv(os);
    return os.str();
}

const std::string &
referenceCsv()
{
    static const std::string csv =
        csvBytes(runner::Dataset::build(universe()));
    return csv;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/**
 * The graphport_cli the supervised sweeps and routers exec: tests are
 * emitted into <build>/tests, the CLI into <build>/tools. Empty when
 * the binary is not there (a standalone test run), in which case the
 * process-level suites skip.
 */
std::string
cliPath()
{
    const std::string self = support::selfExePath("");
    const std::size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "";
    const std::string cli =
        self.substr(0, slash) + "/../tools/graphport_cli";
    return fileExists(cli) ? cli : "";
}

std::string
freshDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "graphport_supervise_" + name;
    support::ensureDir(dir);
    return dir;
}

} // namespace

// ---------------------------------------------------------------------
// Pure planning layer: no processes involved.
// ---------------------------------------------------------------------

TEST(SuperviseBackoff, DoublesFromBaseAndSaturatesAtCap)
{
    EXPECT_EQ(shard::backoffMsFor(0), 1u);
    EXPECT_EQ(shard::backoffMsFor(1), 2u);
    EXPECT_EQ(shard::backoffMsFor(3), 8u);
    EXPECT_EQ(shard::backoffMsFor(6), 64u);
    EXPECT_EQ(shard::backoffMsFor(7), 64u);
    EXPECT_EQ(shard::backoffMsFor(1000), 64u);

    EXPECT_EQ(shard::backoffMsFor(0, 5, 40), 5u);
    EXPECT_EQ(shard::backoffMsFor(2, 5, 40), 20u);
    EXPECT_EQ(shard::backoffMsFor(3, 5, 40), 40u);
    EXPECT_EQ(shard::backoffMsFor(50, 5, 40), 40u);
}

TEST(PlanSteal, NothingDurableMeansFullRangeNoOverlap)
{
    const shard::WorkRange victim{100, 200};
    const shard::StealPlan plan = shard::planSteal(victim, 0, 3);
    EXPECT_EQ(plan.stealBegin, 100u);
    EXPECT_EQ(plan.overlapCells, 0u);
    ASSERT_EQ(plan.thiefRanges.size(), 3u);
    EXPECT_EQ(plan.thiefRanges.front().begin, 100u);
    EXPECT_EQ(plan.thiefRanges.back().end, 200u);
    for (std::size_t j = 1; j < plan.thiefRanges.size(); ++j)
        EXPECT_EQ(plan.thiefRanges[j].begin,
                  plan.thiefRanges[j - 1].end);
}

TEST(PlanSteal, MidRangeDurableOverlapsSeamByTheCap)
{
    const shard::WorkRange victim{0, 1000};
    const shard::StealPlan plan = shard::planSteal(victim, 500, 2);
    EXPECT_EQ(plan.overlapCells, 32u);
    EXPECT_EQ(plan.stealBegin, 468u);
    ASSERT_EQ(plan.thiefRanges.size(), 2u);
    EXPECT_EQ(plan.thiefRanges[0].begin, 468u);
    EXPECT_EQ(plan.thiefRanges[0].end, plan.thiefRanges[1].begin);
    EXPECT_EQ(plan.thiefRanges[1].end, 1000u);
    EXPECT_EQ(plan.thiefRanges[0].size() + plan.thiefRanges[1].size(),
              1000u - 468u);
}

TEST(PlanSteal, ShortDurablePrefixLimitsTheOverlap)
{
    const shard::WorkRange victim{10, 40};
    const shard::StealPlan plan = shard::planSteal(victim, 15, 1);
    EXPECT_EQ(plan.overlapCells, 5u);
    EXPECT_EQ(plan.stealBegin, 10u);
    ASSERT_EQ(plan.thiefRanges.size(), 1u);
    EXPECT_EQ(plan.thiefRanges[0].begin, 10u);
    EXPECT_EQ(plan.thiefRanges[0].end, 40u);
}

TEST(PlanSteal, DurableEndIsClampedIntoTheVictimRange)
{
    // A durableEnd past the victim's end (a checkpoint that somehow
    // covers more than the range — e.g. a pre-steal full file) must
    // not produce ranges outside [begin, end).
    const shard::WorkRange victim{0, 100};
    const shard::StealPlan plan = shard::planSteal(victim, 5000, 2);
    EXPECT_EQ(plan.overlapCells, 32u);
    EXPECT_EQ(plan.stealBegin, 68u);
    EXPECT_EQ(plan.thiefRanges.back().end, 100u);
}

TEST(PlanSteal, EmptyThiefRangesAreDropped)
{
    // 2 cells left across 8 thieves: only 2 non-empty ranges remain.
    const shard::WorkRange victim{0, 10};
    const shard::StealPlan plan =
        shard::planSteal(victim, 8, 8, /*overlapCap=*/0);
    EXPECT_EQ(plan.overlapCells, 0u);
    EXPECT_EQ(plan.stealBegin, 8u);
    ASSERT_EQ(plan.thiefRanges.size(), 2u);
    EXPECT_EQ(plan.thiefRanges[0].size() + plan.thiefRanges[1].size(),
              2u);
    EXPECT_THROW(shard::planSteal(victim, 8, 0), PanicError);
}

TEST(SweepWorkerArgv, ForwardsEveryCoordinatorFlag)
{
    const std::vector<std::string> base = {"exe", "sweep-worker",
                                           "--small", "2"};
    const std::vector<std::string> argv = shard::sweepWorkerArgv(
        base, 1, 4, 2, "x.gpk", 128, "seed=1;a.crash:once=2", true);
    const std::vector<std::string> want = {
        "exe",          "sweep-worker",
        "--small",      "2",
        "--shard",      "1",
        "--shards",     "4",
        "--threads",    "2",
        "--checkpoint", "x.gpk",
        "--checkpoint-every", "128",
        "--fault-spec", "seed=1;a.crash:once=2",
        "--heartbeat"};
    EXPECT_EQ(argv, want);
}

TEST(SweepWorkerArgv, StealRangeAndOmittedExtrasAreHonoured)
{
    const std::vector<std::string> base = {"exe", "sweep-worker"};
    const std::vector<std::string> argv = shard::sweepWorkerArgv(
        base, 0, 2, 1, "s.gpk", 256, "", false, 468, 1000);
    const std::vector<std::string> want = {
        "exe",          "sweep-worker",
        "--shard",      "0",
        "--shards",     "2",
        "--threads",    "1",
        "--checkpoint", "s.gpk",
        "--checkpoint-every", "256",
        "--work-begin", "468",
        "--work-end",   "1000"};
    EXPECT_EQ(argv, want);

    // A half-specified range is a coordinator bug, not a worker one.
    EXPECT_THROW(shard::sweepWorkerArgv(base, 0, 2, 1, "s.gpk", 256,
                                        "", false, 468),
                 PanicError);
}

TEST(StragglerFactor, RejectsBelowOneAndNonFinite)
{
    shard::validateStragglerFactor("study", 1.0);
    shard::validateStragglerFactor("study", 2.5);
    EXPECT_THROW(shard::validateStragglerFactor("study", 0.5),
                 FatalError);
    EXPECT_THROW(shard::validateStragglerFactor("study", 0.0),
                 FatalError);
    EXPECT_THROW(shard::validateStragglerFactor(
                     "study", std::numeric_limits<double>::quiet_NaN()),
                 FatalError);
    EXPECT_THROW(shard::validateStragglerFactor(
                     "study", std::numeric_limits<double>::infinity()),
                 FatalError);
}

TEST(HeartbeatFrame, RoundTripsKeyAndProgress)
{
    const std::string payload = shard::packHeartbeatFrame(7, 1234);
    EXPECT_EQ(shard::frameKind(payload), 'h');

    std::uint64_t key = 0;
    std::uint64_t progress = 0;
    std::string cause;
    ASSERT_TRUE(shard::unpackHeartbeatFrame(payload, &key, &progress,
                                            &cause))
        << cause;
    EXPECT_EQ(key, 7u);
    EXPECT_EQ(progress, 1234u);

    EXPECT_FALSE(shard::unpackHeartbeatFrame("junk", &key, &progress,
                                             &cause));
    EXPECT_FALSE(cause.empty());
}

// ---------------------------------------------------------------------
// Checkpoint pruning: the durable-prefix recovery behind a steal.
// ---------------------------------------------------------------------

TEST(PruneCheckpoint, CleanFileKeepsEveryRow)
{
    const std::string path = shardPath("prune_clean");
    buildShard(path, 100, 300, 64);

    std::size_t durableEnd = 0;
    runner::Dataset::pruneShardCheckpoint(universe(), path,
                                          &durableEnd);
    // durableEnd is one past the highest surviving work index, not a
    // row count: the victim priced [100, 300).
    EXPECT_EQ(durableEnd, 300u);
    EXPECT_TRUE(fileExists(path));
}

TEST(PruneCheckpoint, TrailingGarbageIsTruncatedAway)
{
    const std::string path = shardPath("prune_garbage");
    buildShard(path, 0, 500, 100);
    writeAll(path, readAll(path) + "cell,not,a,row\n");

    std::size_t durableEnd = 0;
    runner::Dataset::pruneShardCheckpoint(universe(), path,
                                          &durableEnd);
    EXPECT_EQ(durableEnd, 500u);

    // Idempotent: the rewrite dropped the garbage, so a second prune
    // sees a clean file.
    std::size_t again = 0;
    runner::Dataset::pruneShardCheckpoint(universe(), path, &again);
    EXPECT_EQ(again, 500u);
}

TEST(PruneCheckpoint, TornTailRowLosesExactlyThatRow)
{
    const std::string path = shardPath("prune_torn");
    buildShard(path, 0, 500, 100);
    const std::string bytes = readAll(path);
    // Chop into the final row (the file ends with "...\n"): its
    // checksum no longer seals, so the durable prefix ends one row
    // earlier.
    writeAll(path, bytes.substr(0, bytes.size() - 5));

    std::size_t durableEnd = 0;
    runner::Dataset::pruneShardCheckpoint(universe(), path,
                                          &durableEnd);
    EXPECT_EQ(durableEnd, 499u);
}

TEST(PruneCheckpoint, ForeignOrHeaderlessFilesYieldNothingDurable)
{
    const std::string foreign = shardPath("prune_foreign");
    writeAll(foreign, "graphport-checkpoint,1\n"
                      "universe,00000000deadbeef\n"
                      "cell,whatever\n");
    std::size_t durableEnd = 77;
    runner::Dataset::pruneShardCheckpoint(universe(), foreign,
                                          &durableEnd);
    EXPECT_EQ(durableEnd, 0u);
    EXPECT_FALSE(fileExists(foreign));

    const std::string headerless = shardPath("prune_headerless");
    writeAll(headerless, "not a checkpoint\n");
    durableEnd = 77;
    runner::Dataset::pruneShardCheckpoint(universe(), headerless,
                                          &durableEnd);
    EXPECT_EQ(durableEnd, 0u);
    EXPECT_FALSE(fileExists(headerless));

    const std::string missing = shardPath("prune_missing");
    std::remove(missing.c_str());
    durableEnd = 77;
    runner::Dataset::pruneShardCheckpoint(universe(), missing,
                                          &durableEnd);
    EXPECT_EQ(durableEnd, 0u);
}

TEST(PlanSteal, PrunedVictimPlusThievesMergeByteIdentically)
{
    // The whole steal pipeline without processes: a victim that died
    // mid-range leaves a durable prefix; planSteal re-partitions the
    // suffix (overlap included); pricing the planned ranges and
    // merging victim + thieves + the healthy shard reproduces the
    // 1-process CSV bit for bit — the overlap rows are double-priced
    // and the merge's identical-overlap rule accepts them.
    const std::size_t items = workItems();
    const shard::WorkRange victim = shard::rangeOf(0, 2, items);
    const shard::WorkRange healthy = shard::rangeOf(1, 2, items);

    const std::string victimPath = shardPath("steal_victim");
    const std::size_t diedAt = victim.begin + 700;
    buildShard(victimPath, victim.begin, diedAt, 100);

    std::size_t durableEnd = 0;
    runner::Dataset::pruneShardCheckpoint(universe(), victimPath,
                                          &durableEnd);
    ASSERT_EQ(durableEnd, diedAt);

    const shard::StealPlan plan =
        shard::planSteal(victim, durableEnd, 2);
    EXPECT_EQ(plan.overlapCells, 32u);
    std::vector<std::string> paths = {victimPath};
    for (std::size_t j = 0; j < plan.thiefRanges.size(); ++j) {
        paths.push_back(
            shardPath("steal_thief" + std::to_string(j)));
        buildShard(paths.back(), plan.thiefRanges[j].begin,
                   plan.thiefRanges[j].end, 64);
    }
    paths.push_back(shardPath("steal_healthy"));
    buildShard(paths.back(), healthy.begin, healthy.end, 256);

    const runner::Dataset merged =
        runner::Dataset::fromShardCheckpoints(universe(), paths);
    EXPECT_EQ(csvBytes(merged), referenceCsv());
}

// ---------------------------------------------------------------------
// Process-level suites: real workers under seeded chaos. These need
// the graphport_cli binary next to the test tree and skip without it.
// ---------------------------------------------------------------------

namespace {

/** Run a supervised sweep with @p shards workers, stalling the worker
 *  "once=K" names, and require the byte-identical merge plus a steal. */
void
runStalledSweep(const std::string &cli, std::size_t shards,
                const std::string &spec, const std::string &dirName)
{
    auto injector = std::make_unique<fault::Injector>(
        fault::FaultSchedule::parse(spec));
    fault::ScopedInjector scope(injector.get());

    obs::Obs o;
    shard::SweepShardOptions sopts;
    sopts.shards = shards;
    sopts.shardDir = freshDir(dirName);
    sopts.faultSpec = spec;
    sopts.stallAfterMs = 400;
    sopts.obs = &o;
    sopts.baseWorkerArgv = {cli, "sweep-worker", "--small", "2"};

    const runner::Dataset merged =
        shard::shardedSweep(universe(), sopts);
    EXPECT_EQ(csvBytes(merged), referenceCsv());
    EXPECT_GE(o.metrics.counterValue("shard.sweep.stall_verdicts"),
              1u);
    EXPECT_GE(o.metrics.counterValue("shard.steal.victims"), 1u);
    EXPECT_GE(o.metrics.counterValue("shard.steal.workers"), 1u);
    EXPECT_GE(o.metrics.counterValue("shard.steal.cells"), 1u);
}

} // namespace

TEST(SuperviseSweep, StalledWorkerIsStolenByteIdenticallyAt2Shards)
{
    const std::string cli = cliPath();
    if (cli.empty())
        GTEST_SKIP() << "graphport_cli not built next to tests";
    runStalledSweep(cli, 2, "seed=11;shard.worker.stall:once=1",
                    "sweep2");
}

TEST(SuperviseSweep, StalledWorkerIsStolenByteIdenticallyAt4Shards)
{
    const std::string cli = cliPath();
    if (cli.empty())
        GTEST_SKIP() << "graphport_cli not built next to tests";
    runStalledSweep(cli, 4, "seed=13;shard.worker.stall:once=2",
                    "sweep4");
}

TEST(SuperviseRouter, PermanentlyDeadShardStillAnswersEverything)
{
    const std::string cli = cliPath();
    if (cli.empty())
        GTEST_SKIP() << "graphport_cli not built next to tests";

    const runner::Dataset ds = runner::Dataset::build(universe());
    const serve::StrategyIndex index = serve::StrategyIndex::build(ds);
    const std::string indexPath =
        freshDir("router_dead") + "/index.gpi";
    index.saveFile(indexPath);
    const serve::Advisor fullAdvisor(index);
    const serve::ServePolicy policy;

    const std::vector<serve::Query> stream =
        serve::makeQueryStream(index, 800, 21);

    shard::RouterOptions ropts;
    ropts.shards = 2;
    ropts.indexPath = indexPath;
    // The ".die" site survives respawn spec-stripping, so the
    // replacement dies at startup too and the budget of 1 exhausts.
    ropts.faultSpec = "seed=5;shard.worker.die:once=1";
    ropts.maxRespawns = 1;
    ropts.baseWorkerArgv = {cli, "serve-worker"};
    shard::Router router(index.chips(), ropts);

    std::unique_ptr<serve::StrategyIndex> liveSlice;
    std::unique_ptr<serve::Advisor> liveAdvisor;
    std::size_t answered = 0;
    std::size_t degraded = 0;
    constexpr std::size_t kBatch = 200;
    for (std::size_t b = 0; b < stream.size(); b += kBatch) {
        const std::size_t e = std::min(b + kBatch, stream.size());
        const std::vector<serve::Query> q(stream.begin() + b,
                                          stream.begin() + e);
        std::vector<std::uint64_t> k;
        for (std::size_t i = b; i < e; ++i)
            k.push_back(i);
        const std::vector<serve::Advice> advices = router.route(q, k);
        answered += advices.size();
        for (std::size_t i = 0; i < advices.size(); ++i) {
            const bool ownerDead =
                router.isDead(router.shardOf(q[i].chip));
            // The degraded label is provenance: exactly the queries
            // whose owning shard is dead carry it.
            ASSERT_EQ(advices[i].shardDegraded, ownerDead)
                << q[i].app << "/" << q[i].input << "/" << q[i].chip;
            if (!ownerDead) {
                EXPECT_TRUE(advices[i].sameAnswer(
                    fullAdvisor.adviseResilient(q[i], k[i], policy,
                                                nullptr)))
                    << "healthy query " << b + i;
                continue;
            }
            ++degraded;
            if (liveAdvisor == nullptr) {
                std::vector<std::string> liveChips;
                for (std::size_t s = 0; s < router.shards(); ++s) {
                    if (router.isDead(s))
                        continue;
                    for (const std::string &chip : shard::chipsOf(
                             s, router.shards(), index.chips()))
                        liveChips.push_back(chip);
                }
                liveSlice = std::make_unique<serve::StrategyIndex>(
                    index.sliceByChips(liveChips));
                liveAdvisor =
                    std::make_unique<serve::Advisor>(*liveSlice);
            }
            // The redirect oracle floors untraceable pairs exactly
            // like the worker does.
            serve::ServePolicy degradedPolicy = policy;
            degradedPolicy.floorUnresolvable = true;
            EXPECT_TRUE(advices[i].sameAnswer(
                liveAdvisor->adviseResilient(q[i], k[i],
                                             degradedPolicy,
                                             nullptr)))
                << "degraded query " << b + i;
        }
    }

    EXPECT_EQ(answered, stream.size());
    EXPECT_GE(degraded, 1u);
    EXPECT_EQ(router.deadShards(), 1u);
    EXPECT_GE(router.degradedQueries(), degraded);
    router.shutdown();
}

TEST(SuperviseRouter, HedgedReplicaAnswersAStalledBatchBitIdentically)
{
    const std::string cli = cliPath();
    if (cli.empty())
        GTEST_SKIP() << "graphport_cli not built next to tests";

    const runner::Dataset ds = runner::Dataset::build(universe());
    const serve::StrategyIndex index = serve::StrategyIndex::build(ds);
    const std::string indexPath =
        freshDir("router_hedge") + "/index.gpi";
    index.saveFile(indexPath);
    const serve::Advisor fullAdvisor(index);
    const serve::ServePolicy policy;

    const std::vector<serve::Query> stream =
        serve::makeQueryStream(index, 256, 33);
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < stream.size(); ++i)
        keys.push_back(i);

    shard::RouterOptions ropts;
    ropts.shards = 2;
    ropts.indexPath = indexPath;
    // The router's frame keys count up from 1, so "once=1" freezes
    // whichever worker holds the very first batch mid-answer.
    ropts.faultSpec = "seed=3;shard.worker.stall:once=1";
    ropts.hedgeMs = 50;
    ropts.baseWorkerArgv = {cli, "serve-worker"};
    shard::Router router(index.chips(), ropts);

    const std::vector<serve::Advice> advices =
        router.route(stream, keys);
    ASSERT_EQ(advices.size(), stream.size());
    for (std::size_t i = 0; i < advices.size(); ++i) {
        EXPECT_FALSE(advices[i].shardDegraded) << "query " << i;
        EXPECT_TRUE(advices[i].sameAnswer(fullAdvisor.adviseResilient(
            stream[i], keys[i], policy, nullptr)))
            << "query " << i;
    }

    obs::MetricsRegistry metrics;
    router.mergeMetrics(metrics);
    EXPECT_GE(metrics.counterValue("shard.hedge.fired"), 1u);
    EXPECT_GE(metrics.counterValue("shard.hedge.stall_verdicts"), 1u);
    EXPECT_EQ(router.deadShards(), 0u);
    router.shutdown();
}
