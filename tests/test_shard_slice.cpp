/**
 * @file
 * Chip-sharded serving must not change a single answer: a
 * StrategyIndex sliced to one shard's chips answers its own chips'
 * queries bit-identically to the full index, routes unknown chips
 * through the replicated predictive pool to the same answer any
 * other shard would give, and the POD wire codec between router and
 * worker round-trips queries and advice without loss.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/serve/loadgen.hpp"
#include "graphport/shard/partition.hpp"
#include "graphport/shard/wire.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;

namespace {

const serve::StrategyIndex &
fullIndex()
{
    static const serve::StrategyIndex index = [] {
        const runner::Dataset ds =
            runner::Dataset::build(runner::smallUniverse(2));
        return serve::StrategyIndex::build(ds);
    }();
    return index;
}

} // namespace

TEST(ShardSlice, OwnedChipsAnswerBitIdenticallyToTheFullIndex)
{
    const serve::StrategyIndex &full = fullIndex();
    const serve::Advisor fullAdvisor(full);
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(full, 500, 7);
    const serve::ServePolicy policy;

    for (std::size_t shards : {2u, 3u}) {
        for (std::size_t s = 0; s < shards; ++s) {
            const std::vector<std::string> mine =
                shard::chipsOf(s, shards, full.chips());
            const serve::StrategyIndex sliced =
                full.sliceByChips(mine);
            const serve::Advisor shardAdvisor(sliced);
            for (std::size_t i = 0; i < stream.size(); ++i) {
                bool owned = false;
                for (const std::string &c : mine)
                    owned |= c == stream[i].chip;
                if (!owned)
                    continue;
                const serve::Advice a = fullAdvisor.adviseResilient(
                    stream[i], i, policy, nullptr);
                const serve::Advice b = shardAdvisor.adviseResilient(
                    stream[i], i, policy, nullptr);
                EXPECT_TRUE(a.sameAnswer(b))
                    << stream[i].app << "/" << stream[i].input
                    << "/" << stream[i].chip << " on shard " << s
                    << " of " << shards;
            }
        }
    }
}

TEST(ShardSlice, UnknownChipsTakeTheSamePredictivePathOnEveryShard)
{
    // The k-NN example pool is replicated on every slice, so a chip
    // outside the index gets the same predictive answer regardless
    // of which home shard the router hashes it to.
    const serve::StrategyIndex &full = fullIndex();
    const serve::Advisor fullAdvisor(full);
    const serve::ServePolicy policy;
    serve::Query q = serve::makeQueryStream(full, 1, 5).front();
    q.chip = "NotAChip";

    const serve::Advice reference =
        fullAdvisor.adviseResilient(q, 0, policy, nullptr);
    EXPECT_TRUE(reference.predictive);

    for (std::size_t s = 0; s < 3; ++s) {
        const serve::StrategyIndex sliced = full.sliceByChips(
            shard::chipsOf(s, 3, full.chips()));
        const serve::Advisor shardAdvisor(sliced);
        const serve::Advice a =
            shardAdvisor.adviseResilient(q, 0, policy, nullptr);
        EXPECT_TRUE(a.predictive) << "shard " << s;
        EXPECT_TRUE(a.sameAnswer(reference)) << "shard " << s;
    }
}

TEST(ShardSlice, SliceRejectsEmptyUnknownAndDuplicateChips)
{
    const serve::StrategyIndex &full = fullIndex();
    EXPECT_THROW(full.sliceByChips({}), FatalError);
    EXPECT_THROW(full.sliceByChips({"NotAChip"}),
                 FatalError);
    const std::vector<std::string> dup = {full.chips().front(),
                                          full.chips().front()};
    EXPECT_THROW(full.sliceByChips(dup), FatalError);
}

TEST(ShardWire, QueryFrameRoundTripsScatterSets)
{
    std::vector<serve::Query> queries = {
        {"bfs", "road", "P100"},
        {"sssp", "social", "MI50"},
        {"pagerank", "random", "H100"},
        {"cc", "road", "V100"},
    };
    std::vector<std::uint64_t> keys = {11, 22, 33, 44};
    const std::vector<std::size_t> scatter = {2, 0};

    const std::string payload =
        shard::packQueryFrame(77, queries, keys, scatter);
    EXPECT_EQ(shard::frameKind(payload), 'q');

    std::uint64_t frameKey = 0;
    std::vector<serve::Query> got;
    std::vector<std::uint64_t> gotKeys;
    std::string cause;
    ASSERT_TRUE(shard::unpackQueryFrame(payload, &frameKey, &got,
                                        &gotKeys, &cause))
        << cause;
    EXPECT_EQ(frameKey, 77u);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].app, "pagerank");
    EXPECT_EQ(got[0].chip, "H100");
    EXPECT_EQ(got[1].app, "bfs");
    EXPECT_EQ(gotKeys, (std::vector<std::uint64_t>{33, 11}));
}

TEST(ShardWire, AdviceRoundTripPreservesEveryComparedField)
{
    const serve::StrategyIndex &full = fullIndex();
    const serve::Advisor advisor(full);
    const serve::ServePolicy policy;
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(full, 64, 3);

    std::vector<shard::WireAdvice> wire;
    std::vector<serve::Advice> original;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        original.push_back(
            advisor.adviseResilient(stream[i], i, policy, nullptr));
        wire.push_back(shard::adviceToWire(original.back()));
    }
    const std::string payload = shard::packAdviceFrame(5, wire);
    EXPECT_EQ(shard::frameKind(payload), 'a');

    std::uint64_t frameKey = 0;
    std::vector<shard::WireAdvice> got;
    std::string cause;
    ASSERT_TRUE(
        shard::unpackAdviceFrame(payload, &frameKey, &got, &cause))
        << cause;
    EXPECT_EQ(frameKey, 5u);
    ASSERT_EQ(got.size(), original.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(
            shard::adviceFromWire(got[i]).sameAnswer(original[i]))
            << "query " << i;
    }
}

TEST(ShardWire, ShardDegradedSurvivesTheWireButNotSameAnswer)
{
    const serve::StrategyIndex &full = fullIndex();
    const serve::Advisor advisor(full);
    const serve::ServePolicy policy;
    const serve::Query q = serve::makeQueryStream(full, 1, 9).front();

    serve::Advice a = advisor.adviseResilient(q, 0, policy, nullptr);
    a.shardDegraded = true;
    const shard::WireAdvice w = shard::adviceToWire(a);
    EXPECT_EQ(w.shardDegraded, 1u);

    const serve::Advice back = shard::adviceFromWire(w);
    EXPECT_TRUE(back.shardDegraded);
    // Degradation is provenance, like featureSource: the answer a
    // live shard computes is the answer, wherever it was computed.
    serve::Advice undegraded = back;
    undegraded.shardDegraded = false;
    EXPECT_TRUE(back.sameAnswer(undegraded));
}

TEST(ShardWire, HeartbeatFramesAreTheirOwnKind)
{
    const std::string ping = shard::packHeartbeatFrame(3, 0);
    EXPECT_EQ(shard::frameKind(ping), 'h');

    std::uint64_t key = 0;
    std::uint64_t progress = 0;
    std::string cause;
    ASSERT_TRUE(
        shard::unpackHeartbeatFrame(ping, &key, &progress, &cause))
        << cause;
    EXPECT_EQ(key, 3u);
    EXPECT_EQ(progress, 0u);

    // A heartbeat must never unpack as an advice batch: the router's
    // gather loop tells pings from answers by kind, not by luck.
    std::vector<shard::WireAdvice> advices;
    EXPECT_FALSE(
        shard::unpackAdviceFrame(ping, &key, &advices, &cause));
}

TEST(ShardWire, ErrorAndShutdownFramesCarryTheirKinds)
{
    const std::string err = shard::packErrorFrame("pipe desync");
    EXPECT_EQ(shard::frameKind(err), 'e');
    EXPECT_EQ(shard::frameErrorCause(err), "pipe desync");

    const std::string bye = shard::packShutdownFrame();
    EXPECT_EQ(shard::frameKind(bye), 'x');

    std::uint64_t frameKey = 0;
    std::vector<shard::WireAdvice> advices;
    std::string cause;
    EXPECT_FALSE(
        shard::unpackAdviceFrame(err, &frameKey, &advices, &cause));
    EXPECT_FALSE(cause.empty());
}

TEST(ShardWire, TruncatedPayloadIsRejectedWithCause)
{
    std::vector<serve::Query> queries = {{"bfs", "road", "P100"}};
    std::vector<std::uint64_t> keys = {1};
    std::string payload =
        shard::packQueryFrame(9, queries, keys, {0});
    payload.resize(payload.size() - 10);

    std::uint64_t frameKey = 0;
    std::vector<serve::Query> got;
    std::vector<std::uint64_t> gotKeys;
    std::string cause;
    EXPECT_FALSE(shard::unpackQueryFrame(payload, &frameKey, &got,
                                         &gotKeys, &cause));
    EXPECT_FALSE(cause.empty());
}
