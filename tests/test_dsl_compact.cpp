/**
 * @file
 * Tests for trace compaction: signature/equality semantics, grouping
 * invariants, and the central numerical guarantee — pricing a
 * compacted trace is bit-identical to pricing the full trace for
 * every chip and configuration.
 */
#include <gtest/gtest.h>

#include "graphport/apps/app.hpp"
#include "graphport/dsl/compact.hpp"
#include "graphport/graph/generators.hpp"
#include "graphport/sim/chip.hpp"
#include "graphport/sim/costengine.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::dsl;

namespace {

KernelLaunch
sampleLaunch()
{
    KernelLaunch l;
    l.name = "expand";
    l.iteration = 3;
    l.items = 100;
    l.edges = 400;
    for (std::uint64_t d : {1, 2, 4, 4, 8})
        l.hist.add(d);
    l.contendedPushes = 40;
    l.scatteredRmw = 10;
    l.flatReads = 100;
    l.flatWrites = 50;
    l.hasNeighborLoop = true;
    return l;
}

} // namespace

TEST(LaunchSignature, IgnoresNameAndIteration)
{
    KernelLaunch a = sampleLaunch();
    KernelLaunch b = a;
    b.name = "different_kernel";
    b.iteration = 77;
    EXPECT_EQ(launchSignature(a), launchSignature(b));
    EXPECT_TRUE(sameWorkload(a, b));
}

TEST(LaunchSignature, SensitiveToEveryWorkloadField)
{
    const KernelLaunch base = sampleLaunch();
    std::vector<KernelLaunch> variants;
    auto vary = [&](auto mutate) {
        KernelLaunch l = base;
        mutate(l);
        variants.push_back(l);
    };
    vary([](KernelLaunch &l) { l.items += 1; });
    vary([](KernelLaunch &l) { l.edges += 1; });
    vary([](KernelLaunch &l) { l.hist.add(16); });
    vary([](KernelLaunch &l) { l.contendedPushes += 1; });
    vary([](KernelLaunch &l) { l.scatteredRmw += 1; });
    vary([](KernelLaunch &l) { l.flatReads += 1; });
    vary([](KernelLaunch &l) { l.flatWrites += 1; });
    vary([](KernelLaunch &l) { l.computePerItem += 0.5; });
    vary([](KernelLaunch &l) { l.computePerEdge += 0.5; });
    vary([](KernelLaunch &l) { l.hasNeighborLoop = false; });
    vary([](KernelLaunch &l) { l.randomAccess = false; });
    vary([](KernelLaunch &l) { l.hostSyncAfter = true; });
    vary([](KernelLaunch &l) { l.divergenceSpread = 2.0; });
    vary([](KernelLaunch &l) { l.gratuitousBarriers = true; });
    vary([](KernelLaunch &l) { l.barrierStride = 3; });
    for (const KernelLaunch &v : variants) {
        EXPECT_NE(launchSignature(base), launchSignature(v));
        EXPECT_FALSE(sameWorkload(base, v));
    }
}

TEST(CompactTrace, GroupsDuplicateLaunches)
{
    AppTrace trace;
    trace.app = "synthetic";
    trace.input = "none";
    trace.hostIterations = 6;
    KernelLaunch a = sampleLaunch();
    KernelLaunch b = sampleLaunch();
    b.items = 7;
    b.edges = 21;
    b.hist = DegreeHist{};
    for (int i = 0; i < 7; ++i)
        b.hist.add(3);
    // Pattern a b a b a b: two groups, multiplicity 3 each.
    for (std::uint32_t it = 0; it < 6; ++it) {
        KernelLaunch l = (it % 2 == 0) ? a : b;
        l.iteration = it;
        trace.launches.push_back(l);
    }
    const CompactTrace ct = compactTrace(trace);
    ct.validate();
    EXPECT_EQ(ct.launchCount(), 6u);
    EXPECT_EQ(ct.uniqueCount(), 2u);
    EXPECT_EQ(ct.multiplicity[0], 3u);
    EXPECT_EQ(ct.multiplicity[1], 3u);
    EXPECT_DOUBLE_EQ(ct.compactionRatio(), 3.0);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(ct.groupOf[i], i % 2);
}

TEST(CompactTrace, EmptyTrace)
{
    AppTrace trace;
    const CompactTrace ct = compactTrace(trace);
    ct.validate();
    EXPECT_EQ(ct.uniqueCount(), 0u);
    EXPECT_DOUBLE_EQ(ct.compactionRatio(), 1.0);
}

TEST(CompactTrace, FixpointAppsCompact)
{
    // Fixpoint apps that sweep the whole graph every iteration
    // (pr-topo) relaunch a workload-identical kernel until
    // convergence; compaction must collapse those repeats.  Frontier
    // apps (bfs-wl) see a different frontier each level, so their
    // traces stay mostly unique — compaction must not invent
    // duplication there.
    const graph::Csr g =
        graph::gen::roadGrid(24, 24, 0.01, 11, "road");

    const auto [prOut, prTrace] =
        apps::runApp(apps::appByName("pr-topo"), g, "road");
    (void)prOut;
    const CompactTrace pr = compactTrace(prTrace);
    pr.validate();
    EXPECT_GT(pr.launchCount(), 2u);
    EXPECT_LT(pr.uniqueCount(), pr.launchCount());
    EXPECT_GT(pr.compactionRatio(), 1.2);

    const auto [bfsOut, bfsTrace] =
        apps::runApp(apps::appByName("bfs-wl"), g, "road");
    (void)bfsOut;
    const CompactTrace bfs = compactTrace(bfsTrace);
    bfs.validate();
    EXPECT_GT(bfs.launchCount(), 0u);
    EXPECT_GE(bfs.launchCount(), bfs.uniqueCount());
}

TEST(CompactTrace, CompactedCostBitIdenticalToFull)
{
    // The load-bearing invariant of the sweep engine: for every app,
    // chip and configuration, pricing the compacted trace replays the
    // exact floating-point sum of the full trace.
    const graph::Csr road =
        graph::gen::roadGrid(16, 16, 0.01, 11, "road");
    const graph::Csr social = graph::gen::rmat(8, 8.0, 12, "social");
    for (const std::string app :
         {"bfs-wl", "sssp-wl", "pr-topo", "cc-sv", "mis-luby"}) {
        for (const graph::Csr *g : {&road, &social}) {
            const auto [output, trace] =
                apps::runApp(apps::appByName(app), *g, g->name());
            (void)output;
            const CompactTrace ct = compactTrace(trace);
            ct.validate();
            for (const sim::ChipModel &chip : sim::allChips()) {
                for (unsigned cfgId : {0u, 1u, 17u, 42u, 95u}) {
                    const OptConfig cfg = OptConfig::decode(cfgId);
                    const sim::CostEngine engine(chip, cfg);
                    const sim::AppCost full = engine.appCost(trace);
                    const sim::AppCost compact = engine.appCost(ct);
                    ASSERT_EQ(full.kernelNs, compact.kernelNs)
                        << app << "/" << g->name() << "/"
                        << chip.shortName << "/cfg" << cfgId;
                    ASSERT_EQ(full.overheadNs, compact.overheadNs);
                    ASSERT_EQ(full.totalNs, compact.totalNs);
                    ASSERT_EQ(full.launches, compact.launches);
                }
            }
        }
    }
}

TEST(DegreeHist, ExpectedMaxMemoSurvivesCopy)
{
    DegreeHist h;
    for (std::uint64_t d : {1, 2, 4, 8, 16, 32})
        h.add(d);
    const double m32 = h.expectedMaxOf(32);
    DegreeHist copy = h;
    EXPECT_EQ(copy.expectedMaxOf(32), m32);
    DegreeHist assigned;
    assigned = h;
    EXPECT_EQ(assigned.expectedMaxOf(32), m32);
    // Mutation after copying must not leak stale memo entries.
    copy.add(1024);
    EXPECT_NE(copy.expectedMaxOf(32), m32);
    EXPECT_EQ(h.expectedMaxOf(32), m32);
}
