/**
 * @file
 * Tests for the Section VIII microbenchmarks: the Table X and
 * Figure 5 shapes must hold.
 */
#include <gtest/gtest.h>

#include <map>

#include "graphport/micro/micro.hpp"

using namespace graphport;
using namespace graphport::sim;

TEST(SgCmb, LargeOnlyWhereDriverDoesNotCombine)
{
    // Paper Table X: R9 22.31x, IRIS ~8x, Nvidia/HD5500 ~0.88x,
    // MALI ~1x.
    const double r9 = micro::sgCmbSpeedup(chipByName("R9"));
    const double iris = micro::sgCmbSpeedup(chipByName("IRIS"));
    EXPECT_GT(r9, 10.0);
    EXPECT_GT(iris, 3.0);
    EXPECT_GT(r9, iris); // bounded by subgroup size: 64 vs 16
    for (const char *name : {"M4000", "GTX1080", "HD5500", "MALI"}) {
        const double s = micro::sgCmbSpeedup(chipByName(name));
        EXPECT_LT(s, 1.1) << name;
        EXPECT_GT(s, 0.7) << name;
    }
}

TEST(SgCmb, SpeedupBoundedBySubgroupSize)
{
    for (const ChipModel &chip : allChips()) {
        EXPECT_LE(micro::sgCmbSpeedup(chip),
                  static_cast<double>(chip.subgroupSize) + 1.0)
            << chip.shortName;
    }
}

TEST(SgCmb, ScalesWithProblemSize)
{
    // The speedup is roughly size-independent (both sides scale).
    const ChipModel &r9 = chipByName("R9");
    const double small = micro::sgCmbSpeedup(r9, 5000);
    const double large = micro::sgCmbSpeedup(r9, 40000);
    EXPECT_NEAR(small / large, 1.0, 0.5);
}

TEST(MDivg, MaliIsTheOutlier)
{
    // Paper Table X: MALI 6.45x, all other chips ~1.0-1.5x.
    const double mali = micro::mDivgSpeedup(chipByName("MALI"));
    EXPECT_GT(mali, 4.0);
    EXPECT_LT(mali, 9.0);
    for (const ChipModel &chip : allChips()) {
        if (chip.shortName == "MALI")
            continue;
        const double s = micro::mDivgSpeedup(chip);
        EXPECT_GT(s, 0.95) << chip.shortName;
        EXPECT_LT(s, 2.5) << chip.shortName;
        EXPECT_GT(mali, 2.0 * s) << chip.shortName;
    }
}

TEST(LaunchSweep, UtilisationIsMonotoneInKernelTime)
{
    for (const ChipModel &chip : allChips()) {
        const auto points = micro::launchOverheadSweep(
            chip, {1e3, 1e4, 1e5, 1e6});
        for (std::size_t i = 1; i < points.size(); ++i)
            EXPECT_GT(points[i].utilisation,
                      points[i - 1].utilisation)
                << chip.shortName;
        for (const auto &p : points) {
            EXPECT_GT(p.utilisation, 0.0);
            EXPECT_LT(p.utilisation, 1.0);
        }
    }
}

TEST(LaunchSweep, NvidiaHasHighestUtilisation)
{
    // The Figure 5 ordering at a fixed 20us kernel.
    std::map<std::string, double> util;
    for (const ChipModel &chip : allChips()) {
        util[chip.shortName] =
            micro::launchOverheadSweep(chip, {20e3})[0].utilisation;
    }
    for (const auto &[name, u] : util) {
        if (name == "M4000" || name == "GTX1080")
            continue;
        EXPECT_LT(u, util["M4000"]) << name;
        EXPECT_LT(u, util["GTX1080"]) << name;
    }
    // MALI is the lowest.
    for (const auto &[name, u] : util) {
        if (name != "MALI") {
            EXPECT_GT(u, util["MALI"]) << name;
        }
    }
}

TEST(LaunchSweep, LaunchCountCancelsOut)
{
    const ChipModel &chip = chipByName("IRIS");
    const auto a = micro::launchOverheadSweep(chip, {5e4}, 100);
    const auto b = micro::launchOverheadSweep(chip, {5e4}, 10000);
    EXPECT_DOUBLE_EQ(a[0].utilisation, b[0].utilisation);
}

TEST(PullVsPush, DenseFrontiersFavourPull)
{
    // Pull removes the contended atomic pushes, so it must win when
    // (almost) every node is on the frontier.
    for (const ChipModel &chip : allChips())
        EXPECT_GT(micro::pullVsPushSpeedup(chip, 1.0), 1.0)
            << chip.shortName;
}

TEST(PullVsPush, SparseFrontierWinnerIsChipSpecific)
{
    // At a 1% frontier pull still scans every node while push touches
    // 1% of the work — push wins on the chips whose drivers combine
    // contended atomics cheaply (the sg-cmb ~1x rows of Table X).
    for (const char *name : {"M4000", "GTX1080", "HD5500", "MALI"})
        EXPECT_LT(micro::pullVsPushSpeedup(chipByName(name), 0.01),
                  1.0)
            << name;
    // The atomic-hobbled chips prefer pull at every density: the
    // overscan check never costs what the serialised atomics did.
    for (const char *name : {"R9", "IRIS"})
        EXPECT_GT(micro::pullVsPushSpeedup(chipByName(name), 0.01),
                  1.0)
            << name;
}

TEST(PullVsPush, MonotoneInFrontierDensity)
{
    // Denser frontiers only ever help pull, on every chip; on the
    // push-friendly chips the curve crosses 1 exactly once.
    for (const ChipModel &chip : allChips()) {
        double prev = micro::pullVsPushSpeedup(chip, 0.01);
        unsigned crossings = prev > 1.0 ? 1 : 0;
        for (double frac : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
            const double s = micro::pullVsPushSpeedup(chip, frac);
            EXPECT_GE(s, prev) << chip.shortName << " @" << frac;
            if (prev <= 1.0 && s > 1.0)
                ++crossings;
            prev = s;
        }
        EXPECT_EQ(crossings, 1u) << chip.shortName;
    }
}

TEST(Fusion, TinyKernelsWinWhereBarrierUndercutsLaunch)
{
    // Launch-bound fixpoint: a follower trades kernelLaunchNs for a
    // global-barrier episode, so the model itself names the winners.
    for (const ChipModel &chip : allChips()) {
        const bool barrierCheaper =
            chip.globalBarrierCostNs(128) < chip.kernelLaunchNs;
        const double s = micro::fusionSpeedup(chip, 4, 500.0);
        if (barrierCheaper)
            EXPECT_GT(s, 1.0) << chip.shortName;
        else
            EXPECT_LT(s, 1.0) << chip.shortName;
    }
}

TEST(Fusion, LongKernelsLoseEverywhere)
{
    // Compute-bound fixpoint: the occupancy penalty on 2ms kernels
    // dwarfs any launch saving on every chip.
    for (const ChipModel &chip : allChips()) {
        for (unsigned fuse : {2u, 4u})
            EXPECT_LT(micro::fusionSpeedup(chip, fuse, 2e6), 1.0)
                << chip.shortName << " fuse=" << fuse;
    }
}

TEST(Fusion, DeeperFusionAmplifiesTheTrade)
{
    // fuse=4 elides more launches than fuse=2, so it amplifies
    // whichever way the barrier/launch trade goes.
    for (const ChipModel &chip : allChips()) {
        const double f2 = micro::fusionSpeedup(chip, 2, 500.0);
        const double f4 = micro::fusionSpeedup(chip, 4, 500.0);
        if (chip.globalBarrierCostNs(128) < chip.kernelLaunchNs)
            EXPECT_GT(f4, f2) << chip.shortName;
        else
            EXPECT_LT(f4, f2) << chip.shortName;
    }
}
