/**
 * @file
 * Tests for the Section VIII microbenchmarks: the Table X and
 * Figure 5 shapes must hold.
 */
#include <gtest/gtest.h>

#include <map>

#include "graphport/micro/micro.hpp"

using namespace graphport;
using namespace graphport::sim;

TEST(SgCmb, LargeOnlyWhereDriverDoesNotCombine)
{
    // Paper Table X: R9 22.31x, IRIS ~8x, Nvidia/HD5500 ~0.88x,
    // MALI ~1x.
    const double r9 = micro::sgCmbSpeedup(chipByName("R9"));
    const double iris = micro::sgCmbSpeedup(chipByName("IRIS"));
    EXPECT_GT(r9, 10.0);
    EXPECT_GT(iris, 3.0);
    EXPECT_GT(r9, iris); // bounded by subgroup size: 64 vs 16
    for (const char *name : {"M4000", "GTX1080", "HD5500", "MALI"}) {
        const double s = micro::sgCmbSpeedup(chipByName(name));
        EXPECT_LT(s, 1.1) << name;
        EXPECT_GT(s, 0.7) << name;
    }
}

TEST(SgCmb, SpeedupBoundedBySubgroupSize)
{
    for (const ChipModel &chip : allChips()) {
        EXPECT_LE(micro::sgCmbSpeedup(chip),
                  static_cast<double>(chip.subgroupSize) + 1.0)
            << chip.shortName;
    }
}

TEST(SgCmb, ScalesWithProblemSize)
{
    // The speedup is roughly size-independent (both sides scale).
    const ChipModel &r9 = chipByName("R9");
    const double small = micro::sgCmbSpeedup(r9, 5000);
    const double large = micro::sgCmbSpeedup(r9, 40000);
    EXPECT_NEAR(small / large, 1.0, 0.5);
}

TEST(MDivg, MaliIsTheOutlier)
{
    // Paper Table X: MALI 6.45x, all other chips ~1.0-1.5x.
    const double mali = micro::mDivgSpeedup(chipByName("MALI"));
    EXPECT_GT(mali, 4.0);
    EXPECT_LT(mali, 9.0);
    for (const ChipModel &chip : allChips()) {
        if (chip.shortName == "MALI")
            continue;
        const double s = micro::mDivgSpeedup(chip);
        EXPECT_GT(s, 0.95) << chip.shortName;
        EXPECT_LT(s, 2.5) << chip.shortName;
        EXPECT_GT(mali, 2.0 * s) << chip.shortName;
    }
}

TEST(LaunchSweep, UtilisationIsMonotoneInKernelTime)
{
    for (const ChipModel &chip : allChips()) {
        const auto points = micro::launchOverheadSweep(
            chip, {1e3, 1e4, 1e5, 1e6});
        for (std::size_t i = 1; i < points.size(); ++i)
            EXPECT_GT(points[i].utilisation,
                      points[i - 1].utilisation)
                << chip.shortName;
        for (const auto &p : points) {
            EXPECT_GT(p.utilisation, 0.0);
            EXPECT_LT(p.utilisation, 1.0);
        }
    }
}

TEST(LaunchSweep, NvidiaHasHighestUtilisation)
{
    // The Figure 5 ordering at a fixed 20us kernel.
    std::map<std::string, double> util;
    for (const ChipModel &chip : allChips()) {
        util[chip.shortName] =
            micro::launchOverheadSweep(chip, {20e3})[0].utilisation;
    }
    for (const auto &[name, u] : util) {
        if (name == "M4000" || name == "GTX1080")
            continue;
        EXPECT_LT(u, util["M4000"]) << name;
        EXPECT_LT(u, util["GTX1080"]) << name;
    }
    // MALI is the lowest.
    for (const auto &[name, u] : util) {
        if (name != "MALI") {
            EXPECT_GT(u, util["MALI"]) << name;
        }
    }
}

TEST(LaunchSweep, LaunchCountCancelsOut)
{
    const ChipModel &chip = chipByName("IRIS");
    const auto a = micro::launchOverheadSweep(chip, {5e4}, 100);
    const auto b = micro::launchOverheadSweep(chip, {5e4}, 10000);
    EXPECT_DOUBLE_EQ(a[0].utilisation, b[0].utilisation);
}
