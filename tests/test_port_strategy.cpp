/**
 * @file
 * Tests for the specialisation lattice and strategy construction.
 */
#include <gtest/gtest.h>

#include <set>

#include "graphport/port/strategy.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

TEST(Specialisation, LatticeHasEightElements)
{
    const auto &lattice = Specialisation::lattice();
    EXPECT_EQ(lattice.size(), 8u);
    std::set<std::string> names;
    for (const Specialisation &s : lattice)
        names.insert(s.name());
    EXPECT_EQ(names.size(), 8u);
    EXPECT_TRUE(names.count("global"));
    EXPECT_TRUE(names.count("chip"));
    EXPECT_TRUE(names.count("app_input"));
    EXPECT_TRUE(names.count("chip_app_input"));
}

TEST(Specialisation, DegreeCounts)
{
    EXPECT_EQ((Specialisation{false, false, false}).degree(), 0u);
    EXPECT_EQ((Specialisation{true, false, true}).degree(), 2u);
    EXPECT_EQ((Specialisation{true, true, true}).degree(), 3u);
}

TEST(Strategy, BaselineMapsEverythingToEmptyConfig)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeBaseline(ds);
    EXPECT_EQ(s.name, "baseline");
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t),
                  dsl::OptConfig::baseline().encode());
}

TEST(Strategy, OracleMapsToBestConfig)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeOracle(ds);
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t), ds.bestConfig(t));
}

TEST(Strategy, ConstantStrategy)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeConstant(ds, 17, "seventeen");
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t), 17u);
    EXPECT_THROW(makeConstant(ds, 96, "bad"), PanicError);
}

TEST(Strategy, ConfigForOutOfRangePanics)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeBaseline(ds);
    EXPECT_THROW(s.configFor(ds.numTests()), PanicError);
}

TEST(Strategy, GlobalHasOnePartition)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeSpecialised(
        ds, Specialisation{false, false, false});
    EXPECT_EQ(s.partitions.size(), 1u);
    // Every test maps to the same configuration.
    const unsigned cfg = s.configFor(0);
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t), cfg);
}

TEST(Strategy, ChipSpecialisationPartitionsByChip)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const Strategy s =
        makeSpecialised(ds, Specialisation{false, false, true});
    EXPECT_EQ(s.partitions.size(), ds.universe().chips.size());
    // All tests of one chip share a configuration.
    for (const std::string &chip : ds.universe().chips) {
        const auto tests = ds.testsWhere("", "", chip);
        const unsigned cfg = s.configFor(tests.front());
        for (std::size_t t : tests)
            EXPECT_EQ(s.configFor(t), cfg) << chip;
    }
}

TEST(Strategy, FullSpecialisationPartitionsPerTest)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s =
        makeSpecialised(ds, Specialisation{true, true, true});
    EXPECT_EQ(s.partitions.size(), ds.numTests());
}

TEST(Strategy, AllStrategiesOrderedByName)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto strategies = allStrategies(ds);
    ASSERT_EQ(strategies.size(), 10u);
    EXPECT_EQ(strategies.front().name, "baseline");
    EXPECT_EQ(strategies[1].name, "global");
    EXPECT_EQ(strategies.back().name, "oracle");
    for (const Strategy &s : strategies)
        EXPECT_EQ(s.configPerTest.size(), ds.numTests());
}

TEST(Strategy, AppInputIgnoresChip)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const Strategy s =
        makeSpecialised(ds, Specialisation{true, true, false});
    // Same (app, input) on different chips -> same configuration.
    for (const std::string &app : ds.universe().apps) {
        for (const auto &input : ds.universe().inputs) {
            std::set<unsigned> cfgs;
            for (const std::string &chip : ds.universe().chips) {
                cfgs.insert(s.configFor(
                    ds.testIndex(app, input.name, chip)));
            }
            EXPECT_EQ(cfgs.size(), 1u) << app << "/" << input.name;
        }
    }
}
