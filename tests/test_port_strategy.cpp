/**
 * @file
 * Tests for the specialisation lattice and strategy construction.
 */
#include <gtest/gtest.h>

#include <set>

#include "graphport/port/strategy.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

TEST(Specialisation, LatticeHasEightElements)
{
    const auto &lattice = Specialisation::lattice();
    EXPECT_EQ(lattice.size(), 8u);
    std::set<std::string> names;
    for (const Specialisation &s : lattice)
        names.insert(s.name());
    EXPECT_EQ(names.size(), 8u);
    EXPECT_TRUE(names.count("global"));
    EXPECT_TRUE(names.count("chip"));
    EXPECT_TRUE(names.count("app_input"));
    EXPECT_TRUE(names.count("chip_app_input"));
}

TEST(Specialisation, DegreeCounts)
{
    EXPECT_EQ((Specialisation{false, false, false}).degree(), 0u);
    EXPECT_EQ((Specialisation{true, false, true}).degree(), 2u);
    EXPECT_EQ((Specialisation{true, true, true}).degree(), 3u);
}

TEST(Strategy, BaselineMapsEverythingToEmptyConfig)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeBaseline(ds);
    EXPECT_EQ(s.name, "baseline");
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t),
                  dsl::OptConfig::baseline().encode());
}

TEST(Strategy, OracleMapsToBestConfig)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeOracle(ds);
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t), ds.bestConfig(t));
}

TEST(Strategy, ConstantStrategy)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeConstant(ds, 17, "seventeen");
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t), 17u);
    EXPECT_THROW(makeConstant(ds, 96, "bad"), PanicError);
}

TEST(Strategy, ConfigForOutOfRangePanics)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeBaseline(ds);
    EXPECT_THROW(s.configFor(ds.numTests()), PanicError);
}

TEST(Strategy, GlobalHasOnePartition)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s = makeSpecialised(
        ds, Specialisation{false, false, false});
    EXPECT_EQ(s.partitions.size(), 1u);
    // Every test maps to the same configuration.
    const unsigned cfg = s.configFor(0);
    for (std::size_t t = 0; t < ds.numTests(); ++t)
        EXPECT_EQ(s.configFor(t), cfg);
}

TEST(Strategy, ChipSpecialisationPartitionsByChip)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const Strategy s =
        makeSpecialised(ds, Specialisation{false, false, true});
    EXPECT_EQ(s.partitions.size(), ds.universe().chips.size());
    // All tests of one chip share a configuration.
    for (const std::string &chip : ds.universe().chips) {
        const auto tests = ds.testsWhere("", "", chip);
        const unsigned cfg = s.configFor(tests.front());
        for (std::size_t t : tests)
            EXPECT_EQ(s.configFor(t), cfg) << chip;
    }
}

TEST(Strategy, FullSpecialisationPartitionsPerTest)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Strategy s =
        makeSpecialised(ds, Specialisation{true, true, true});
    EXPECT_EQ(s.partitions.size(), ds.numTests());
}

TEST(Strategy, AllStrategiesOrderedByName)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto strategies = allStrategies(ds);
    ASSERT_EQ(strategies.size(), 10u);
    EXPECT_EQ(strategies.front().name, "baseline");
    EXPECT_EQ(strategies[1].name, "global");
    EXPECT_EQ(strategies.back().name, "oracle");
    for (const Strategy &s : strategies)
        EXPECT_EQ(s.configPerTest.size(), ds.numTests());
}

TEST(Strategy, AppInputIgnoresChip)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const Strategy s =
        makeSpecialised(ds, Specialisation{true, true, false});
    // Same (app, input) on different chips -> same configuration.
    for (const std::string &app : ds.universe().apps) {
        for (const auto &input : ds.universe().inputs) {
            std::set<unsigned> cfgs;
            for (const std::string &chip : ds.universe().chips) {
                cfgs.insert(s.configFor(
                    ds.testIndex(app, input.name, chip)));
            }
            EXPECT_EQ(cfgs.size(), 1u) << app << "/" << input.name;
        }
    }
}

TEST(PartitionKey, ProjectsOnlySpecialisedDimensions)
{
    const runner::Test test{"bfs-wl", "road", "M4000"};
    EXPECT_EQ(partitionKey({false, false, false}, test), "");
    EXPECT_EQ(partitionKey({true, false, false}, test), "bfs-wl|");
    EXPECT_EQ(partitionKey({false, true, false}, test), "road|");
    EXPECT_EQ(partitionKey({false, false, true}, test), "M4000|");
    EXPECT_EQ(partitionKey({true, false, true}, test),
              "bfs-wl|M4000|");
    EXPECT_EQ(partitionKey({true, true, true}, test),
              "bfs-wl|road|M4000|");
}

TEST(StrategyTable, TabulationAgreesWithTheStrategy)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation spec{true, false, true};
    const Strategy s = makeSpecialised(ds, spec);
    const StrategyTable table = tabulateStrategy(ds, s, spec);

    EXPECT_EQ(table.name, s.name);
    EXPECT_GE(table.geomeanVsOracle, 1.0);
    // apps x chips partitions, each agreeing with the strategy's
    // per-test assignment.
    EXPECT_EQ(table.configByPartition.size(),
              ds.universe().apps.size() *
                  ds.universe().chips.size());
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const std::string key = partitionKey(spec, ds.testAt(t));
        const unsigned *cfg = table.configFor(key);
        ASSERT_NE(cfg, nullptr) << key;
        EXPECT_EQ(*cfg, s.configFor(t)) << key;
    }
    // Every partition has a quality estimate and it is >= 1.
    for (const auto &[key, slowdown] : table.slowdownByPartition) {
        EXPECT_TRUE(table.configByPartition.count(key)) << key;
        EXPECT_GE(slowdown, 1.0) << key;
    }
    EXPECT_EQ(table.slowdownByPartition.size(),
              table.configByPartition.size());
}

TEST(StrategyTable, ConfigForMissesReturnNull)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation spec{false, false, true};
    const StrategyTable table =
        tabulateStrategy(ds, makeSpecialised(ds, spec), spec);
    EXPECT_EQ(table.configFor("no-such-chip|"), nullptr);
    EXPECT_NE(table.configFor("M4000|"), nullptr);
}

TEST(StrategyTable, OracleTabulatesOnePartitionPerTest)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation all{true, true, true};
    const StrategyTable table =
        tabulateStrategy(ds, makeOracle(ds), all);
    EXPECT_EQ(table.configByPartition.size(), ds.numTests());
    // The oracle never loses to itself.
    EXPECT_DOUBLE_EQ(table.geomeanVsOracle, 1.0);
}
