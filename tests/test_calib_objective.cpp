/**
 * @file
 * calib::Objective: the §13 fingerprint targets as a loss function.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graphport/calib/objective.hpp"
#include "graphport/calib/params.hpp"
#include "graphport/micro/micro.hpp"
#include "graphport/sim/chip.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;

TEST(CalibParams, RegistryShapeAndBounds)
{
    const std::vector<calib::ParamSpec> &specs = calib::freeParams();
    ASSERT_GE(specs.size(), 5u);
    EXPECT_EQ(specs.size(), calib::numFreeParams());
    for (const calib::ParamSpec &p : specs) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_LT(p.lo, p.hi);
        EXPECT_GT(p.lo, 0.0);
    }
    EXPECT_EQ(calib::paramByName("contendedRmwNs").name,
              "contendedRmwNs");
    EXPECT_THROW(calib::paramByName("nope"), FatalError);
}

TEST(CalibParams, EveryPaperChipSitsInsideTheBox)
{
    for (const sim::ChipModel &c : sim::allChips())
        EXPECT_TRUE(calib::insideBounds(calib::paramsOf(c)))
            << c.shortName;
}

TEST(CalibParams, WithParamsRoundTrips)
{
    const sim::ChipModel &chip = sim::chipByName("GTX1080");
    const std::vector<double> x = calib::paramsOf(chip);
    const sim::ChipModel same = calib::withParams(chip, x);
    EXPECT_EQ(calib::paramsOf(same), x);

    std::vector<double> moved = x;
    moved[0] *= 2.0;
    const sim::ChipModel changed = calib::withParams(chip, moved);
    EXPECT_EQ(changed.contendedRmwNs, x[0] * 2.0);
    // Frozen parameters are untouched.
    EXPECT_EQ(changed.randomEdgeNs, chip.randomEdgeNs);
    EXPECT_EQ(changed.subgroupSize, chip.subgroupSize);
}

TEST(CalibParams, ClampHandlesNanAndOutOfBox)
{
    std::vector<double> x(calib::numFreeParams(), 1.0e99);
    x[1] = std::numeric_limits<double>::quiet_NaN();
    x[2] = -5.0;
    calib::clampToBounds(x);
    EXPECT_TRUE(calib::insideBounds(x));
    const std::vector<calib::ParamSpec> &specs = calib::freeParams();
    EXPECT_EQ(x[0], specs[0].hi);
    EXPECT_EQ(x[1], specs[1].lo); // NaN lands on the lower bound
    EXPECT_EQ(x[2], specs[2].lo);
}

TEST(CalibParams, FitScaleRoundTripsBitExactlyOnBounds)
{
    const std::vector<calib::ParamSpec> &specs = calib::freeParams();
    for (const sim::ChipModel &c : sim::allChips()) {
        const std::vector<double> x = calib::paramsOf(c);
        const std::vector<double> back =
            calib::fromFitScale(calib::toFitScale(x));
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_NEAR(back[i], x[i], 1e-9 * x[i])
                << c.shortName << " " << specs[i].name;
    }
}

TEST(CalibObjective, AllPaperChipsWithinTolerance)
{
    for (const sim::ChipModel &c : sim::allChips()) {
        const calib::Objective objective(c);
        EXPECT_TRUE(objective.withinTolerance(c)) << c.shortName;
        EXPECT_LT(objective.lossOf(c), 1.0) << c.shortName;
    }
}

TEST(CalibObjective, FingerprintsMatchTheDesignTable)
{
    // The §13 model column, re-measured through the micro harness.
    const calib::FingerprintSet r9 =
        calib::measureFingerprints(sim::chipByName("R9"));
    EXPECT_NEAR(r9.sgCmb, 25.2, 0.5);
    const calib::FingerprintSet mali =
        calib::measureFingerprints(sim::chipByName("MALI"));
    EXPECT_NEAR(mali.mDivg, 6.21, 0.3);
    EXPECT_LT(mali.util10us, 0.1);
    const calib::FingerprintSet m4000 =
        calib::measureFingerprints(sim::chipByName("M4000"));
    EXPECT_NEAR(m4000.sgCmb, 0.89, 0.05);
    EXPECT_GT(m4000.util10us, 0.5);
}

TEST(CalibObjective, LossIsDeterministic)
{
    const calib::Objective objective(sim::chipByName("IRIS"));
    const std::vector<double> x =
        calib::paramsOf(sim::chipByName("IRIS"));
    const double a = objective.loss(x);
    const double b = objective.loss(x);
    EXPECT_EQ(a, b); // bit-identical, not just close
}

TEST(CalibObjective, OutOfBoundsCandidateGetsThePenalty)
{
    const calib::Objective objective(sim::chipByName("R9"));
    std::vector<double> x = calib::paramsOf(sim::chipByName("R9"));
    x[0] = calib::freeParams()[0].hi * 10.0;
    EXPECT_EQ(objective.loss(x), calib::Objective::kInvalidPenalty);
    x[0] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(objective.loss(x), calib::Objective::kInvalidPenalty);
}

TEST(CalibObjective, LossIsBoundedAcrossTheWholeBox)
{
    const calib::Objective objective(sim::chipByName("MALI"));
    const std::vector<calib::ParamSpec> &specs = calib::freeParams();
    // Both extreme corners of the box: pathological but bounded.
    std::vector<double> lo, hi;
    for (const calib::ParamSpec &p : specs) {
        lo.push_back(p.lo);
        hi.push_back(p.hi);
    }
    for (const std::vector<double> &corner : {lo, hi}) {
        const double loss = objective.loss(corner);
        EXPECT_TRUE(std::isfinite(loss));
        EXPECT_LE(loss, calib::Objective::kInvalidPenalty);
        EXPECT_GE(loss, 0.0);
    }
}

TEST(CalibObjective, ValidatesTheBaseChip)
{
    sim::ChipModel broken = sim::chipByName("R9");
    broken.lanesPerCu = 0;
    EXPECT_THROW(calib::Objective{broken}, PanicError);
}

TEST(CalibObjective, TargetsExistForExactlyThePaperChips)
{
    EXPECT_EQ(calib::designTargets().size(),
              sim::allChipNames().size());
    for (const std::string &name : sim::allChipNames())
        EXPECT_EQ(calib::targetsFor(name).chip, name);
    EXPECT_THROW(calib::targetsFor("TPUv9"), FatalError);
}

TEST(CalibObjective, IdentityHashSeparatesChipsAndIsStable)
{
    const calib::Objective r9(sim::chipByName("R9"));
    const calib::Objective mali(sim::chipByName("MALI"));
    EXPECT_EQ(r9.identityHash(),
              calib::Objective(sim::chipByName("R9")).identityHash());
    EXPECT_NE(r9.identityHash(), mali.identityHash());

    // Moving a frozen base parameter moves the hash too.
    sim::ChipModel tweaked = sim::chipByName("R9");
    tweaked.randomEdgeNs *= 1.01;
    EXPECT_NE(calib::Objective(tweaked).identityHash(),
              r9.identityHash());
}

TEST(CalibObjective, UtilisationOrderingHoldsForTheRoster)
{
    EXPECT_TRUE(calib::checkUtilisationOrdering(sim::allChips()));
}

TEST(CalibObjective, UtilisationOrderingDetectsAViolation)
{
    std::vector<sim::ChipModel> chips = sim::allChips();
    for (sim::ChipModel &c : chips) {
        // Give MALI Nvidia-class launch overheads: the Fig. 5
        // ordering (mid tier above MALI) must now fail.
        if (c.shortName == "MALI") {
            c.kernelLaunchNs = 4000.0;
            c.hostMemcpyNs = 2500.0;
        }
    }
    EXPECT_FALSE(calib::checkUtilisationOrdering(chips));
}
