/**
 * @file
 * Tests for the 95%-CI significance predicate (Algorithm 1's
 * SIGNIFICANT).
 */
#include <gtest/gtest.h>

#include "graphport/stats/significance.hpp"

using namespace graphport::stats;

namespace {

/** Disambiguate the braced-init overload for the vector form. */
bool
sig(std::vector<double> a, std::vector<double> b)
{
    return significantDifference(a, b);
}

} // namespace

TEST(Summarise, Basics)
{
    const SampleSummary s = summarise({1.0, 2.0, 3.0});
    EXPECT_EQ(s.n, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.median, 2.0);
    EXPECT_GT(s.ciHalf, 0.0);
}

TEST(Summarise, EmptySample)
{
    const SampleSummary s = summarise({});
    EXPECT_EQ(s.n, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Significant, FarApartTightSamples)
{
    EXPECT_TRUE(sig({1.0, 1.01, 0.99}, {2.0, 2.01, 1.99}));
}

TEST(Significant, OverlappingSamples)
{
    EXPECT_FALSE(sig({1.0, 2.0, 3.0}, {1.5, 2.5, 3.5}));
}

TEST(Significant, IdenticalSamples)
{
    EXPECT_FALSE(sig({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}));
}

TEST(Significant, EmptySampleNeverSignificant)
{
    EXPECT_FALSE(sig({}, {1.0, 2.0}));
    EXPECT_FALSE(sig({1.0, 2.0}, {}));
}

TEST(Significant, SymmetricInArguments)
{
    const std::vector<double> a{1.0, 1.1, 0.9};
    const std::vector<double> b{5.0, 5.1, 4.9};
    EXPECT_EQ(significantDifference(a, b),
              significantDifference(b, a));
}

TEST(Significant, SingleSamplesActAsPoints)
{
    // n = 1 gives zero-width CIs: different points are significant.
    EXPECT_TRUE(sig({1.0}, {2.0}));
    EXPECT_FALSE(sig({1.0}, {1.0}));
}

TEST(Significant, NoiseScaleMatters)
{
    // Same means, wider noise -> not significant.
    EXPECT_FALSE(sig({1.0, 3.0, 2.0}, {2.5, 4.5, 3.5}));
    // Same gap, tiny noise -> significant.
    EXPECT_TRUE(sig({2.0, 2.01, 1.99}, {3.5, 3.51, 3.49}));
}

/**
 * Parameterized: two three-run samples whose relative gap varies;
 * the predicate must flip from insignificant to significant as the
 * gap grows past the CI width.
 */
class GapTest : public ::testing::TestWithParam<double>
{};

TEST_P(GapTest, MonotoneInGap)
{
    const double gap = GetParam();
    const std::vector<double> a{1.00, 1.02, 0.98};
    const std::vector<double> b{1.00 + gap, 1.02 + gap, 0.98 + gap};
    const bool sig = significantDifference(a, b);
    // CI half width here is ~0.0497; gaps beyond ~0.1 must be
    // significant, gaps below ~0.09 must not.
    if (gap > 0.11) {
        EXPECT_TRUE(sig) << "gap " << gap;
    }
    if (gap < 0.09) {
        EXPECT_FALSE(sig) << "gap " << gap;
    }
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapTest,
                         ::testing::Values(0.0, 0.02, 0.05, 0.08,
                                           0.12, 0.2, 0.5, 1.0));
