/**
 * @file
 * Snapshot fuzz suite: seeded random truncations, bit flips and
 * garbage headers over every persisted artefact format — the index
 * snapshot (.gpi), the calibration roster (.gpc) and the dataset
 * cache CSV. The robustness bar: every corruption is rejected with a
 * cause-labelled FatalError; no mutation may crash the loader with a
 * foreign exception, and none may be silently accepted.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "graphport/calib/fitter.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/sim/chip.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/rng.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

/** Deterministic fuzz stream (no std::random machinery). */
class FuzzRng
{
  public:
    explicit FuzzRng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        return splitmix64(state_);
    }

    /** Uniform in [0, n). */
    std::size_t below(std::size_t n) { return next() % n; }

  private:
    std::uint64_t state_;
};

/** A loader under test: parses @p text or throws FatalError. */
using Loader = std::function<void(const std::string &text)>;

/**
 * Drive one loader through the three corruption families. Every
 * mutated text must raise FatalError with a non-empty message; an
 * uncaught foreign exception fails the NeverCrashes bar and a clean
 * return is a silent accept.
 */
void
fuzzLoader(const std::string &pristine, const Loader &load,
           std::uint64_t seed)
{
    // Sanity: the loaders accept their own pristine bytes.
    ASSERT_NO_THROW(load(pristine)) << "pristine artefact rejected";
    ASSERT_GE(pristine.size(), 16u);

    unsigned rejected = 0;
    const auto mustReject = [&](const std::string &mutated,
                                const std::string &what) {
        try {
            load(mutated);
            FAIL() << what << ": silently accepted";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()), "")
                << what << ": reject carries no cause";
            ++rejected;
        } catch (const std::exception &e) {
            FAIL() << what << ": foreign exception instead of a "
                   << "cause-labelled FatalError: " << e.what();
        }
    };

    FuzzRng rng(seed);

    // Truncations. Cutting at size-1 only drops the final newline,
    // which parses identically — every shorter cut loses a row, the
    // checksum trailer or the end marker and must be rejected.
    for (unsigned i = 0; i < 48; ++i) {
        const std::size_t cut = rng.below(pristine.size() - 1);
        mustReject(pristine.substr(0, cut),
                   "truncation at byte " + std::to_string(cut));
    }

    // Single-bit flips anywhere in the file: the whole-file checksum
    // (or a stricter structural check upstream of it) must fire.
    for (unsigned i = 0; i < 48; ++i) {
        const std::size_t pos = rng.below(pristine.size());
        std::string flipped = pristine;
        flipped[pos] = static_cast<char>(
            static_cast<unsigned char>(flipped[pos]) ^
            (1u << rng.below(8)));
        mustReject(flipped, "bit flip at byte " +
                                std::to_string(pos));
    }

    // Garbage headers: the first line replaced with random printable
    // noise — the magic/version guard rejects before anything else.
    for (unsigned i = 0; i < 16; ++i) {
        std::string garbage;
        const std::size_t len = 1 + rng.below(40);
        for (std::size_t c = 0; c < len; ++c)
            garbage += static_cast<char>(' ' + rng.below(95));
        const std::size_t eol = pristine.find('\n');
        mustReject(garbage + pristine.substr(eol),
                   "garbage header '" + garbage + "'");
    }

    EXPECT_EQ(rejected, 48u + 48u + 16u);
}

std::string
indexSnapshotText()
{
    std::ostringstream os;
    serve::StrategyIndex::build(testutil::smallDataset()).save(os);
    return os.str();
}

std::string
calibRosterText()
{
    calib::FitOptions opts;
    opts.starts = 1;
    opts.maxIters = 40;
    const sim::ChipModel &base = sim::chipByName("M4000");
    const std::vector<calib::FitResult> fits = {
        calib::fitChip(calib::Objective(base), base, opts)};
    std::ostringstream os;
    calib::saveRoster(fits, os);
    return os.str();
}

std::string
datasetCsvText()
{
    std::ostringstream os;
    testutil::smallDataset().saveCsv(os);
    return os.str();
}

} // namespace

TEST(SnapshotFuzz, IndexSnapshotNeverCrashesNeverAccepts)
{
    fuzzLoader(indexSnapshotText(),
               [](const std::string &text) {
                   std::istringstream is(text);
                   serve::StrategyIndex::load(is, "'fuzz'");
               },
               /*seed=*/0x6770695f667a7aull);
}

TEST(SnapshotFuzz, CalibRosterNeverCrashesNeverAccepts)
{
    fuzzLoader(calibRosterText(),
               [](const std::string &text) {
                   std::istringstream is(text);
                   calib::loadRoster(is, "fuzz");
               },
               /*seed=*/0x6770635f667a7aull);
}

TEST(SnapshotFuzz, DatasetCacheNeverCrashesNeverAccepts)
{
    const runner::Universe universe =
        testutil::smallDataset().universe();
    fuzzLoader(datasetCsvText(),
               [&universe](const std::string &text) {
                   std::istringstream is(text);
                   runner::Dataset::loadCsv(universe, is);
               },
               /*seed=*/0x6473657400667aull);
}

// Different fuzz seeds explore different corruption sets; a second
// seed doubles coverage cheaply and guards against a lucky first
// seed.
TEST(SnapshotFuzz, SecondSeedIndexSnapshot)
{
    fuzzLoader(indexSnapshotText(),
               [](const std::string &text) {
                   std::istringstream is(text);
                   serve::StrategyIndex::load(is, "'fuzz'");
               },
               /*seed=*/0xdeadbeef12345678ull);
}
