/**
 * @file
 * Tests for the predictive-model future-work module: feature
 * extraction, the k-NN predictor, and leave-one-out evaluation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graphport/apps/app.hpp"
#include "graphport/graph/generators.hpp"
#include "graphport/port/predict.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

TEST(Features, NamesMatchDimension)
{
    EXPECT_EQ(featureNames().size(), kNumWorkloadFeatures);
}

TEST(Features, AreFiniteAndDeterministic)
{
    const graph::Csr g = graph::gen::rmat(9, 8.0, 3);
    const auto [out, trace] = apps::runApp(
        apps::appByName("sssp-wl"), g, "social");
    const WorkloadFeatures a = extractFeatures(trace);
    const WorkloadFeatures b = extractFeatures(trace);
    for (unsigned d = 0; d < kNumWorkloadFeatures; ++d) {
        EXPECT_TRUE(std::isfinite(a[d])) << d;
        EXPECT_DOUBLE_EQ(a[d], b[d]) << d;
    }
}

TEST(Features, SeparateWorkloadClasses)
{
    // A launch-bound road worklist app vs. a single-kernel triangle
    // count must land far apart in feature space.
    const graph::Csr road = graph::gen::roadGrid(24, 24, 0.01, 4);
    const auto [o1, bfsTrace] =
        apps::runApp(apps::appByName("bfs-wl"), road, "road");
    const auto [o2, triTrace] =
        apps::runApp(apps::appByName("tri-node"), road, "road");
    const WorkloadFeatures bfs = extractFeatures(bfsTrace);
    const WorkloadFeatures tri = extractFeatures(triTrace);
    EXPECT_GT(bfs[0], tri[0]);     // far more launches
    EXPECT_GT(bfs[4], tri[4] - 1e-12); // worklist pushes
}

TEST(Knn, PredictsNearestLabel)
{
    KnnPredictor p(1);
    WorkloadFeatures a{0, 0, 0, 0, 0, 0};
    WorkloadFeatures b{10, 10, 10, 10, 10, 10};
    p.addExample(a, 7);
    p.addExample(b, 42);
    WorkloadFeatures nearA{1, 1, 0, 0, 0, 0};
    WorkloadFeatures nearB{9, 9, 10, 10, 10, 10};
    EXPECT_EQ(p.predict(nearA), 7u);
    EXPECT_EQ(p.predict(nearB), 42u);
}

TEST(Knn, MajorityVoteWins)
{
    KnnPredictor p(3);
    p.addExample({0, 0, 0, 0, 0, 0}, 1);
    p.addExample({1, 0, 0, 0, 0, 0}, 2);
    p.addExample({2, 0, 0, 0, 0, 0}, 2);
    EXPECT_EQ(p.predict({0.4, 0, 0, 0, 0, 0}), 2u);
}

TEST(Knn, EmptyPredictorIsFatal)
{
    const KnnPredictor p(3);
    EXPECT_THROW(p.predict({}), FatalError);
    EXPECT_THROW(KnnPredictor(0), FatalError);
}

TEST(Knn, KLargerThanExamplesIsFine)
{
    KnnPredictor p(10);
    p.addExample({0, 0, 0, 0, 0, 0}, 5);
    EXPECT_EQ(p.predict({3, 3, 3, 3, 3, 3}), 5u);
}

TEST(Predictor, LeaveOneOutIsReasonable)
{
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const auto traces = collectTraces(ds.universe());
    const PredictionEval e = evaluatePredictor(ds, traces, 3);
    EXPECT_EQ(e.tests, ds.numTests());
    EXPECT_GE(e.geomeanVsOracle, 1.0);
    // Predictions must recover a solid share of the oracle's value.
    EXPECT_GT(e.geomeanVsBaseline, 1.1);
    // And not slow down many tests.
    EXPECT_LT(e.slowdowns, e.tests / 4);
}

TEST(Predictor, CollectTracesCoversUniverse)
{
    const runner::Universe u = runner::smallUniverse(3, {"M4000"});
    const auto traces = collectTraces(u);
    EXPECT_EQ(traces.size(), u.apps.size() * u.inputs.size());
    for (const auto &[key, trace] : traces)
        EXPECT_GT(trace.launchCount(), 0u) << key;
}

TEST(Predictor, MissingTraceIsFatal)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const std::map<std::string, dsl::AppTrace> empty;
    EXPECT_THROW(evaluatePredictor(ds, empty, 3), FatalError);
}

TEST(Predictor, PredictConfigIsDeterministicAndValid)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const auto traces = collectTraces(ds.universe());
    const unsigned a =
        predictConfig(ds, traces, "bfs-topo", "road", 3);
    const unsigned b =
        predictConfig(ds, traces, "bfs-topo", "road", 3);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, dsl::kNumConfigs);
}

TEST(Predictor, PredictConfigLeavesTheQueryPairOut)
{
    // predictConfig's contract: train on every test whose (app,
    // input) differs from the query, in dataset test order. Rebuild
    // that predictor by hand and require the identical answer.
    const runner::Dataset &ds = testutil::smallDataset();
    const auto traces = collectTraces(ds.universe());
    const std::string app = "bfs-wl";
    const std::string input = "social";

    KnnPredictor manual(3);
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const runner::Test test = ds.testAt(t);
        if (test.app == app && test.input == input)
            continue;
        manual.addExample(
            extractFeatures(traces.at(test.app + "|" + test.input)),
            ds.bestConfig(t));
    }
    const unsigned expected = manual.predict(
        extractFeatures(traces.at(app + "|" + input)));
    EXPECT_EQ(predictConfig(ds, traces, app, input, 3), expected);
}

TEST(Predictor, PredictConfigWithoutQueryTraceIsFatal)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const std::map<std::string, dsl::AppTrace> empty;
    EXPECT_THROW(predictConfig(ds, empty, "bfs-topo", "road", 3),
                 FatalError);
}
