/**
 * @file
 * Tests for the parallel sweep engine: parallel and compacted builds
 * must reproduce the serial uncompacted build bit for bit, and the
 * SweepStats observability layer must describe the build truthfully.
 * Run under ThreadSanitizer in CI to catch races in the pricing
 * fan-out and the DegreeHist order-statistic memo.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graphport/runner/dataset.hpp"
#include "graphport/runner/sweepstats.hpp"
#include "graphport/support/threadpool.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::runner;

namespace {

/** EXPECT bit-identical run timings across two datasets. */
void
expectIdentical(const Dataset &a, const Dataset &b,
                const std::string &label)
{
    ASSERT_EQ(a.numTests(), b.numTests()) << label;
    for (std::size_t t = 0; t < a.numTests(); ++t) {
        for (unsigned cfg = 0; cfg < a.numConfigs(); ++cfg) {
            ASSERT_EQ(a.runs(t, cfg), b.runs(t, cfg))
                << label << ": test " << t << " cfg " << cfg;
        }
    }
}

} // namespace

TEST(SweepParallel, CompactionIsBitIdentical)
{
    const Universe u = smallUniverse(3);
    BuildOptions plain;
    plain.threads = 1;
    plain.compact = false;
    const Dataset serial = Dataset::build(u, plain);
    BuildOptions compacted;
    compacted.threads = 1;
    compacted.compact = true;
    expectIdentical(serial, Dataset::build(u, compacted),
                    "compaction");
}

TEST(SweepParallel, ThreadCountsAreBitIdentical)
{
    const Universe u = smallUniverse(3);
    BuildOptions serialOpts;
    serialOpts.threads = 1;
    serialOpts.compact = false;
    const Dataset serial = Dataset::build(u, serialOpts);
    for (unsigned threads : {2u, 4u, support::hardwareThreads()}) {
        BuildOptions options;
        options.threads = threads;
        expectIdentical(serial, Dataset::build(u, options),
                        std::to_string(threads) + " threads");
    }
}

TEST(SweepParallel, DefaultBuildMatchesExplicitOptions)
{
    const Universe u = smallUniverse(2, {"M4000"});
    expectIdentical(Dataset::build(u),
                    Dataset::build(u, BuildOptions{}), "default");
}

TEST(SweepParallel, RepeatedParallelBuildsAreDeterministic)
{
    const Universe u = smallUniverse(2, {"M4000", "MALI"});
    BuildOptions options;
    options.threads = 4;
    const Dataset a = Dataset::build(u, options);
    const Dataset b = Dataset::build(u, options);
    expectIdentical(a, b, "repeat");
}

TEST(SweepParallel, StatsDescribeTheBuild)
{
    // Include pr-topo: a fixpoint app whose trace genuinely
    // compacts, so the ratio assertion below is strict.
    Universe u = smallUniverse(3, {"M4000", "IRIS"});
    u.apps = {"pr-topo", "cc-sv", "bfs-topo"};
    u.validate();
    SweepStats stats;
    BuildOptions options;
    options.threads = 2;
    options.stats = &stats;
    const Dataset ds = Dataset::build(u, options);

    EXPECT_EQ(stats.threads, 2u);
    EXPECT_TRUE(stats.compaction);
    EXPECT_EQ(stats.tests, ds.numTests());
    EXPECT_EQ(stats.configs, ds.numConfigs());
    EXPECT_EQ(stats.cells, ds.numTests() * ds.numConfigs());
    EXPECT_EQ(stats.runsPerCell, u.runs);
    EXPECT_EQ(stats.tracesRecorded, u.apps.size() * u.inputs.size());
    EXPECT_GT(stats.launchesTotal, 0u);
    EXPECT_GT(stats.launchesUnique, 0u);
    EXPECT_LE(stats.launchesUnique, stats.launchesTotal);
    // Fixpoint apps repeat launches: compaction must find some.
    EXPECT_GT(stats.compactionRatio(), 1.0);
    EXPECT_GT(stats.totalSeconds, 0.0);
    EXPECT_GT(stats.priceSeconds, 0.0);
    EXPECT_GE(stats.totalSeconds, stats.priceSeconds);
    EXPECT_GT(stats.cellsPerSecond(), 0.0);
}

TEST(SweepParallel, StatsJsonAndPrintContainKeyFields)
{
    const Universe u = smallUniverse(2, {"M4000"});
    SweepStats stats;
    BuildOptions options;
    options.stats = &stats;
    (void)Dataset::build(u, options);

    const std::string json = stats.toJson();
    for (const char *key :
         {"\"threads\"", "\"cells\"", "\"compaction_ratio\"",
          "\"launches_total\"", "\"launches_unique\"",
          "\"price_seconds\"", "\"total_seconds\"",
          "\"cells_per_second\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    std::ostringstream os;
    stats.print(os);
    EXPECT_NE(os.str().find("compaction"), std::string::npos);
    EXPECT_NE(os.str().find("cells/s"), std::string::npos);
}

TEST(SweepParallel, ZeroThreadsMeansHardwareConcurrency)
{
    const Universe u = smallUniverse(1, {"M4000"});
    SweepStats stats;
    BuildOptions options;
    options.threads = 0;
    options.stats = &stats;
    (void)Dataset::build(u, options);
    EXPECT_EQ(stats.threads, support::hardwareThreads());
}
