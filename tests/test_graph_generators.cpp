/**
 * @file
 * Tests for the synthetic input generators: determinism, structural
 * class properties (Table VIII shapes) and invariants.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "graphport/graph/generators.hpp"
#include "graphport/graph/metrics.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::graph;

namespace {

/** Every edge must have its reverse present (symmetric graphs). */
bool
isSymmetric(const Csr &g)
{
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            const auto back = g.neighbors(v);
            if (!std::binary_search(back.begin(), back.end(), u))
                return false;
        }
    }
    return true;
}

} // namespace

TEST(RoadGrid, NodeCountMatchesGrid)
{
    const Csr g = gen::roadGrid(10, 7);
    EXPECT_EQ(g.numNodes(), 70u);
}

TEST(RoadGrid, IsSymmetricWeightedNoSelfLoops)
{
    const Csr g = gen::roadGrid(16, 16);
    EXPECT_TRUE(isSymmetric(g));
    EXPECT_TRUE(g.hasWeights());
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v : g.neighbors(u))
            ASSERT_NE(u, v);
    }
}

TEST(RoadGrid, HasRoadNetworkShape)
{
    const Csr g = gen::roadGrid(48, 48);
    const GraphMetrics m = computeMetrics(g);
    // Low, near-uniform degree and large diameter.
    EXPECT_LT(m.avgDegree, 6.0);
    EXPECT_LE(m.maxDegree, 10u);
    EXPECT_GT(m.pseudoDiameter, 40u);
    EXPECT_DOUBLE_EQ(m.largestComponentFraction, 1.0);
}

TEST(RoadGrid, RejectsTinyGrids)
{
    EXPECT_THROW(gen::roadGrid(1, 5), FatalError);
}

TEST(Rmat, HasSocialNetworkShape)
{
    const Csr g = gen::rmat(11, 12.0);
    const GraphMetrics m = computeMetrics(g);
    // Skewed degrees and small diameter.
    EXPECT_GT(m.degreeSkew, 5.0);
    EXPECT_LT(m.pseudoDiameter, 20u);
}

TEST(Rmat, RejectsBadParameters)
{
    EXPECT_THROW(gen::rmat(1, 8.0), FatalError);
    EXPECT_THROW(gen::rmat(30, 8.0), FatalError);
    EXPECT_THROW(gen::rmat(10, 0.0), FatalError);
}

TEST(Rmat, MinimumDegreeOne)
{
    const Csr g = gen::rmat(10, 4.0);
    for (NodeId u = 0; u < g.numNodes(); ++u)
        EXPECT_GE(g.outDegree(u), 1u) << "node " << u;
}

TEST(UniformRandom, HasUniformShape)
{
    const Csr g = gen::uniformRandom(4096, 8.0);
    const GraphMetrics m = computeMetrics(g);
    // Concentrated degrees, small diameter.
    EXPECT_LT(m.degreeSkew, 5.0);
    EXPECT_LT(m.pseudoDiameter, 15u);
}

TEST(UniformRandom, MinimumDegreeOne)
{
    const Csr g = gen::uniformRandom(2048, 2.0);
    for (NodeId u = 0; u < g.numNodes(); ++u)
        EXPECT_GE(g.outDegree(u), 1u);
}

TEST(UniformRandom, RejectsBadParameters)
{
    EXPECT_THROW(gen::uniformRandom(1, 4.0), FatalError);
    EXPECT_THROW(gen::uniformRandom(100, -1.0), FatalError);
}

TEST(Generators, SkewOrderingAcrossClasses)
{
    // The defining Table VIII property: social skew >> random skew,
    // road diameter >> social/random diameter.
    const GraphMetrics road =
        computeMetrics(gen::roadGrid(48, 48));
    const GraphMetrics social = computeMetrics(gen::rmat(12, 12.0));
    const GraphMetrics random =
        computeMetrics(gen::uniformRandom(4096, 12.0));
    EXPECT_GT(social.degreeSkew, 3.0 * random.degreeSkew);
    EXPECT_GT(road.pseudoDiameter, 3 * social.pseudoDiameter);
    EXPECT_GT(road.pseudoDiameter, 3 * random.pseudoDiameter);
}

/** Determinism and seed-sensitivity, parameterized per generator. */
struct GenCase
{
    const char *name;
    Csr (*make)(std::uint64_t seed);
};

Csr
makeRoad(std::uint64_t seed)
{
    return gen::roadGrid(20, 20, 0.01, seed);
}
Csr
makeRmat(std::uint64_t seed)
{
    return gen::rmat(9, 8.0, seed);
}
Csr
makeUniform(std::uint64_t seed)
{
    return gen::uniformRandom(512, 8.0, seed);
}

class GeneratorDeterminismTest
    : public ::testing::TestWithParam<GenCase>
{};

TEST_P(GeneratorDeterminismTest, SameSeedSameGraph)
{
    const Csr a = GetParam().make(42);
    const Csr b = GetParam().make(42);
    EXPECT_EQ(a.rowStarts(), b.rowStarts());
    EXPECT_EQ(a.columns(), b.columns());
}

TEST_P(GeneratorDeterminismTest, DifferentSeedsDiffer)
{
    const Csr a = GetParam().make(42);
    const Csr b = GetParam().make(43);
    EXPECT_TRUE(a.rowStarts() != b.rowStarts() ||
                a.columns() != b.columns());
}

TEST_P(GeneratorDeterminismTest, SymmetricAndValid)
{
    const Csr g = GetParam().make(7);
    g.validate();
    EXPECT_TRUE(isSymmetric(g));
    EXPECT_TRUE(g.hasWeights());
}

TEST_P(GeneratorDeterminismTest, WeightsArePositive)
{
    const Csr g = GetParam().make(8);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (Weight w : g.edgeWeights(u))
            ASSERT_GE(w, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorDeterminismTest,
    ::testing::Values(GenCase{"road", makeRoad},
                      GenCase{"rmat", makeRmat},
                      GenCase{"uniform", makeUniform}),
    [](const ::testing::TestParamInfo<GenCase> &info) {
        return info.param.name;
    });
