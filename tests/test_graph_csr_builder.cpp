/**
 * @file
 * Tests for the CSR representation and the edge-list builder.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "graphport/graph/builder.hpp"
#include "graphport/graph/csr.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::graph;

TEST(Csr, EmptyGraph)
{
    const Csr g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_FALSE(g.hasWeights());
}

TEST(Csr, TriangleStructure)
{
    const Csr g = testutil::triangle();
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 6u); // symmetrised
    EXPECT_EQ(g.outDegree(0), 2u);
    EXPECT_EQ(g.outDegree(1), 2u);
    EXPECT_EQ(g.outDegree(2), 2u);
    EXPECT_TRUE(g.hasWeights());
    EXPECT_EQ(g.name(), "triangle");
}

TEST(Csr, NeighborsAreSorted)
{
    const Csr g = testutil::star(8);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const auto nbrs = g.neighbors(u);
        EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    }
}

TEST(Csr, EdgeAccessorsConsistent)
{
    const Csr g = testutil::triangle();
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const auto nbrs = g.neighbors(u);
        ASSERT_EQ(nbrs.size(), g.edgeEnd(u) - g.edgeBegin(u));
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            EXPECT_EQ(g.edgeDst(g.edgeBegin(u) + i), nbrs[i]);
    }
}

TEST(Csr, WeightsParallelToColumns)
{
    const Csr g = testutil::triangle();
    for (NodeId u = 0; u < g.numNodes(); ++u)
        EXPECT_EQ(g.edgeWeights(u).size(), g.neighbors(u).size());
}

TEST(Csr, SymmetrisedWeightsMatch)
{
    // Weight of (u, v) equals weight of (v, u) after symmetrisation.
    const Csr g = testutil::triangle();
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const auto nbrs = g.neighbors(u);
        const auto wts = g.edgeWeights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const NodeId v = nbrs[i];
            const auto back = g.neighbors(v);
            const auto backW = g.edgeWeights(v);
            const auto it =
                std::lower_bound(back.begin(), back.end(), u);
            ASSERT_NE(it, back.end());
            EXPECT_EQ(backW[it - back.begin()], wts[i]);
        }
    }
}

TEST(Csr, ValidateRejectsBadRowStarts)
{
    EXPECT_THROW(Csr({0, 2, 1}, {0, 0}, {}, "bad"), PanicError);
    EXPECT_THROW(Csr({1, 2}, {0, 0}, {}, "bad"), PanicError);
    EXPECT_THROW(Csr({0, 1}, {5}, {}, "bad"), PanicError);
    EXPECT_THROW(Csr({0, 1}, {0}, {1, 2}, "bad"), PanicError);
}

TEST(Builder, RemovesSelfLoops)
{
    Builder b(3);
    b.addEdge(0, 0);
    b.addEdge(0, 1);
    const Csr g = b.build("g");
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Builder, RemovesDuplicates)
{
    Builder b(3);
    b.addEdge(0, 1, 5);
    b.addEdge(0, 1, 9);
    b.addEdge(0, 2);
    Builder::Options opts;
    opts.weighted = true;
    const Csr g = b.build("g", opts);
    EXPECT_EQ(g.numEdges(), 2u);
    // First (lowest) weight wins after sorting.
    EXPECT_EQ(g.edgeWeights(0)[0], 5u);
}

TEST(Builder, KeepsDuplicatesWhenAsked)
{
    Builder b(3);
    b.addEdge(0, 1);
    b.addEdge(0, 1);
    Builder::Options opts;
    opts.removeDuplicates = false;
    const Csr g = b.build("g", opts);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(Builder, SymmetrizeAddsReverseEdges)
{
    Builder b(3);
    b.addEdge(0, 1);
    Builder::Options opts;
    opts.symmetrize = true;
    const Csr g = b.build("g", opts);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(Builder, DirectedByDefault)
{
    Builder b(3);
    b.addEdge(0, 1);
    const Csr g = b.build("g");
    EXPECT_EQ(g.outDegree(0), 1u);
    EXPECT_EQ(g.outDegree(1), 0u);
}

TEST(Builder, RejectsOutOfRangeEndpoints)
{
    Builder b(3);
    EXPECT_THROW(b.addEdge(3, 0), FatalError);
    EXPECT_THROW(b.addEdge(0, 3), FatalError);
}

TEST(Builder, IsolatedNodesHaveZeroDegree)
{
    Builder b(5);
    b.addEdge(0, 1);
    const Csr g = b.build("g");
    EXPECT_EQ(g.outDegree(4), 0u);
    EXPECT_TRUE(g.neighbors(4).empty());
}
