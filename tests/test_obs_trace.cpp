/**
 * @file
 * graphport::obs tracing: the deterministic span-structure contract
 * (bit-identical structure-only exports at any thread count), Span
 * RAII/inert semantics, and the two exporters end to end — including
 * an instrumented Dataset::build at 1 vs 4 threads.
 */
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graphport/obs/obs.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/support/threadpool.hpp"

using namespace graphport;

namespace {

/** Structure-only summary (wall channels dropped). */
std::string
structureOf(const obs::Obs &o)
{
    std::ostringstream os;
    obs::SummaryOptions opts;
    opts.includeWallTimes = false;
    obs::writeSummaryJson(os, &o.metrics, &o.tracer, opts);
    return os.str();
}

/**
 * A fan-out workload: one root, one child per task (keyed by task
 * index), and an annotated grandchild under each child.
 */
void
runFanOut(obs::Obs &o, unsigned threads)
{
    obs::Span root(&o.tracer, "work");
    support::ThreadPool pool(threads);
    pool.parallelFor(
        16,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const obs::Span task(root, "task", i);
                const obs::Span step(task, "step", 0);
                step.annotate("items", static_cast<double>(i * 3));
                o.metrics.counter("work.items").add(i * 3);
            }
        },
        1);
}

} // namespace

TEST(ObsSpanTest, InertSpansAreNoOps)
{
    obs::Span inert;
    EXPECT_EQ(inert.tracer(), nullptr);
    inert.annotate("x", 1.0);
    inert.close();

    obs::Span fromNull(static_cast<obs::Tracer *>(nullptr), "root");
    EXPECT_EQ(fromNull.tracer(), nullptr);

    obs::Span child(fromNull, "child", 0);
    EXPECT_EQ(child.tracer(), nullptr);
    child.annotate("y", 2.0);
}

TEST(ObsSpanTest, RaiiOpensAndCloses)
{
    obs::Tracer tracer;
    {
        obs::Span root(&tracer, "outer");
        EXPECT_EQ(root.tracer(), &tracer);
        obs::Span child(root, "inner", 0);
        child.annotate("n", 7.0);
    }
    const std::vector<obs::SpanRecord> spans = tracer.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].parent, obs::kNoSpan);
    EXPECT_GT(spans[0].durNs, 0.0);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].parent, obs::SpanId(0));
    ASSERT_EQ(spans[1].annotations.size(), 1u);
    EXPECT_EQ(spans[1].annotations[0].first, "n");
    EXPECT_EQ(spans[1].annotations[0].second, 7.0);
}

TEST(ObsSpanTest, AutoKeyNumbersSiblingsInCreationOrder)
{
    obs::Tracer tracer;
    const obs::SpanId root = tracer.open("root");
    const obs::SpanId a = tracer.open("a", root);
    const obs::SpanId b = tracer.open("b", root);
    const obs::SpanId other = tracer.open("other");
    tracer.close(b);
    tracer.close(a);
    tracer.close(other);
    tracer.close(root);
    const std::vector<obs::SpanRecord> spans = tracer.spans();
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(spans[0].key, 0u); // first root
    EXPECT_EQ(spans[1].key, 0u); // first child of root
    EXPECT_EQ(spans[2].key, 1u); // second child of root
    EXPECT_EQ(spans[3].key, 1u); // second root
}

TEST(ObsSpanTest, CloseIsIdempotent)
{
    obs::Tracer tracer;
    obs::Span span(&tracer, "once");
    span.close();
    const double dur = tracer.spans()[0].durNs;
    span.close();
    EXPECT_EQ(tracer.spans()[0].durNs, dur);
}

TEST(ObsSpanTest, StructureIsIdenticalAcrossThreadCounts)
{
    std::string reference;
    for (unsigned threads : {1u, 4u, 8u}) {
        obs::Obs o;
        runFanOut(o, threads);
        const std::string structure = structureOf(o);
        if (reference.empty())
            reference = structure;
        else
            EXPECT_EQ(structure, reference)
                << "structure-only export changed at " << threads
                << " threads";
    }
    // The reference itself must contain the keyed children and the
    // deterministic annotations, but no wall-clock fields.
    EXPECT_NE(reference.find("\"task\""), std::string::npos);
    EXPECT_NE(reference.find("\"items\""), std::string::npos);
    EXPECT_EQ(reference.find("wall_us"), std::string::npos);
    EXPECT_EQ(reference.find("\"tid\""), std::string::npos);
}

TEST(ObsSpanTest, SiblingsExportSortedByKey)
{
    obs::Obs o;
    // Open children out of key order, from one thread.
    obs::Span root(&o.tracer, "root");
    obs::Span late(root, "child", 5);
    late.close();
    obs::Span early(root, "child", 1);
    early.close();
    root.close();
    const std::string out = structureOf(o);
    const std::size_t k1 = out.find("\"key\": 1");
    const std::size_t k5 = out.find("\"key\": 5");
    ASSERT_NE(k1, std::string::npos);
    ASSERT_NE(k5, std::string::npos);
    EXPECT_LT(k1, k5);
}

TEST(ObsExportTest, ChromeTraceListsEveryClosedSpan)
{
    obs::Obs o;
    runFanOut(o, 2);
    std::ostringstream os;
    obs::writeChromeTrace(os, o.tracer);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\": \"work\""), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"task\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsExportTest, SummaryIncludesWallTimesByDefault)
{
    obs::Obs o;
    runFanOut(o, 1);
    o.metrics.gauge("work.total_seconds").set(0.5);
    std::ostringstream os;
    obs::writeSummaryJson(os, &o.metrics, &o.tracer);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"work.total_seconds\""), std::string::npos);
    EXPECT_NE(out.find("wall_us"), std::string::npos);
    // Structure-only drops both again.
    o.metrics.counter("work.items").add(0);
    const std::string structure = structureOf(o);
    EXPECT_EQ(structure.find("\"work.total_seconds\""),
              std::string::npos);
    EXPECT_NE(structure.find("\"work.items\""), std::string::npos);
}

TEST(ObsDatasetTest, BuildSpanStructureIsThreadCountInvariant)
{
    const runner::Universe universe = runner::smallUniverse(2);
    std::string reference;
    for (unsigned threads : {1u, 4u}) {
        obs::Obs o;
        runner::BuildOptions options;
        options.threads = threads;
        options.obs = &o;
        const runner::Dataset ds =
            runner::Dataset::build(universe, options);
        EXPECT_GT(ds.numTests(), 0u);
        const std::string structure = structureOf(o);
        if (reference.empty())
            reference = structure;
        else
            EXPECT_EQ(structure, reference)
                << "Dataset::build structure-only export changed at "
                << threads << " threads";
    }
    EXPECT_NE(reference.find("\"sweep.build\""), std::string::npos);
    EXPECT_NE(reference.find("\"record\""), std::string::npos);
    EXPECT_NE(reference.find("\"price\""), std::string::npos);
    EXPECT_NE(reference.find("\"finalise\""), std::string::npos);
    EXPECT_NE(reference.find("\"launches\""), std::string::npos);
    EXPECT_NE(reference.find("\"sweep.cells\""), std::string::npos);
}
