/**
 * @file
 * Tests for the chip models: the roster matches Table I, every model
 * validates, and the paper's measured per-chip traits (Section VIII)
 * are encoded correctly.
 */
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "graphport/sim/chip.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;
using namespace graphport::sim;

TEST(ChipRoster, SixChipsFourVendors)
{
    const auto &chips = allChips();
    EXPECT_EQ(chips.size(), 6u);
    std::set<std::string> vendors;
    for (const ChipModel &c : chips)
        vendors.insert(c.vendor);
    EXPECT_EQ(vendors.size(), 4u);
    EXPECT_TRUE(vendors.count("Nvidia"));
    EXPECT_TRUE(vendors.count("Intel"));
    EXPECT_TRUE(vendors.count("AMD"));
    EXPECT_TRUE(vendors.count("ARM"));
}

TEST(ChipRoster, TableIShortNames)
{
    const std::vector<std::string> expected = {
        "M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI"};
    EXPECT_EQ(allChipNames(), expected);
}

TEST(ChipRoster, AllModelsValidate)
{
    for (const ChipModel &c : allChips())
        EXPECT_NO_THROW(c.validate()) << c.shortName;
}

TEST(ChipRoster, LookupByName)
{
    EXPECT_EQ(chipByName("R9").vendor, "AMD");
    EXPECT_THROW(chipByName("RTX9090"), FatalError);
}

TEST(ChipTraits, SubgroupSizesMatchTableI)
{
    EXPECT_EQ(chipByName("M4000").subgroupSize, 32u);
    EXPECT_EQ(chipByName("GTX1080").subgroupSize, 32u);
    EXPECT_EQ(chipByName("R9").subgroupSize, 64u);
    EXPECT_EQ(chipByName("MALI").subgroupSize, 1u);
    EXPECT_EQ(chipByName("IRIS").subgroupSize, 16u);
    EXPECT_EQ(chipByName("HD5500").subgroupSize, 16u);
}

TEST(ChipTraits, NvidiaHasLowestLaunchOverhead)
{
    // The Figure 5 finding that motivates oitergb everywhere except
    // Nvidia.
    const double m4000 = chipByName("M4000").kernelLaunchNs;
    const double gtx = chipByName("GTX1080").kernelLaunchNs;
    for (const ChipModel &c : allChips()) {
        if (c.vendor == "Nvidia")
            continue;
        EXPECT_GT(c.kernelLaunchNs, m4000) << c.shortName;
        EXPECT_GT(c.kernelLaunchNs, gtx) << c.shortName;
    }
    EXPECT_GT(chipByName("MALI").kernelLaunchNs,
              2.0 * chipByName("R9").kernelLaunchNs);
}

TEST(ChipTraits, DriverCombiningMatchesTableX)
{
    // The paper finds the Nvidia and HD5500 JITs already implement
    // coop-cv; R9, IRIS and MALI do not.
    EXPECT_TRUE(chipByName("M4000").driverCombinesAtomics);
    EXPECT_TRUE(chipByName("GTX1080").driverCombinesAtomics);
    EXPECT_TRUE(chipByName("HD5500").driverCombinesAtomics);
    EXPECT_FALSE(chipByName("IRIS").driverCombinesAtomics);
    EXPECT_FALSE(chipByName("R9").driverCombinesAtomics);
    EXPECT_FALSE(chipByName("MALI").driverCombinesAtomics);
}

TEST(ChipTraits, MaliIsTheDivergenceOutlier)
{
    const double mali =
        chipByName("MALI").memDivergenceSensitivity;
    for (const ChipModel &c : allChips()) {
        if (c.shortName != "MALI") {
            EXPECT_GT(mali, 5.0 * c.memDivergenceSensitivity)
                << c.shortName;
        }
    }
}

TEST(ChipTraits, LockstepSubgroupsHaveFreeBarriers)
{
    EXPECT_DOUBLE_EQ(chipByName("M4000").sgBarrierNs, 0.0);
    EXPECT_DOUBLE_EQ(chipByName("R9").sgBarrierNs, 0.0);
    EXPECT_GT(chipByName("IRIS").sgBarrierNs, 0.0);
}

TEST(ChipGeometry, OccupancyFunctions)
{
    const ChipModel &r9 = chipByName("R9");
    EXPECT_EQ(r9.wgPerCu(128), r9.wgPerCu128);
    EXPECT_EQ(r9.wgPerCu(256), r9.wgPerCu256);
    EXPECT_EQ(r9.concurrentWorkgroups(128),
              r9.numCus * r9.wgPerCu128);
}

TEST(ChipGeometry, EffectiveLanesPositiveAndBounded)
{
    for (const ChipModel &c : allChips()) {
        for (unsigned w : {128u, 256u}) {
            const double lanes = c.effectiveLanes(w);
            EXPECT_GT(lanes, 0.0) << c.shortName;
            EXPECT_LE(lanes, static_cast<double>(c.numCus) *
                                 c.lanesPerCu)
                << c.shortName;
        }
    }
}

TEST(ChipGeometry, IntegratedChipsLoseOccupancyAt256)
{
    // sz256's occupancy penalty (Table VI: "occupancy, workgroup-
    // local resource limits") applies on the integrated chips.
    for (const char *name : {"HD5500", "IRIS", "MALI"}) {
        const ChipModel &c = chipByName(name);
        EXPECT_LT(c.effectiveLanes(256), c.effectiveLanes(128))
            << name;
    }
}

TEST(ChipGeometry, WgBarrierScalesWithWidth)
{
    for (const ChipModel &c : allChips()) {
        EXPECT_DOUBLE_EQ(c.wgBarrierCostNs(128), c.wgBarrierNs);
        EXPECT_DOUBLE_EQ(c.wgBarrierCostNs(256),
                         2.0 * c.wgBarrierNs);
    }
}

TEST(ChipGeometry, GlobalBarrierScalesWithResidentThreads)
{
    for (const ChipModel &c : allChips()) {
        EXPECT_GT(c.globalBarrierCostNs(128), 0.0);
        // Per-thread scaling: cost at 256 uses double the per-wg
        // weight but possibly fewer groups.
        const double expected128 =
            c.globalBarrierPerWgNs * c.concurrentWorkgroups(128);
        EXPECT_DOUBLE_EQ(c.globalBarrierCostNs(128), expected128);
    }
}

TEST(ChipTraits, ValidationCatchesNonsense)
{
    ChipModel bad = chipByName("R9");
    bad.randomEdgeNs = 0.1;
    bad.coalescedEdgeNs = 0.5; // random cheaper than coalesced
    EXPECT_THROW(bad.validate(), PanicError);

    ChipModel zeroCu = chipByName("R9");
    zeroCu.numCus = 0;
    EXPECT_THROW(zeroCu.validate(), PanicError);

    ChipModel badIlp = chipByName("R9");
    badIlp.ilpEfficiency = 1.5;
    EXPECT_THROW(badIlp.validate(), PanicError);
}

TEST(ChipTraits, ValidationCatchesNonFiniteAndNegativeCosts)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    ChipModel nanSens = chipByName("R9");
    nanSens.memDivergenceSensitivity = nan;
    EXPECT_THROW(nanSens.validate(), PanicError);

    ChipModel infLaunch = chipByName("R9");
    infLaunch.kernelLaunchNs = inf;
    EXPECT_THROW(infLaunch.validate(), PanicError);

    ChipModel zeroBw = chipByName("R9");
    zeroBw.memBandwidthGBs = 0.0;
    EXPECT_THROW(zeroBw.validate(), PanicError);

    ChipModel negRmw = chipByName("R9");
    negRmw.contendedRmwNs = -1.0;
    EXPECT_THROW(negRmw.validate(), PanicError);

    ChipModel negBarrier = chipByName("R9");
    negBarrier.wgBarrierNs = -0.5;
    EXPECT_THROW(negBarrier.validate(), PanicError);

    ChipModel zeroMemcpy = chipByName("R9");
    zeroMemcpy.hostMemcpyNs = 0.0;
    EXPECT_THROW(zeroMemcpy.validate(), PanicError);

    ChipModel badNoise = chipByName("R9");
    badNoise.noiseSigma = 1.5;
    EXPECT_THROW(badNoise.validate(), PanicError);

    ChipModel noName = chipByName("R9");
    noName.shortName.clear();
    EXPECT_THROW(noName.validate(), PanicError);

    ChipModel tinyWg = chipByName("R9");
    tinyWg.maxWorkgroupSize = 64;
    EXPECT_THROW(tinyWg.validate(), PanicError);
}
