/**
 * @file
 * Tests for degree histograms, order statistics, and the trace
 * recorder.
 */
#include <gtest/gtest.h>

#include "graphport/dsl/recorder.hpp"
#include "graphport/dsl/trace.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::dsl;

TEST(DegreeHistBuckets, BucketBoundaries)
{
    EXPECT_EQ(DegreeHist::bucketOf(0), 0u);
    EXPECT_EQ(DegreeHist::bucketOf(1), 0u);
    EXPECT_EQ(DegreeHist::bucketOf(2), 1u);
    EXPECT_EQ(DegreeHist::bucketOf(3), 1u);
    EXPECT_EQ(DegreeHist::bucketOf(4), 2u);
    EXPECT_EQ(DegreeHist::bucketOf(7), 2u);
    EXPECT_EQ(DegreeHist::bucketOf(8), 3u);
    EXPECT_EQ(DegreeHist::bucketOf(1023), 9u);
    EXPECT_EQ(DegreeHist::bucketOf(1024), 10u);
}

TEST(DegreeHistBuckets, HugeDegreesClampToLastBucket)
{
    EXPECT_EQ(DegreeHist::bucketOf(~0ull), kDegreeBuckets - 1);
}

TEST(DegreeHistBuckets, MidpointsAndBounds)
{
    EXPECT_DOUBLE_EQ(DegreeHist::bucketMid(0), 1.0);
    EXPECT_DOUBLE_EQ(DegreeHist::bucketMid(1), 3.0);
    EXPECT_DOUBLE_EQ(DegreeHist::bucketMid(2), 6.0);
    EXPECT_DOUBLE_EQ(DegreeHist::bucketHi(1), 3.0);
    EXPECT_DOUBLE_EQ(DegreeHist::bucketHi(2), 7.0);
}

TEST(DegreeHistTest, TotalsAndMean)
{
    DegreeHist h;
    h.add(1);
    h.add(4);
    h.add(4);
    EXPECT_EQ(h.totalItems(), 3u);
    // Representative sizes: 1, 6, 6.
    EXPECT_DOUBLE_EQ(h.totalWork(), 13.0);
    EXPECT_NEAR(h.meanSize(), 13.0 / 3.0, 1e-12);
}

TEST(DegreeHistTest, EmptyHistogram)
{
    const DegreeHist h;
    EXPECT_EQ(h.totalItems(), 0u);
    EXPECT_DOUBLE_EQ(h.meanSize(), 0.0);
    EXPECT_DOUBLE_EQ(h.expectedMaxOf(16), 0.0);
}

TEST(ExpectedMax, UniformHistogramIsConstant)
{
    DegreeHist h;
    for (int i = 0; i < 100; ++i)
        h.add(4); // all in bucket 2, mid 6
    for (unsigned k : {1u, 2u, 32u, 128u})
        EXPECT_DOUBLE_EQ(h.expectedMaxOf(k), 6.0) << k;
}

TEST(ExpectedMax, MonotoneInK)
{
    DegreeHist h;
    for (int i = 0; i < 90; ++i)
        h.add(2);
    for (int i = 0; i < 10; ++i)
        h.add(64);
    double prev = 0.0;
    for (unsigned k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const double e = h.expectedMaxOf(k);
        EXPECT_GE(e, prev - 1e-9) << k;
        prev = e;
    }
    // k = 1 is the mean; large k approaches the top bucket mid.
    EXPECT_NEAR(h.expectedMaxOf(1), h.meanSize(), 1e-9);
    EXPECT_NEAR(h.expectedMaxOf(4096), DegreeHist::bucketMid(6),
                1.0);
}

TEST(ExpectedMax, TwoPointDistributionExactValue)
{
    // 50/50 split of buckets 0 (mid 1) and 6 (mid 96):
    // E[max of 2] = P(both low)*1 + (1 - P)*96 = 0.25*1 + 0.75*96.
    DegreeHist h;
    h.add(1);
    h.add(64);
    EXPECT_NEAR(h.expectedMaxOf(2), 0.25 * 1.0 + 0.75 * 96.0, 1e-9);
}

TEST(ExpectedMax, MemoisationIsConsistent)
{
    DegreeHist h;
    for (int i = 0; i < 50; ++i)
        h.add(i % 17);
    const double first = h.expectedMaxOf(32);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(h.expectedMaxOf(32), first);
    // Adding data invalidates the memo.
    h.add(4096);
    EXPECT_GT(h.expectedMaxOf(32), first);
}

TEST(Recorder, TracksIterationsAndLaunches)
{
    const graph::Csr g = testutil::path(8);
    TraceRecorder rec("app", g, "path");
    rec.beginIteration();
    rec.flatKernel({.name = "a"}, 8);
    rec.beginIteration();
    rec.flatKernel({.name = "b"}, 8);
    rec.flatKernel({.name = "c"}, 8);
    const AppTrace trace = rec.finish();
    EXPECT_EQ(trace.hostIterations, 2u);
    ASSERT_EQ(trace.launchCount(), 3u);
    EXPECT_EQ(trace.launches[0].iteration, 0u);
    EXPECT_EQ(trace.launches[1].iteration, 1u);
    EXPECT_EQ(trace.launches[2].iteration, 1u);
}

TEST(Recorder, NeighborKernelHistogramsMatchGraph)
{
    const graph::Csr g = testutil::star(9);
    TraceRecorder rec("app", g, "star");
    rec.beginIteration();
    const std::vector<graph::NodeId> frontier = {0, 1};
    rec.neighborKernel({.name = "k"}, frontier);
    const AppTrace trace = rec.finish();
    const KernelLaunch &l = trace.launches[0];
    EXPECT_EQ(l.items, 2u);
    EXPECT_EQ(l.edges, 9u); // deg(0)=8, deg(1)=1
    EXPECT_TRUE(l.hasNeighborLoop);
    EXPECT_EQ(l.hist.totalItems(), 2u);
}

TEST(Recorder, SparseKernelPadsWithZeroDegreeItems)
{
    const graph::Csr g = testutil::path(10);
    TraceRecorder rec("app", g, "path");
    rec.beginIteration();
    const std::vector<graph::NodeId> active = {4};
    rec.neighborKernelSparse({.name = "k"}, active);
    const AppTrace trace = rec.finish();
    const KernelLaunch &l = trace.launches[0];
    EXPECT_EQ(l.items, 10u);
    EXPECT_EQ(l.edges, 2u);
    EXPECT_EQ(l.hist.totalItems(), 10u);
    EXPECT_EQ(l.hist.buckets[0], 9u); // 9 idle threads
}

TEST(Recorder, AllNodesKernelIsCachedAndCorrect)
{
    const graph::Csr g = testutil::triangle();
    TraceRecorder rec("app", g, "triangle");
    rec.beginIteration();
    rec.neighborKernelAllNodes({.name = "k1"});
    rec.neighborKernelAllNodes({.name = "k2"});
    const AppTrace trace = rec.finish();
    for (const KernelLaunch &l : trace.launches) {
        EXPECT_EQ(l.items, 3u);
        EXPECT_EQ(l.edges, 6u);
    }
}

TEST(Recorder, InnerSizeKernel)
{
    const graph::Csr g = testutil::path(4);
    TraceRecorder rec("app", g, "path");
    rec.beginIteration();
    const std::vector<std::uint64_t> sizes = {10, 20, 30};
    rec.innerSizeKernel({.name = "tri"}, sizes);
    const AppTrace trace = rec.finish();
    EXPECT_EQ(trace.launches[0].items, 3u);
    EXPECT_EQ(trace.launches[0].edges, 60u);
}

TEST(Recorder, FinishTwicePanics)
{
    const graph::Csr g = testutil::path(4);
    TraceRecorder rec("app", g, "path");
    rec.beginIteration();
    rec.flatKernel({.name = "k"}, 4);
    rec.finish();
    EXPECT_THROW(rec.finish(), PanicError);
}

TEST(Recorder, KernelParamsArePropagated)
{
    const graph::Csr g = testutil::path(4);
    TraceRecorder rec("app", g, "path");
    rec.beginIteration();
    KernelParams params;
    params.name = "k";
    params.contendedPushes = 7;
    params.scatteredRmw = 11;
    params.flatReads = 13;
    params.computePerItem = 2.5;
    params.hostSyncAfter = true;
    rec.flatKernel(params, 4);
    const AppTrace trace = rec.finish();
    const KernelLaunch &l = trace.launches[0];
    EXPECT_EQ(l.contendedPushes, 7u);
    EXPECT_EQ(l.scatteredRmw, 11u);
    EXPECT_EQ(l.flatReads, 13u);
    EXPECT_DOUBLE_EQ(l.computePerItem, 2.5);
    EXPECT_TRUE(l.hostSyncAfter);
    EXPECT_EQ(trace.hostSyncCount(), 1u);
}
