/**
 * @file
 * Tests for midrank assignment and the tie-correction term.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graphport/stats/ranks.hpp"

using namespace graphport::stats;

TEST(AverageRanks, NoTies)
{
    const auto r = averageRanks({30.0, 10.0, 20.0});
    EXPECT_EQ(r, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(AverageRanks, SimpleTie)
{
    // 10 and 10 share ranks 1 and 2 -> midrank 1.5.
    const auto r = averageRanks({10.0, 10.0, 20.0});
    EXPECT_EQ(r, (std::vector<double>{1.5, 1.5, 3.0}));
}

TEST(AverageRanks, AllTied)
{
    const auto r = averageRanks({5.0, 5.0, 5.0, 5.0});
    for (double x : r)
        EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(AverageRanks, Empty)
{
    EXPECT_TRUE(averageRanks({}).empty());
}

TEST(AverageRanks, RankSumInvariant)
{
    // Ranks always sum to n(n+1)/2, ties or not.
    const std::vector<std::vector<double>> cases = {
        {1, 2, 3, 4},
        {1, 1, 1, 4},
        {2, 2, 3, 3, 3, 9},
        {7},
    };
    for (const auto &v : cases) {
        const auto r = averageRanks(v);
        const double sum =
            std::accumulate(r.begin(), r.end(), 0.0);
        const double n = static_cast<double>(v.size());
        EXPECT_DOUBLE_EQ(sum, n * (n + 1.0) / 2.0);
    }
}

TEST(TieCorrection, NoTiesIsZero)
{
    EXPECT_DOUBLE_EQ(tieCorrectionTerm({1.0, 2.0, 3.0}), 0.0);
}

TEST(TieCorrection, KnownValues)
{
    // One group of 2: 2^3 - 2 = 6.
    EXPECT_DOUBLE_EQ(tieCorrectionTerm({1.0, 1.0, 3.0}), 6.0);
    // One group of 3: 27 - 3 = 24.
    EXPECT_DOUBLE_EQ(tieCorrectionTerm({2.0, 2.0, 2.0}), 24.0);
    // Two groups of 2: 6 + 6 = 12.
    EXPECT_DOUBLE_EQ(tieCorrectionTerm({1.0, 1.0, 2.0, 2.0}), 12.0);
}
