/**
 * @file
 * Integration test: run the full paper-scale study (17 apps x 3
 * inputs x 6 chips x 96 configs x 3 runs) and assert the headline
 * findings of the paper hold in the reproduction.
 */
#include <gtest/gtest.h>

#include "graphport/port/evaluate.hpp"
#include "graphport/port/heatmap.hpp"
#include "graphport/port/ranking.hpp"
#include "graphport/port/strategy.hpp"
#include "graphport/runner/dataset.hpp"

using namespace graphport;
using namespace graphport::port;

namespace {

/** The study dataset, built once for the whole test binary. */
const runner::Dataset &
study()
{
    static const runner::Dataset ds =
        runner::Dataset::build(runner::studyUniverse());
    return ds;
}

const Strategy &
chipStrategy()
{
    static const Strategy s = makeSpecialised(
        study(), Specialisation{false, false, true});
    return s;
}

const PartitionAnalysis &
chipAnalysis(const std::string &chip)
{
    const auto it = chipStrategy().partitions.find(chip + "|");
    EXPECT_NE(it, chipStrategy().partitions.end());
    return it->second;
}

} // namespace

TEST(Study, DatasetCoversPaperScale)
{
    EXPECT_EQ(study().numTests(), 306u);
    EXPECT_EQ(study().numConfigs(), 96u);
}

TEST(Study, OitergbDisabledExactlyOnNvidia)
{
    // Paper Section VIII-a / Table IX.
    for (const std::string &chip : study().universe().chips) {
        const Verdict v =
            chipAnalysis(chip).decisionFor(dsl::Opt::OiterGb).verdict;
        if (chip == "M4000" || chip == "GTX1080")
            EXPECT_NE(v, Verdict::Enable) << chip;
        else
            EXPECT_EQ(v, Verdict::Enable) << chip;
    }
}

TEST(Study, CoopCvEnabledExactlyOnR9AndIris)
{
    // Paper Section VIII-b / Table IX: only the chips whose OpenCL
    // stacks do not already combine subgroup atomics.
    for (const std::string &chip : study().universe().chips) {
        const Verdict v =
            chipAnalysis(chip).decisionFor(dsl::Opt::CoopCv).verdict;
        if (chip == "R9" || chip == "IRIS")
            EXPECT_EQ(v, Verdict::Enable) << chip;
        else
            EXPECT_NE(v, Verdict::Enable) << chip;
    }
}

TEST(Study, SgEnabledEverywhereIncludingMali)
{
    // Paper Section VIII-c: sg is enabled on every chip; on MALI the
    // speedup comes from its phase barriers, not load balancing.
    for (const std::string &chip : study().universe().chips) {
        EXPECT_EQ(
            chipAnalysis(chip).decisionFor(dsl::Opt::Sg).verdict,
            Verdict::Enable)
            << chip;
    }
}

TEST(Study, Sz256NeverRecommended)
{
    for (const std::string &chip : study().universe().chips) {
        EXPECT_NE(
            chipAnalysis(chip).decisionFor(dsl::Opt::Sz256).verdict,
            Verdict::Enable)
            << chip;
    }
}

TEST(Study, Fg8StronglyRecommendedOnDiscreteChips)
{
    for (const char *chip : {"M4000", "GTX1080", "R9"}) {
        const OptDecision &d =
            chipAnalysis(chip).decisionFor(dsl::Opt::Fg8);
        EXPECT_EQ(d.verdict, Verdict::Enable) << chip;
        EXPECT_GT(d.mwu.clEffectSize, 0.85) << chip;
    }
}

TEST(Study, BottomRankedCombosContainSz256OrWg)
{
    // Paper Table III: the worst global combinations all stack
    // sz256 with wg.
    const auto ranking = rankCombos(study());
    for (std::size_t i = ranking.size() - 5; i < ranking.size();
         ++i) {
        const dsl::OptConfig c =
            dsl::OptConfig::decode(ranking[i].config);
        EXPECT_TRUE(c.sz256 || c.wg) << ranking[i].label;
        EXPECT_LT(ranking[i].geomean, 1.05) << ranking[i].label;
    }
}

TEST(Study, TopRankedCombosAreFgOrSgFlavoured)
{
    const auto ranking = rankCombos(study());
    for (std::size_t i = 0; i < 3; ++i) {
        const dsl::OptConfig c =
            dsl::OptConfig::decode(ranking[i].config);
        EXPECT_TRUE(c.fg != dsl::FgMode::Off || c.sg || c.coopCv)
            << ranking[i].label;
        EXPECT_FALSE(c.sz256) << ranking[i].label;
        EXPECT_FALSE(c.wg) << ranking[i].label;
    }
}

TEST(Study, SpecialisationMonotonicallyClosesOracleGap)
{
    // Paper Figures 3 and 4: moving up the lattice never hurts and
    // slowdowns shrink with each dimension.
    const auto strategies = allStrategies(study());
    std::map<std::string, StrategyEval> evals;
    for (const Strategy &s : strategies)
        evals.emplace(s.name, evaluateStrategy(study(), s));

    const double baseline = evals.at("baseline").geomeanVsOracle;
    const double global = evals.at("global").geomeanVsOracle;
    EXPECT_LT(global, baseline);
    // Every 1-D strategy beats global; every 2-D beats its 1-D
    // subsets; the full specialisation beats everything.
    EXPECT_LE(evals.at("chip").geomeanVsOracle, global + 1e-9);
    EXPECT_LE(evals.at("app").geomeanVsOracle, global + 1e-9);
    EXPECT_LE(evals.at("input").geomeanVsOracle, global + 1e-9);
    EXPECT_LE(evals.at("chip_app_input").geomeanVsOracle,
              evals.at("chip").geomeanVsOracle + 0.02);
    // Slowdowns shrink towards zero with full specialisation.
    EXPECT_GT(evals.at("global").slowdowns,
              evals.at("chip_app_input").slowdowns);
    EXPECT_EQ(evals.at("chip_app_input").slowdowns, 0u);
    EXPECT_EQ(evals.at("oracle").slowdowns, 0u);
}

TEST(Study, ChipIsTheBestSingleDimensionForSpeedups)
{
    // Paper Section VII: "the optimal single dimension to specialise
    // for speedups is chip".
    const auto strategies = allStrategies(study());
    std::map<std::string, StrategyEval> evals;
    for (const Strategy &s : strategies)
        evals.emplace(s.name, evaluateStrategy(study(), s));
    EXPECT_GE(evals.at("chip").speedups, evals.at("app").speedups);
    EXPECT_GE(evals.at("chip").speedups,
              evals.at("input").speedups);
}

TEST(Study, PortableStrategyBeatsBaseline)
{
    // Paper abstract: a fully portable approach improves geomean
    // performance over not optimising at all.
    const StrategyEval global = evaluateStrategy(
        study(), makeSpecialised(study(),
                                 Specialisation{false, false, false}));
    EXPECT_GT(global.geomeanVsBaseline, 1.1);
    // ... and the global pick includes the paper's core portable
    // set {fg8, sg, oitergb}.
    const dsl::OptConfig cfg = dsl::OptConfig::decode(
        makeSpecialised(study(),
                        Specialisation{false, false, false})
            .configFor(0));
    EXPECT_EQ(cfg.fg, dsl::FgMode::Fg8);
    EXPECT_TRUE(cfg.sg);
    EXPECT_TRUE(cfg.oitergb);
}

TEST(Study, HeatmapShowsChipsAreADistinctDimension)
{
    // Paper Section II-A: no chip-specialised strategy is fully
    // portable; MALI suffers the most under foreign strategies.
    const Heatmap hm = computeHeatmap(study());
    const std::size_t n = hm.chips.size();
    for (std::size_t c = 0; c < n; ++c) {
        double worstOnOthers = 1.0;
        for (std::size_t r = 0; r < n; ++r) {
            if (r != c)
                worstOnOthers =
                    std::max(worstOnOthers, hm.cells[r][c]);
        }
        EXPECT_GT(worstOnOthers, 1.05) << hm.chips[c];
    }
    // MALI's row geomean is the largest.
    const auto maliIt = std::find(hm.chips.begin(), hm.chips.end(),
                                  "MALI");
    const std::size_t mali = maliIt - hm.chips.begin();
    for (std::size_t r = 0; r < n; ++r) {
        if (r != mali) {
            EXPECT_GT(hm.rowGeomean[mali], hm.rowGeomean[r])
                << hm.chips[r];
        }
    }
}

TEST(Study, ExtremeSlowdownsComeFromRoadInputs)
{
    // Paper Table II: every per-chip extreme lands on usa.ny (the
    // road-class input).
    unsigned roadCount = 0;
    const auto rows = computeEnvelope(study());
    for (const EnvelopeRow &row : rows)
        roadCount += row.slowdownInput == "road" ? 1 : 0;
    EXPECT_GE(roadCount, rows.size() - 1);
    // And the envelope is wide: some chip sees > 5x speedup and
    // some chip sees > 5x slowdown.
    double up = 1.0, down = 1.0;
    for (const EnvelopeRow &row : rows) {
        up = std::max(up, row.maxSpeedup);
        down = std::max(down, row.maxSlowdown);
    }
    EXPECT_GT(up, 5.0);
    EXPECT_GT(down, 5.0);
}

TEST(Study, NvidiaOnlyViewUnderstatesTheEnvelope)
{
    // Paper Section II-B: restricting to Nvidia chips hides most of
    // the envelope.
    double nvidiaUp = 1.0, allUp = 1.0;
    double nvidiaDown = 1.0, allDown = 1.0;
    for (const EnvelopeRow &row : computeEnvelope(study())) {
        allUp = std::max(allUp, row.maxSpeedup);
        allDown = std::max(allDown, row.maxSlowdown);
        if (row.chip == "M4000" || row.chip == "GTX1080") {
            nvidiaUp = std::max(nvidiaUp, row.maxSpeedup);
            nvidiaDown = std::max(nvidiaDown, row.maxSlowdown);
        }
    }
    EXPECT_GT(allUp, 1.5 * nvidiaUp);
    EXPECT_GT(allDown, 1.5 * nvidiaDown);
}

TEST(Study, DoNoHarmIsNearlyImpossible)
{
    // Paper Section II-C: (almost) every combination slows something
    // down; at most a couple of single-opt combos survive.
    const auto ranking = rankCombos(study());
    const NaiveAnalyses naive = naiveAnalyses(ranking);
    EXPECT_LE(naive.doNoHarm.size(), 3u);
    // And the fewest-slowdowns pick yields an underwhelming best
    // case compared to the oracle's envelope.
    const StrategyEval oracle =
        evaluateStrategy(study(), makeOracle(study()));
    EXPECT_LT(ranking.front().geomean,
              oracle.geomeanVsBaseline);
}
