/**
 * @file
 * Tests for the sampled-analysis experiment (the paper's Section IX
 * future-work direction).
 */
#include <gtest/gtest.h>

#include "graphport/port/sampling.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

TEST(Sampling, FullFractionAgreesExactly)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const SamplingResult r = sampledAnalysis(
        ds, Specialisation{false, false, true}, 1.0, 2);
    EXPECT_DOUBLE_EQ(r.verdictAgreement, 1.0);
    EXPECT_DOUBLE_EQ(r.configAgreement, 1.0);
    EXPECT_GE(r.geomeanVsOracle, 1.0);
}

TEST(Sampling, ResultsAreWellFormed)
{
    const runner::Dataset &ds = testutil::smallDataset();
    for (double fraction : {0.25, 0.5, 0.75}) {
        const SamplingResult r = sampledAnalysis(
            ds, Specialisation{false, false, true}, fraction, 3);
        EXPECT_DOUBLE_EQ(r.sampleFraction, fraction);
        EXPECT_EQ(r.trials, 3u);
        EXPECT_GE(r.verdictAgreement, 0.0);
        EXPECT_LE(r.verdictAgreement, 1.0);
        EXPECT_GE(r.configAgreement, 0.0);
        EXPECT_LE(r.configAgreement, 1.0);
        EXPECT_GE(r.geomeanVsOracle, 1.0);
    }
}

TEST(Sampling, AgreementGrowsWithFraction)
{
    // Not strictly monotone per trial, but the endpoints must order.
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const SamplingResult tiny = sampledAnalysis(
        ds, Specialisation{false, false, true}, 0.15, 4);
    const SamplingResult full = sampledAnalysis(
        ds, Specialisation{false, false, true}, 1.0, 4);
    EXPECT_LE(tiny.verdictAgreement, full.verdictAgreement + 1e-12);
    EXPECT_DOUBLE_EQ(full.verdictAgreement, 1.0);
}

TEST(Sampling, DeterministicPerSeed)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const SamplingResult a = sampledAnalysis(
        ds, Specialisation{false, false, false}, 0.5, 3, 77);
    const SamplingResult b = sampledAnalysis(
        ds, Specialisation{false, false, false}, 0.5, 3, 77);
    EXPECT_DOUBLE_EQ(a.verdictAgreement, b.verdictAgreement);
    EXPECT_DOUBLE_EQ(a.geomeanVsOracle, b.geomeanVsOracle);
}

TEST(Sampling, RejectsBadParameters)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const Specialisation spec{false, false, true};
    EXPECT_THROW(sampledAnalysis(ds, spec, 0.0, 3), FatalError);
    EXPECT_THROW(sampledAnalysis(ds, spec, 1.5, 3), FatalError);
    EXPECT_THROW(sampledAnalysis(ds, spec, 0.5, 0), FatalError);
}

TEST(Sampling, WorksAcrossTheLattice)
{
    const runner::Dataset &ds = testutil::smallDataset();
    for (const Specialisation &spec : Specialisation::lattice()) {
        const SamplingResult r =
            sampledAnalysis(ds, spec, 0.5, 2);
        EXPECT_GE(r.geomeanVsOracle, 1.0) << spec.name();
    }
}
