/**
 * @file
 * calib::Fitter: perturbed-recovery, thread-count determinism, and
 * the snapshot discipline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graphport/calib/fitter.hpp"
#include "graphport/calib/params.hpp"
#include "graphport/sim/chip.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

calib::FitOptions
quickOptions(unsigned threads = 1)
{
    calib::FitOptions opts;
    opts.starts = 6;
    opts.maxIters = 300;
    opts.threads = threads;
    return opts;
}

} // namespace

TEST(CalibFitter, PerturbIsSeededDeterministicAndInBounds)
{
    const sim::ChipModel &base = sim::chipByName("HD5500");
    const sim::ChipModel a = calib::perturbChipParams(base, 0.3, 7);
    const sim::ChipModel b = calib::perturbChipParams(base, 0.3, 7);
    const sim::ChipModel c = calib::perturbChipParams(base, 0.3, 8);
    EXPECT_EQ(calib::paramsOf(a), calib::paramsOf(b));
    EXPECT_NE(calib::paramsOf(a), calib::paramsOf(c));
    EXPECT_NE(calib::paramsOf(a), calib::paramsOf(base));
    EXPECT_TRUE(calib::insideBounds(calib::paramsOf(a)));
    EXPECT_EQ(a.shortName, base.shortName);
    EXPECT_NO_THROW(a.validate());
}

// The acceptance criterion: started from perturbed parameters, the
// fitter recovers every paper chip inside its §13 tolerance window.
TEST(CalibFitter, RecoversEveryPerturbedPaperChipWithinTolerance)
{
    const std::vector<std::string> names = sim::allChipNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const sim::ChipModel &base = sim::chipByName(names[i]);
        const calib::Objective objective(base);
        const sim::ChipModel start =
            calib::perturbChipParams(base, 0.3, 1000 + i);
        // The perturbed start is (usually) out of tolerance — the
        // fit has real work to do.
        const calib::FitResult fit =
            calib::fitChip(objective, start, quickOptions());
        EXPECT_TRUE(fit.withinTolerance) << names[i];
        EXPECT_TRUE(objective.withinTolerance(fit.chip)) << names[i];
        EXPECT_LT(fit.loss, objective.lossOf(start) + 1e-12)
            << names[i];
        EXPECT_GT(fit.evals, 0u) << names[i];
        EXPECT_EQ(fit.chip.shortName, names[i]);
        EXPECT_NO_THROW(fit.chip.validate());
    }
}

// The other acceptance criterion: bit-identical at any thread count.
TEST(CalibFitter, BitIdenticalAcrossThreadCounts)
{
    const sim::ChipModel &base = sim::chipByName("IRIS");
    const calib::Objective objective(base);
    const sim::ChipModel start =
        calib::perturbChipParams(base, 0.3, 99);
    const calib::FitResult serial =
        calib::fitChip(objective, start, quickOptions(1));
    for (unsigned threads : {4u, 8u}) {
        const calib::FitResult parallel =
            calib::fitChip(objective, start, quickOptions(threads));
        EXPECT_EQ(parallel.params, serial.params)
            << threads << " threads";
        EXPECT_EQ(parallel.loss, serial.loss);
        EXPECT_EQ(parallel.evals, serial.evals);
        EXPECT_EQ(parallel.bestStart, serial.bestStart);
    }
}

TEST(CalibFitter, MultiStartRecoversFromAnUninformativeStart)
{
    // Start from the geometric middle of the box — no chip looks
    // like that — and rely on the seeded multi-start to find R9.
    const sim::ChipModel &base = sim::chipByName("R9");
    const calib::Objective objective(base);
    std::vector<double> mid;
    for (const calib::ParamSpec &p : calib::freeParams())
        mid.push_back(std::sqrt(p.lo * p.hi));
    const sim::ChipModel start = calib::withParams(base, mid);
    calib::FitOptions opts = quickOptions();
    opts.starts = 8;
    const calib::FitResult fit = calib::fitChip(objective, start, opts);
    EXPECT_TRUE(fit.withinTolerance);
}

TEST(CalibFitter, RejectsDegenerateOptions)
{
    const calib::Objective objective(sim::chipByName("R9"));
    calib::FitOptions opts;
    opts.starts = 0;
    EXPECT_THROW(
        calib::fitChip(objective, sim::chipByName("R9"), opts),
        FatalError);
    opts.starts = 1;
    opts.maxIters = 0;
    EXPECT_THROW(
        calib::fitChip(objective, sim::chipByName("R9"), opts),
        FatalError);
}

TEST(CalibFitter, SnapshotRoundTripsBitExactly)
{
    calib::FitOptions opts = quickOptions();
    opts.starts = 2;
    opts.maxIters = 60;
    std::vector<calib::FitResult> fits;
    for (const char *name : {"M4000", "MALI"}) {
        const sim::ChipModel &base = sim::chipByName(name);
        fits.push_back(
            calib::fitChip(calib::Objective(base), base, opts));
    }
    std::stringstream ss;
    calib::saveRoster(fits, ss);
    const std::vector<calib::FitResult> loaded =
        calib::loadRoster(ss, "test");
    ASSERT_EQ(loaded.size(), fits.size());
    for (std::size_t i = 0; i < fits.size(); ++i) {
        EXPECT_EQ(loaded[i].chip.shortName, fits[i].chip.shortName);
        EXPECT_EQ(loaded[i].params, fits[i].params); // hexfloat exact
        EXPECT_EQ(loaded[i].loss, fits[i].loss);
        EXPECT_EQ(loaded[i].evals, fits[i].evals);
        EXPECT_EQ(loaded[i].withinTolerance, fits[i].withinTolerance);
        EXPECT_EQ(loaded[i].objectiveHash, fits[i].objectiveHash);
    }
}

TEST(CalibFitter, LoadFailsWithCause)
{
    calib::FitOptions opts = quickOptions();
    opts.starts = 1;
    opts.maxIters = 40;
    const sim::ChipModel &base = sim::chipByName("GTX1080");
    std::vector<calib::FitResult> fits = {
        calib::fitChip(calib::Objective(base), base, opts)};
    std::stringstream good;
    calib::saveRoster(fits, good);
    const std::string snapshot = good.str();

    const auto expectRejects = [](const std::string &text,
                                  const std::string &needle) {
        std::stringstream in(text);
        try {
            calib::loadRoster(in, "test");
            FAIL() << "expected rejection mentioning '" << needle
                   << "'";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };

    expectRejects("not,a,snapshot\n", "bad magic");
    {
        std::string wrongVersion = snapshot;
        const std::string header = "graphport-calib,2";
        ASSERT_EQ(wrongVersion.rfind(header, 0), 0u);
        wrongVersion.replace(0, header.size(),
                             "graphport-calib,99");
        expectRejects(wrongVersion, "format version");
    }
    {
        // Flip the stored objective hash (and reseal the file-level
        // checksum): the fit is semantically stale.
        std::string stale = snapshot;
        const std::size_t at = stale.find("chip,GTX1080,") +
                               std::string("chip,GTX1080,").size();
        stale[at] = stale[at] == '0' ? '1' : '0';
        expectRejects(testutil::resealSnapshot(stale),
                      "different objective");
    }
    {
        std::string drifted = snapshot;
        drifted.replace(drifted.find("param,contendedRmwNs"),
                        std::string("param,contendedRmwNs").size(),
                        "param,nonexistentKnob");
        expectRejects(testutil::resealSnapshot(drifted),
                      "registry drift");
    }
    // A tampered sum row trips the whole-file checksum.
    {
        std::string badSum = snapshot;
        const std::size_t at = badSum.find("\nsum,");
        ASSERT_NE(at, std::string::npos);
        char &digit = badSum[at + 5];
        digit = digit == '0' ? '1' : '0';
        expectRejects(badSum, "checksum mismatch");
    }
    expectRejects(snapshot.substr(0, snapshot.size() / 2),
                  "truncated");
}

TEST(CalibFitter, FitOrLoadCachedDegradesToRefit)
{
    const std::string path =
        testing::TempDir() + "/calib_cache_test.gpc";
    {
        std::ofstream out(path);
        out << "garbage that is not a snapshot\n";
    }
    calib::FitOptions opts = quickOptions();
    opts.starts = 1;
    opts.maxIters = 40;
    // Rejects the garbage with a warning, refits, saves.
    testing::internal::CaptureStderr();
    const std::vector<calib::FitResult> first =
        calib::fitOrLoadCached(path, opts);
    const std::string warning =
        testing::internal::GetCapturedStderr();
    EXPECT_NE(warning.find("rejected"), std::string::npos);
    ASSERT_EQ(first.size(), sim::allChipNames().size());

    // Second call loads the freshly written snapshot bit-exactly.
    const std::vector<calib::FitResult> second =
        calib::fitOrLoadCached(path, opts);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].params, first[i].params);
        EXPECT_EQ(second[i].loss, first[i].loss);
    }
    std::remove(path.c_str());
}
