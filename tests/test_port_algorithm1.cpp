/**
 * @file
 * Tests for Algorithm 1 (OPTS_FOR_PARTITION / ENABLE_OPT) and the
 * fg-conflict resolution.
 */
#include <gtest/gtest.h>

#include "graphport/port/algorithm1.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::port;

namespace {

std::vector<std::size_t>
allTests(const runner::Dataset &ds)
{
    std::vector<std::size_t> tests(ds.numTests());
    for (std::size_t t = 0; t < tests.size(); ++t)
        tests[t] = t;
    return tests;
}

} // namespace

TEST(Algorithm1, ProducesOneDecisionPerOpt)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const PartitionAnalysis pa =
        optsForPartition(ds, allTests(ds));
    EXPECT_EQ(pa.decisions.size(), dsl::allOpts().size());
    for (dsl::Opt opt : dsl::allOpts())
        EXPECT_EQ(pa.decisionFor(opt).opt, dsl::knobOf(opt));
}

TEST(Algorithm1, VerdictsAreConsistentWithStatistics)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const PartitionAnalysis pa =
        optsForPartition(ds, allTests(ds));
    for (const OptDecision &d : pa.decisions) {
        EXPECT_GE(d.mwu.p, 0.0);
        EXPECT_LE(d.mwu.p, 1.0);
        switch (d.verdict) {
          case Verdict::Enable:
            EXPECT_TRUE(d.mwu.significant());
            EXPECT_LT(d.medianRatio, 1.0);
            break;
          case Verdict::Disable:
            EXPECT_TRUE(d.mwu.significant());
            EXPECT_GE(d.medianRatio, 1.0);
            break;
          case Verdict::Inconclusive:
            if (d.significantPairs > 0) {
                EXPECT_FALSE(d.mwu.significant());
            }
            break;
        }
    }
}

TEST(Algorithm1, EnabledOptsAppearInConfig)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const PartitionAnalysis pa =
        optsForPartition(ds, allTests(ds));
    for (const OptDecision &d : pa.decisions) {
        if (d.verdict != Verdict::Enable)
            continue;
        const bool fgVariant =
            d.opt == dsl::Knob::Fg1 || d.opt == dsl::Knob::Fg8;
        if (!fgVariant) {
            EXPECT_TRUE(pa.config.has(d.opt))
                << dsl::knobName(d.opt);
        } else {
            // At least one fg variant must be selected.
            EXPECT_NE(pa.config.fg, dsl::FgMode::Off);
        }
    }
}

TEST(Algorithm1, EmptyPartitionIsAllInconclusive)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const PartitionAnalysis pa = optsForPartition(ds, {});
    for (const OptDecision &d : pa.decisions) {
        EXPECT_EQ(d.verdict, Verdict::Inconclusive);
        EXPECT_EQ(d.significantPairs, 0u);
    }
    EXPECT_TRUE(pa.config.isBaseline());
}

TEST(Algorithm1, StricterAlphaEnablesFewerOpts)
{
    const runner::Dataset &ds = testutil::smallDataset();
    const PartitionAnalysis loose =
        optsForPartition(ds, allTests(ds), 0.05);
    const PartitionAnalysis strict =
        optsForPartition(ds, allTests(ds), 1e-12);
    unsigned looseEnabled = 0, strictEnabled = 0;
    for (std::size_t i = 0; i < loose.decisions.size(); ++i) {
        looseEnabled +=
            loose.decisions[i].verdict == Verdict::Enable ? 1 : 0;
        strictEnabled +=
            strict.decisions[i].verdict == Verdict::Enable ? 1 : 0;
    }
    EXPECT_LE(strictEnabled, looseEnabled);
}

TEST(ResolveConfig, PlainEnables)
{
    std::vector<OptDecision> decisions(3);
    decisions[0].opt = dsl::Knob::Sg;
    decisions[0].verdict = Verdict::Enable;
    decisions[1].opt = dsl::Knob::CoopCv;
    decisions[1].verdict = Verdict::Disable;
    decisions[2].opt = dsl::Knob::OiterGb;
    decisions[2].verdict = Verdict::Inconclusive;
    const dsl::Schedule c = resolveConfig(decisions);
    EXPECT_TRUE(c.sg);
    EXPECT_FALSE(c.coopCv);
    EXPECT_FALSE(c.oitergb);
}

TEST(ResolveConfig, FgConflictPicksStrongerMedian)
{
    std::vector<OptDecision> decisions(2);
    decisions[0].opt = dsl::Knob::Fg1;
    decisions[0].verdict = Verdict::Enable;
    decisions[0].medianRatio = 0.9;
    decisions[1].opt = dsl::Knob::Fg8;
    decisions[1].verdict = Verdict::Enable;
    decisions[1].medianRatio = 0.7; // stronger speedup
    EXPECT_EQ(resolveConfig(decisions).fg, dsl::FgMode::Fg8);

    decisions[0].medianRatio = 0.5; // now fg1 stronger
    EXPECT_EQ(resolveConfig(decisions).fg, dsl::FgMode::Fg1);
}

TEST(ResolveConfig, SingleFgVariant)
{
    std::vector<OptDecision> decisions(1);
    decisions[0].opt = dsl::Knob::Fg1;
    decisions[0].verdict = Verdict::Enable;
    EXPECT_EQ(resolveConfig(decisions).fg, dsl::FgMode::Fg1);
    decisions[0].opt = dsl::Knob::Fg8;
    EXPECT_EQ(resolveConfig(decisions).fg, dsl::FgMode::Fg8);
}

TEST(PartitionAnalysis, DecisionForUnknownPanics)
{
    PartitionAnalysis pa;
    EXPECT_THROW(pa.decisionFor(dsl::Opt::Sg), PanicError);
}

TEST(Algorithm1, ChipPartitionsDisagree)
{
    // The heart of the paper: different chips yield different
    // recommended configurations.
    const runner::Dataset &ds = testutil::smallAllChipDataset();
    const PartitionAnalysis nv =
        optsForPartition(ds, ds.testsWhere("", "", "GTX1080"));
    const PartitionAnalysis mali =
        optsForPartition(ds, ds.testsWhere("", "", "MALI"));
    EXPECT_NE(nv.config.encode(), mali.config.encode());
    // oitergb must split Nvidia from MALI even at small scale.
    EXPECT_FALSE(nv.config.oitergb);
    EXPECT_TRUE(mali.config.oitergb);
}
