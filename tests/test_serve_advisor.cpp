/**
 * @file
 * Tests for serve::Advisor and the batch front-end: lattice descent
 * tier by tier, predictive fallback equivalence with
 * port::predictConfig, LRU-cached feature lookups answering
 * bit-identically to cold ones, and parallel batches matching serial.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graphport/port/predict.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/batch.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/serve/loadgen.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

/** Index over the 4-app x {road, social} x {M4000, R9} dataset. */
const serve::StrategyIndex &
smallIndex()
{
    static const serve::StrategyIndex index =
        serve::StrategyIndex::build(testutil::smallDataset());
    return index;
}

const serve::Advisor &
advisor()
{
    static const serve::Advisor adv(smallIndex());
    return adv;
}

} // namespace

TEST(ServeAdvisor, ExactQueryAnswersAtMostSpecialisedTier)
{
    const serve::Advice a =
        advisor().advise({"bfs-topo", "road", "M4000"});
    EXPECT_EQ(a.tier, "chip_app_input");
    EXPECT_FALSE(a.predictive);
    EXPECT_EQ(a.partition, "bfs-topo|road|M4000|");
    const port::StrategyTable &table =
        smallIndex().table("chip_app_input");
    const unsigned *cfg = table.configFor(a.partition);
    ASSERT_NE(cfg, nullptr);
    EXPECT_EQ(a.config, *cfg);
    EXPECT_EQ(a.expectedSlowdownVsOracle, table.geomeanVsOracle);
    EXPECT_EQ(a.featureSource, serve::FeatureSource::None);
}

TEST(ServeAdvisor, InputClassResolvesToSameAnswerAsName)
{
    const serve::Advice byName =
        advisor().advise({"bfs-wl", "social", "R9"});
    const serve::Advice byClass =
        advisor().advise({"bfs-wl", "social network", "R9"});
    EXPECT_TRUE(byName.sameAnswer(byClass));
    EXPECT_EQ(byClass.tier, "chip_app_input");
}

TEST(ServeAdvisor, UnseenInputDegradesToChipAppTier)
{
    // "random" is a study input class but not part of the small
    // universe, so the input dimension is unknown here.
    const serve::Advice a =
        advisor().advise({"bfs-topo", "random", "M4000"});
    EXPECT_EQ(a.tier, "chip_app");
    EXPECT_FALSE(a.predictive);
    EXPECT_EQ(a.partition, "bfs-topo|M4000|");
    const unsigned *cfg =
        smallIndex().table("chip_app").configFor(a.partition);
    ASSERT_NE(cfg, nullptr);
    EXPECT_EQ(a.config, *cfg);
}

TEST(ServeAdvisor, UnknownAppDegradesToChipInputTier)
{
    const serve::Advice a =
        advisor().advise({"pr-topo", "road", "M4000"});
    EXPECT_EQ(a.tier, "chip_input");
    EXPECT_FALSE(a.predictive);
    EXPECT_EQ(a.partition, "road|M4000|");
}

TEST(ServeAdvisor, UnknownAppAndInputDegradeToChipTier)
{
    const serve::Advice a =
        advisor().advise({"pr-topo", "intranet", "R9"});
    EXPECT_EQ(a.tier, "chip");
    EXPECT_FALSE(a.predictive);
    EXPECT_EQ(a.partition, "R9|");
}

TEST(ServeAdvisor, LatticeAlwaysAnswersWhenChipIsKnown)
{
    // Even a fully foreign (app, input) gets a lattice answer when
    // the chip was measured: the predictor is only for unknown chips.
    const serve::Advice a =
        advisor().advise({"no-such-app", "no-such-input", "M4000"});
    EXPECT_FALSE(a.predictive);
    EXPECT_NE(a.tier, "predictive");
}

TEST(ServeAdvisor, UnknownChipMatchesPortPredictConfig)
{
    // GTX1080 is a real registry chip but absent from the small
    // universe: the advisor must route to the predictive path and
    // answer exactly what port::predictConfig answers.
    const serve::Advice a =
        advisor().advise({"bfs-topo", "road", "GTX1080"});
    EXPECT_TRUE(a.predictive);
    EXPECT_EQ(a.tier, "predictive");
    EXPECT_EQ(a.featureSource, serve::FeatureSource::Snapshot);
    EXPECT_EQ(a.expectedSlowdownVsOracle,
              smallIndex().predictiveGeomean());

    const runner::Dataset &ds = testutil::smallDataset();
    const auto traces = port::collectTraces(ds.universe());
    const unsigned expected = port::predictConfig(
        ds, traces, "bfs-topo", "road", smallIndex().knnK());
    EXPECT_EQ(a.config, expected);
}

TEST(ServeAdvisor, CachedRepeatIsBitIdenticalToCold)
{
    // pr-topo is outside the small index, so its features must be
    // traced on demand: cold answer computes, warm answer hits the
    // LRU, and both carry the identical advice.
    const serve::Advisor adv(smallIndex());
    const serve::Query q{"pr-topo", "road", "GTX1080"};
    const serve::Advice cold = adv.advise(q);
    EXPECT_EQ(cold.featureSource, serve::FeatureSource::Computed);
    const serve::Advice warm = adv.advise(q);
    EXPECT_EQ(warm.featureSource, serve::FeatureSource::Cache);
    EXPECT_TRUE(cold.sameAnswer(warm));
    EXPECT_EQ(cold.config, warm.config);
    EXPECT_EQ(adv.featureCacheHits(), 1u);
    EXPECT_EQ(adv.featureCacheMisses(), 1u);
}

TEST(ServeAdvisor, UnansweredQueryIsFatal)
{
    // Unknown chip plus an input the study can neither resolve nor
    // generate: nothing can answer.
    EXPECT_THROW(
        advisor().advise({"bfs-topo", "no-such-input", "GTX1080"}),
        FatalError);
}

TEST(ServeBatch, ParallelBatchBitIdenticalToSerial)
{
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 400, 7);
    const serve::Advisor adv(smallIndex());
    serve::ServerStats serialStats;
    const std::vector<serve::Advice> serial =
        serve::serveBatch(adv, stream, 1, &serialStats);
    serve::ServerStats parallelStats;
    const std::vector<serve::Advice> parallel =
        serve::serveBatch(adv, stream, 4, &parallelStats);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i].sameAnswer(parallel[i])) << i;

    EXPECT_EQ(parallelStats.threads, 4u);
    EXPECT_EQ(parallelStats.queries, stream.size());
    EXPECT_EQ(parallelStats.latency.count(), stream.size());
    std::size_t tierTotal = 0;
    for (const auto &[tier, count] : parallelStats.tierCounts)
        tierTotal += count;
    EXPECT_EQ(tierTotal, stream.size());
    EXPECT_GT(parallelStats.qps(), 0.0);
}

TEST(ServeBatch, QueryStreamIsDeterministic)
{
    const std::vector<serve::Query> a =
        serve::makeQueryStream(smallIndex(), 100, 9);
    const std::vector<serve::Query> b =
        serve::makeQueryStream(smallIndex(), 100, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].app, b[i].app);
        EXPECT_EQ(a[i].input, b[i].input);
        EXPECT_EQ(a[i].chip, b[i].chip);
    }
}

TEST(ServeBatch, ParsesCsvWithOptionalHeader)
{
    std::istringstream is("app,input,chip\n"
                          "bfs-topo,road,M4000\n"
                          "\n"
                          "bfs-wl,social,R9\n");
    const std::vector<serve::Query> queries =
        serve::parseQueries(is);
    ASSERT_EQ(queries.size(), 2u);
    EXPECT_EQ(queries[0].app, "bfs-topo");
    EXPECT_EQ(queries[1].chip, "R9");
}

TEST(ServeBatch, ParsesJsonLines)
{
    std::istringstream is(
        "{\"app\": \"bfs-topo\", \"input\": \"road\", "
        "\"chip\": \"M4000\"}\n"
        "{\"chip\": \"R9\", \"app\": \"bfs-wl\", "
        "\"input\": \"social\"}\n");
    const std::vector<serve::Query> queries =
        serve::parseQueries(is);
    ASSERT_EQ(queries.size(), 2u);
    EXPECT_EQ(queries[0].input, "road");
    EXPECT_EQ(queries[1].app, "bfs-wl");
    EXPECT_EQ(queries[1].chip, "R9");
}

TEST(ServeBatch, MalformedQueriesAreFatal)
{
    std::istringstream shortRow("bfs-topo,road\n");
    EXPECT_THROW(serve::parseQueries(shortRow), FatalError);
    std::istringstream badJson("{\"app\": \"x\", \"input\": 3}\n");
    EXPECT_THROW(serve::parseQueries(badJson), FatalError);
}

TEST(ServeBatch, WriteAnswersRoundTripsCsv)
{
    const std::vector<serve::Query> queries = {
        {"bfs-topo", "road", "M4000"}};
    const std::vector<serve::Advice> advices =
        serve::serveBatch(advisor(), queries, 1);
    std::ostringstream os;
    serve::writeAnswers(os, queries, advices);
    const std::string text = os.str();
    EXPECT_NE(text.find("app,input,chip,config"), std::string::npos);
    EXPECT_NE(text.find("chip_app_input"), std::string::npos);
}
