/**
 * @file
 * Tests for the dataset sweep: determinism, indexing, significance
 * classification, and CSV persistence.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graphport/runner/dataset.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::runner;

TEST(Dataset, DimensionsMatchUniverse)
{
    const Dataset &ds = testutil::smallDataset();
    EXPECT_EQ(ds.numTests(), ds.universe().numTests());
    EXPECT_EQ(ds.numConfigs(), 96u);
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        for (unsigned cfg : {0u, 40u, 95u})
            EXPECT_EQ(ds.runs(t, cfg).size(), ds.universe().runs);
    }
}

TEST(Dataset, TestIndexRoundTrips)
{
    const Dataset &ds = testutil::smallDataset();
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const runner::Test test = ds.testAt(t);
        EXPECT_EQ(ds.testIndex(test.app, test.input, test.chip), t);
    }
    EXPECT_THROW(ds.testIndex("nope", "road", "M4000"), FatalError);
    EXPECT_THROW(ds.testIndex("bfs-topo", "nope", "M4000"),
                 FatalError);
    EXPECT_THROW(ds.testIndex("bfs-topo", "road", "nope"),
                 FatalError);
}

TEST(Dataset, TestsWhereFilters)
{
    const Dataset &ds = testutil::smallDataset();
    const auto byChip = ds.testsWhere("", "", "M4000");
    EXPECT_EQ(byChip.size(), ds.universe().apps.size() *
                                 ds.universe().inputs.size());
    for (std::size_t t : byChip)
        EXPECT_EQ(ds.testAt(t).chip, "M4000");
    const auto all = ds.testsWhere("", "", "");
    EXPECT_EQ(all.size(), ds.numTests());
}

TEST(Dataset, BuildIsDeterministic)
{
    const Universe u = smallUniverse(2, {"M4000"});
    const Dataset a = Dataset::build(u);
    const Dataset b = Dataset::build(u);
    for (std::size_t t = 0; t < a.numTests(); ++t) {
        for (unsigned cfg = 0; cfg < a.numConfigs(); ++cfg)
            ASSERT_EQ(a.runs(t, cfg), b.runs(t, cfg));
    }
}

TEST(Dataset, RunsArePositiveAndNoisy)
{
    const Dataset &ds = testutil::smallDataset();
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const auto &rs = ds.runs(t, 0);
        for (double r : rs)
            ASSERT_GT(r, 0.0);
        // Repeated runs differ (noise) but not wildly.
        EXPECT_NE(rs[0], rs[1]);
        EXPECT_NEAR(rs[0] / rs[1], 1.0, 0.5);
    }
}

TEST(Dataset, SummariesMatchRuns)
{
    const Dataset &ds = testutil::smallDataset();
    const auto &runs = ds.runs(0, 0);
    const stats::SampleSummary &s = ds.summary(0, 0);
    EXPECT_EQ(s.n, runs.size());
    EXPECT_DOUBLE_EQ(s.mean, ds.meanNs(0, 0));
}

TEST(Dataset, OutcomeClassification)
{
    const Dataset &ds = testutil::smallDataset();
    const unsigned baseline = dsl::OptConfig::baseline().encode();
    // Self comparison is never significant.
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        EXPECT_FALSE(ds.significant(t, baseline, baseline));
        EXPECT_EQ(ds.outcome(t, baseline, baseline),
                  Outcome::NoChange);
    }
}

TEST(Dataset, BestConfigIsActuallyBest)
{
    const Dataset &ds = testutil::smallDataset();
    for (std::size_t t = 0; t < ds.numTests(); ++t) {
        const unsigned best = ds.bestConfig(t);
        for (unsigned cfg = 0; cfg < ds.numConfigs(); ++cfg)
            ASSERT_LE(ds.meanNs(t, best), ds.meanNs(t, cfg));
    }
}

TEST(Dataset, CsvRoundTrip)
{
    const Universe u = smallUniverse(2, {"M4000", "MALI"});
    const Dataset original = Dataset::build(u);
    std::stringstream ss;
    original.saveCsv(ss);
    const Dataset loaded = Dataset::loadCsv(u, ss);
    for (std::size_t t = 0; t < original.numTests(); ++t) {
        for (unsigned cfg = 0; cfg < original.numConfigs(); ++cfg) {
            const auto &a = original.runs(t, cfg);
            const auto &b = loaded.runs(t, cfg);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t r = 0; r < a.size(); ++r)
                ASSERT_NEAR(a[r], b[r], 1e-2);
        }
    }
}

TEST(Dataset, LoadRejectsWrongHeader)
{
    const Universe u = smallUniverse(2, {"M4000"});
    std::stringstream ss("wrong,header\n");
    EXPECT_THROW(Dataset::loadCsv(u, ss), FatalError);
}

TEST(Dataset, LoadRejectsIncompleteData)
{
    const Universe u = smallUniverse(2, {"M4000"});
    std::stringstream ss("app,input,chip,config,run,ns\n"
                         "bfs-topo,road,M4000,0,0,123.0\n");
    EXPECT_THROW(Dataset::loadCsv(u, ss), FatalError);
}

TEST(Dataset, LoadRejectsUnknownNames)
{
    const Universe u = smallUniverse(2, {"M4000"});
    std::stringstream ss("app,input,chip,config,run,ns\n"
                         "who,road,M4000,0,0,123.0\n");
    EXPECT_THROW(Dataset::loadCsv(u, ss), FatalError);
}

TEST(Dataset, LoadErrorsNameLineAndColumn)
{
    // Rejects are diagnosable without binary-searching the file: the
    // message names the 1-based line and the offending column.
    const Universe u = smallUniverse(2, {"M4000"});
    std::stringstream ss("app,input,chip,config,run,ns\n"
                         "bfs-topo,road,M4000,0,0,123.0\n"
                         "who,road,M4000,0,1,456.0\n");
    try {
        Dataset::loadCsv(u, ss);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("unknown app 'who'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("column 1"), std::string::npos) << what;
    }
}

TEST(Dataset, BadCountErrorsNameLineAndColumn)
{
    const Universe u = smallUniverse(2, {"M4000"});
    std::stringstream ss("app,input,chip,config,run,ns\n"
                         "bfs-topo,road,M4000,abc,0,123.0\n");
    try {
        Dataset::loadCsv(u, ss);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("bad config count 'abc'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("column 4"), std::string::npos) << what;
    }
}

TEST(Dataset, LoadRejectsDuplicateRows)
{
    // A duplicate (app, input, chip, config, run) row used to
    // silently overwrite the earlier value; now it is a load error.
    const Universe u = smallUniverse(2, {"M4000"});
    std::stringstream ss("app,input,chip,config,run,ns\n"
                         "bfs-topo,road,M4000,0,0,123.0\n"
                         "bfs-topo,road,M4000,0,0,456.0\n");
    EXPECT_THROW(Dataset::loadCsv(u, ss), FatalError);
}

TEST(Dataset, ChipOrderingOfRuntimes)
{
    // Same app/input: MALI must be slower than GTX1080 at baseline —
    // a basic sanity check that chip identity flows through.
    const Dataset &ds = testutil::smallAllChipDataset();
    const unsigned baseline = dsl::OptConfig::baseline().encode();
    for (const std::string &app : ds.universe().apps) {
        for (const auto &input : ds.universe().inputs) {
            const double gtx = ds.meanNs(
                ds.testIndex(app, input.name, "GTX1080"), baseline);
            const double mali = ds.meanNs(
                ds.testIndex(app, input.name, "MALI"), baseline);
            EXPECT_GT(mali, gtx) << app << "/" << input.name;
        }
    }
}

TEST(Dataset, ContentHashIsDeterministic)
{
    const Universe u = smallUniverse(2, {"M4000"});
    const Dataset a = Dataset::build(u);
    const Dataset b = Dataset::build(u);
    EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(Dataset, ContentHashSeparatesUniverses)
{
    const Dataset a =
        Dataset::build(smallUniverse(2, {"M4000"}));
    const Dataset b = Dataset::build(smallUniverse(2, {"R9"}));
    const Dataset c =
        Dataset::build(smallUniverse(3, {"M4000"}));
    EXPECT_NE(a.contentHash(), b.contentHash());
    EXPECT_NE(a.contentHash(), c.contentHash());
}

TEST(Dataset, ContentHashOfLoadedCsvIsAFixpoint)
{
    // saveCsv rounds timings to 3 decimals, so a loaded dataset may
    // hash differently from the in-memory build — but loading is
    // deterministic, and a loaded dataset round-trips its own CSV
    // with the hash intact.
    const Universe u = smallUniverse(2, {"M4000"});
    const Dataset built = Dataset::build(u);
    std::stringstream first;
    built.saveCsv(first);
    const std::string text = first.str();

    std::stringstream a(text);
    std::stringstream b(text);
    const Dataset loadedA = Dataset::loadCsv(u, a);
    const Dataset loadedB = Dataset::loadCsv(u, b);
    EXPECT_EQ(loadedA.contentHash(), loadedB.contentHash());

    std::stringstream second;
    loadedA.saveCsv(second);
    std::stringstream again(second.str());
    const Dataset reloaded = Dataset::loadCsv(u, again);
    EXPECT_EQ(reloaded.contentHash(), loadedA.contentHash());
}
