/**
 * @file
 * Tests for the thread pool: coverage (every index exactly once),
 * chunking edge cases, exception propagation, pool reuse, and the
 * inline single-thread path. Also the suite the ThreadSanitizer CI
 * job runs to shake out races in the pool itself.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "graphport/fault/injector.hpp"
#include "graphport/support/threadpool.hpp"

using namespace graphport;
using support::ThreadPool;

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(support::hardwareThreads(), 1u);
}

TEST(ThreadPool, ThreadCountMatchesRequest)
{
    EXPECT_EQ(ThreadPool(1).threadCount(), 1u);
    EXPECT_EQ(ThreadPool(3).threadCount(), 3u);
    EXPECT_GE(ThreadPool(0).threadCount(), 1u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h.store(0);
            pool.parallelFor(n, [&](std::size_t begin,
                                    std::size_t end) {
                ASSERT_LE(begin, end);
                ASSERT_LE(end, n);
                for (std::size_t i = begin; i < end; ++i)
                    hits[i].fetch_add(1);
            });
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "index " << i << " with " << threads
                    << " threads, n=" << n;
        }
    }
}

TEST(ThreadPool, ExplicitChunkSizesCover)
{
    ThreadPool pool(3);
    for (std::size_t chunk : {1ul, 3ul, 17ul, 1000ul}) {
        std::vector<std::atomic<int>> hits(100);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(
            100,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    hits[i].fetch_add(1);
            },
            chunk);
        for (auto &h : hits)
            ASSERT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ParallelSumMatchesSerial)
{
    const std::size_t n = 10000;
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = static_cast<double>(i) * 0.5;
    ThreadPool pool(4);
    std::atomic<long long> sum{0};
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
        long long local = 0;
        for (std::size_t i = begin; i < end; ++i)
            local += static_cast<long long>(values[i] * 2.0);
        sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(),
              static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossManyLoops)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    for (int iter = 0; iter < 200; ++iter) {
        pool.parallelFor(50, [&](std::size_t begin,
                                 std::size_t end) {
            total.fetch_add(end - begin);
        });
    }
    EXPECT_EQ(total.load(), 200u * 50u);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t begin, std::size_t) {
                             if (begin >= 8)
                                 throw std::runtime_error("boom");
                         },
                         /*chunk=*/4),
        std::runtime_error);
    // The pool survives an exception and keeps working.
    std::atomic<int> count{0};
    pool.parallelFor(10, [&](std::size_t begin, std::size_t end) {
        count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 10);
}

// The hardening contract at every pool width: a throwing chunk's
// payload survives verbatim (first exception wins, none are lost in
// the drain), and the pool is immediately reusable.
TEST(ThreadPool, ThrowingChunkPayloadSurvivesAtAnyWidth)
{
    for (unsigned threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        try {
            pool.parallelFor(64,
                             [&](std::size_t begin, std::size_t) {
                                 if (begin == 12)
                                     throw std::runtime_error(
                                         "chunk 12 failed");
                             },
                             /*chunk=*/4);
            FAIL() << threads << " threads: exception swallowed";
        } catch (const std::runtime_error &e) {
            EXPECT_EQ(std::string(e.what()), "chunk 12 failed")
                << threads << " threads";
        }
        // Immediately reusable, full coverage.
        std::atomic<unsigned> count{0};
        pool.parallelFor(32, [&](std::size_t b, std::size_t e) {
            count.fetch_add(static_cast<unsigned>(e - b));
        });
        EXPECT_EQ(count.load(), 32u) << threads << " threads";
    }
}

// After a throw the loop drains: no new chunks start, so far fewer
// than n indices are visited when an early chunk fails.
TEST(ThreadPool, ThrowDrainsRemainingChunks)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> visited{0};
    EXPECT_THROW(
        pool.parallelFor(100000,
                         [&](std::size_t begin, std::size_t end) {
                             visited.fetch_add(end - begin);
                             if (begin == 0)
                                 throw std::runtime_error("early");
                         },
                         /*chunk=*/1),
        std::runtime_error);
    // Only chunks already in flight while the drain propagated ran;
    // a full run would have visited all 100000. The generous bound
    // keeps the test robust on slow, oversubscribed CI machines.
    EXPECT_LT(visited.load(), 50000u);
}

// An injected crash (the kill-9 rehearsal) keeps its type and
// metadata through the pool's capture/rethrow path, so the process
// entry point can still translate it to exit code 137.
TEST(ThreadPool, InjectedCrashPassesThroughTyped)
{
    fault::Injector inj(
        fault::FaultSchedule::parse("sweep.crash:once=37"));
    fault::ScopedInjector scope(&inj);
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        try {
            pool.parallelFor(64,
                             [](std::size_t begin, std::size_t end) {
                                 for (std::size_t i = begin; i < end;
                                      ++i)
                                     fault::maybeCrash("sweep.crash",
                                                       i);
                             },
                             /*chunk=*/4);
            FAIL() << threads << " threads: crash swallowed";
        } catch (const fault::InjectedCrash &e) {
            EXPECT_EQ(e.site(), "sweep.crash");
            EXPECT_EQ(e.key(), 37u);
        }
    }
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    bool sameThread = true;
    pool.parallelFor(16, [&](std::size_t, std::size_t) {
        if (std::this_thread::get_id() != caller)
            sameThread = false;
    });
    EXPECT_TRUE(sameThread);
}
