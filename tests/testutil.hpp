/**
 * @file
 * Shared fixtures for the test suite: small hand-checkable graphs and
 * a cached small dataset so that every analysis test doesn't re-run
 * the sweep.
 */
#ifndef GRAPHPORT_TESTS_TESTUTIL_HPP
#define GRAPHPORT_TESTS_TESTUTIL_HPP

#include <string>
#include <vector>

#include "graphport/graph/builder.hpp"
#include "graphport/graph/csr.hpp"
#include "graphport/runner/dataset.hpp"
#include "graphport/runner/universe.hpp"
#include "graphport/support/rng.hpp"
#include "graphport/support/snapshot.hpp"
#include "graphport/support/strings.hpp"

namespace graphport {
namespace testutil {

/** Triangle 0-1-2 (weighted, symmetric). */
inline graph::Csr
triangle()
{
    graph::Builder b(3);
    b.addEdge(0, 1, 1);
    b.addEdge(1, 2, 2);
    b.addEdge(0, 2, 4);
    return b.build("triangle",
                   graph::Builder::Options{.symmetrize = true,
                                           .removeSelfLoops = true,
                                           .removeDuplicates = true,
                                           .weighted = true});
}

/** Path 0-1-2-...-(n-1) with unit weights. */
inline graph::Csr
path(graph::NodeId n)
{
    graph::Builder b(n);
    for (graph::NodeId u = 0; u + 1 < n; ++u)
        b.addEdge(u, u + 1, 1);
    return b.build("path",
                   graph::Builder::Options{.symmetrize = true,
                                           .removeSelfLoops = true,
                                           .removeDuplicates = true,
                                           .weighted = true});
}

/** Star: node 0 connected to 1..n-1. */
inline graph::Csr
star(graph::NodeId n)
{
    graph::Builder b(n);
    for (graph::NodeId u = 1; u < n; ++u)
        b.addEdge(0, u, u);
    return b.build("star",
                   graph::Builder::Options{.symmetrize = true,
                                           .removeSelfLoops = true,
                                           .removeDuplicates = true,
                                           .weighted = true});
}

/** Two disjoint triangles: {0,1,2} and {3,4,5}. */
inline graph::Csr
twoTriangles()
{
    graph::Builder b(6);
    b.addEdge(0, 1, 1);
    b.addEdge(1, 2, 1);
    b.addEdge(0, 2, 1);
    b.addEdge(3, 4, 2);
    b.addEdge(4, 5, 2);
    b.addEdge(3, 5, 2);
    return b.build("two-triangles",
                   graph::Builder::Options{.symmetrize = true,
                                           .removeSelfLoops = true,
                                           .removeDuplicates = true,
                                           .weighted = true});
}

/**
 * A small dataset shared by the analysis tests (built once per test
 * binary): 4 apps x {road, social} x 2 chips.
 */
inline const runner::Dataset &
smallDataset()
{
    static const runner::Dataset ds = runner::Dataset::build(
        runner::smallUniverse(4, {"M4000", "R9"}));
    return ds;
}

/** A small dataset spanning all six chips (for per-chip analyses). */
inline const runner::Dataset &
smallAllChipDataset()
{
    static const runner::Dataset ds =
        runner::Dataset::build(runner::smallUniverse(3));
    return ds;
}

/**
 * Recompute the `sum` checksum row of a (possibly tampered) snapshot
 * text so that tampering tests exercise the *semantic* reject they
 * target instead of tripping the whole-file checksum first.
 */
inline std::string
resealSnapshot(const std::string &text)
{
    std::uint64_t sum = support::kSnapshotSumInit;
    std::string out;
    for (const std::string &line : split(text, '\n')) {
        if (trim(line).empty())
            continue;
        const std::string head = line.substr(0, line.find(','));
        if (head == "sum" || head == "end")
            continue;
        sum = splitmix64(sum ^ hashStr(line));
        out += line + "\n";
    }
    out += "sum," + support::hexU64(sum) + "\n";
    out += "end\n";
    return out;
}

} // namespace testutil
} // namespace graphport

#endif // GRAPHPORT_TESTS_TESTUTIL_HPP
