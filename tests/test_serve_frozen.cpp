/**
 * @file
 * The frozen-index proof: the compiled ID path (interned symbols,
 * packed-key flat tables, SoA k-NN) must answer bit-identically to
 * the string/map reference descent over the *entire* query universe
 * — every (app, input, chip) combination the study covers, plus
 * input classes, unseen inputs, out-of-index apps and unknown chips
 * (the predictive path) — with and without fault schedules, at 1/4/8
 * threads, and while the index is hot-swapped mid-batch. This binary
 * links the counting allocator, so it also enforces the steady-path
 * zero-allocation budget.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graphport/fault/injector.hpp"
#include "graphport/port/predict.hpp"
#include "graphport/serve/advisor.hpp"
#include "graphport/serve/batch.hpp"
#include "graphport/serve/frozen.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/serve/loadgen.hpp"
#include "graphport/support/allochook.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

const serve::StrategyIndex &
smallIndex()
{
    static const serve::StrategyIndex index =
        serve::StrategyIndex::build(testutil::smallDataset());
    return index;
}

const serve::Advisor &
advisor()
{
    static const serve::Advisor adv(smallIndex());
    return adv;
}

/**
 * Every query shape the advisor can meet: the full study cross
 * product by input name and by input class, plus an out-of-index app
 * (traceable on demand), an unknown app, an unseen-here input class,
 * a nonsense input and an unknown chip (routes to the predictive
 * path). Some combinations are semantically unanswerable — the sweep
 * requires reference and frozen paths to agree on *that* too.
 */
std::vector<serve::Query>
queryUniverse()
{
    std::vector<std::string> apps = smallIndex().apps();
    apps.push_back("pr-topo");     // registry app outside the index
    apps.push_back("no-such-app"); // untraceable
    std::vector<std::string> inputs;
    for (const runner::InputSpec &in : smallIndex().inputs()) {
        inputs.push_back(in.name);
        inputs.push_back(in.cls);
    }
    inputs.push_back("random"); // study class absent from the index
    inputs.push_back("no-such-input");
    std::vector<std::string> chips = smallIndex().chips();
    chips.push_back("GTX1080"); // registry chip outside the index

    std::vector<serve::Query> queries;
    for (const std::string &app : apps)
        for (const std::string &input : inputs)
            for (const std::string &chip : chips)
                queries.push_back({app, input, chip});
    return queries;
}

/**
 * adviseResilient (frozen ID descent) against adviseReference (the
 * string/map oracle) over the whole universe: identical answers,
 * identical retry/degradation accounting, identical fatals.
 */
void
expectFrozenMatchesReference(const serve::ServePolicy &policy)
{
    const serve::Advisor adv(smallIndex());
    std::size_t answered = 0;
    std::size_t unanswerable = 0;
    std::uint64_t key = 0;
    for (const serve::Query &q : queryUniverse()) {
        ++key;
        bool refFatal = false;
        serve::Advice ref;
        try {
            ref = adv.adviseReference(q, key, policy);
        } catch (const FatalError &) {
            refFatal = true;
        }
        bool frozenFatal = false;
        serve::Advice got;
        try {
            got = adv.adviseResilient(q, key, policy);
        } catch (const FatalError &) {
            frozenFatal = true;
        }
        ASSERT_EQ(refFatal, frozenFatal)
            << q.app << "/" << q.input << "/" << q.chip;
        if (refFatal) {
            ++unanswerable;
            continue;
        }
        ++answered;
        EXPECT_TRUE(ref.sameAnswer(got))
            << q.app << "/" << q.input << "/" << q.chip
            << ": reference " << ref.tier << " cfg " << ref.config
            << " vs frozen " << got.tier << " cfg " << got.config;
        EXPECT_EQ(ref.configLabel, got.configLabel);
        EXPECT_EQ(ref.partition, got.partition);
        EXPECT_EQ(ref.expectedSlowdownVsOracle,
                  got.expectedSlowdownVsOracle);
        EXPECT_EQ(ref.partitionSlowdownVsOracle,
                  got.partitionSlowdownVsOracle);
    }
    // The universe must exercise both outcomes.
    EXPECT_GT(answered, 0u);
    EXPECT_GT(unanswerable, 0u);
}

} // namespace

TEST(ServeFrozen, BitIdenticalToReferenceOverFullUniverse)
{
    expectFrozenMatchesReference(serve::ServePolicy{});
}

TEST(ServeFrozen, BitIdenticalToReferenceUnderLookupFaults)
{
    fault::Injector inj(fault::FaultSchedule::parse(
        "seed=3;serve.lookup:p=0.35"));
    fault::ScopedInjector scope(&inj);
    expectFrozenMatchesReference(serve::ServePolicy{});
    EXPECT_GT(inj.injectedCount(), 0u);
}

TEST(ServeFrozen, BitIdenticalUnderPredictFaultsAndDeadline)
{
    fault::Injector inj(fault::FaultSchedule::parse(
        "seed=11;serve.lookup:p=0.5;serve.predict:p=0.6"));
    fault::ScopedInjector scope(&inj);
    serve::ServePolicy policy;
    policy.maxRetries = 3;
    policy.deadlineNs = 20000; // tight: forces early degradation
    expectFrozenMatchesReference(policy);
    EXPECT_GT(inj.injectedCount(), 0u);
}

TEST(ServeFrozen, OverLongRetryBudgetIsFatalOnBothPaths)
{
    serve::ServePolicy policy;
    policy.maxRetries = 10; // key packing supports at most 9
    const serve::Query q{"bfs-topo", "road", "M4000"};
    EXPECT_THROW(advisor().adviseResilient(q, 1, policy),
                 FatalError);
    EXPECT_THROW(advisor().adviseReference(q, 1, policy),
                 FatalError);
}

TEST(ServeFrozen, SoaPredictionMatchesPortKnnForEveryStudyPair)
{
    const auto lease = advisor().lease();
    const serve::FrozenIndex &frozen = lease->frozen;
    const runner::Dataset &ds = testutil::smallDataset();
    const auto traces = port::collectTraces(ds.universe());
    for (const std::string &app : smallIndex().apps())
        for (const runner::InputSpec &in : smallIndex().inputs()) {
            const unsigned expected = port::predictConfig(
                ds, traces, app, in.name, smallIndex().knnK());
            const std::uint32_t appSym = frozen.findSymbol(app);
            const std::uint32_t inSym = frozen.findSymbol(in.name);
            ASSERT_NE(appSym, serve::kNoSymbol);
            ASSERT_NE(inSym, serve::kNoSymbol);
            const std::int32_t row =
                frozen.featureRow(appSym, inSym);
            ASSERT_GE(row, 0) << app << "/" << in.name;
            const unsigned got = frozen.predictConfig(
                frozen.featureAt(row), appSym, inSym);
            EXPECT_EQ(got, expected) << app << "/" << in.name;
        }
}

TEST(ServeFrozen, IdOverloadMatchesStringApiOnSteadyQueries)
{
    const serve::Advisor &adv = advisor();
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 300, 19);
    const auto lease = adv.lease();
    std::size_t steady = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const serve::IdQuery id = lease->frozen.internQuery(
            stream[i].app, stream[i].input, stream[i].chip);
        if (!lease->frozen.steady(id))
            continue;
        ++steady;
        const serve::AdviceView view = adv.advise(id, i);
        const serve::Advice ref =
            adv.adviseResilient(stream[i], i, serve::ServePolicy{});
        EXPECT_EQ(view.config, ref.config) << i;
        EXPECT_EQ(serve::tierName(view.tier), ref.tier) << i;
        EXPECT_EQ(view.predictive, ref.predictive) << i;
        EXPECT_EQ(view.degraded, ref.degraded) << i;
        EXPECT_EQ(view.retries, ref.retries) << i;
        EXPECT_EQ(view.expectedSlowdownVsOracle,
                  ref.expectedSlowdownVsOracle)
            << i;
        EXPECT_EQ(view.partitionSlowdownVsOracle,
                  ref.partitionSlowdownVsOracle)
            << i;
    }
    EXPECT_GT(steady, 0u);
}

TEST(ServeFrozen, SteadyClassifiesQueriesByAnswerability)
{
    const auto lease = advisor().lease();
    const serve::FrozenIndex &frozen = lease->frozen;
    // Known chip: always lattice-answerable, no trace needed.
    EXPECT_TRUE(frozen.steady(
        frozen.internQuery("bfs-topo", "road", "M4000")));
    EXPECT_TRUE(frozen.steady(frozen.internQuery(
        "no-such-app", "no-such-input", "M4000")));
    // Unknown chip + snapshot-traced pair: predictive, steady.
    EXPECT_TRUE(frozen.steady(
        frozen.internQuery("bfs-topo", "road", "GTX1080")));
    // Unknown chip + pair outside the snapshot: needs an on-demand
    // trace, so the string API must handle it.
    EXPECT_FALSE(frozen.steady(
        frozen.internQuery("pr-topo", "road", "GTX1080")));
}

TEST(ServeFrozen, BatchBitIdenticalAcrossThreadCountsUnderFaults)
{
    fault::Injector inj(fault::FaultSchedule::parse(
        "seed=5;serve.lookup:p=0.25;serve.predict:p=0.25"));
    fault::ScopedInjector scope(&inj);
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 600, 11);
    const serve::Advisor adv(smallIndex());
    const std::vector<serve::Advice> serial =
        serve::serveBatch(adv, stream, 1);
    for (const unsigned threads : {4u, 8u}) {
        const std::vector<serve::Advice> parallel =
            serve::serveBatch(adv, stream, threads);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_TRUE(serial[i].sameAnswer(parallel[i]))
                << "thread count " << threads << ", query " << i;
    }
}

TEST(ServeFrozen, HotSwapMidBatchYieldsOneIndexsAnswerPerQuery)
{
    const serve::StrategyIndex &indexA = smallIndex();
    const serve::StrategyIndex indexB =
        serve::StrategyIndex::build(runner::Dataset::build(
            runner::smallUniverse(2, {"M4000", "R9"})));

    const std::vector<serve::Query> stream =
        serve::makeQueryStream(indexA, 400, 13);
    // Per-index references, keyed exactly as serveBatch keys (the
    // request index).
    const serve::Advisor advA(indexA);
    const serve::Advisor advB(indexB);
    const std::vector<serve::Advice> refA =
        serve::serveBatch(advA, stream, 1);
    const std::vector<serve::Advice> refB =
        serve::serveBatch(advB, stream, 1);

    serve::Advisor adv(indexA);
    std::atomic<bool> done{false};
    std::thread swapper([&] {
        bool useB = true;
        while (!done.load(std::memory_order_relaxed)) {
            adv.swapIndex(useB ? indexB : indexA);
            useB = !useB;
            std::this_thread::yield();
        }
    });
    const std::vector<serve::Advice> got =
        serve::serveBatch(adv, stream, 4);
    done.store(true);
    swapper.join();

    ASSERT_EQ(got.size(), stream.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(got[i].sameAnswer(refA[i]) ||
                    got[i].sameAnswer(refB[i]))
            << "query " << i << " answered " << got[i].tier
            << " cfg " << got[i].config
            << ", matching neither index";
    EXPECT_GT(adv.indexEpoch(), 0u);
}

TEST(ServeFrozen, SwapToSameIndexChangesNoAnswer)
{
    serve::Advisor adv(smallIndex());
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 200, 23);
    const std::vector<serve::Advice> before =
        serve::serveBatch(adv, stream, 1);
    adv.swapIndex(smallIndex());
    EXPECT_EQ(adv.indexEpoch(), 1u);
    const std::vector<serve::Advice> after =
        serve::serveBatch(adv, stream, 1);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_TRUE(before[i].sameAnswer(after[i])) << i;
}

TEST(ServeFrozen, SteadyPathAllocatesNothing)
{
    // This test binary links bench/alloc_hook.cpp, so the counting
    // operators are live and the budget is enforced, not skipped.
    ASSERT_TRUE(support::allocCountingActive());
    const std::vector<serve::Query> stream =
        serve::makeQueryStream(smallIndex(), 500, 17);
    const double perQuery =
        serve::measureSteadyAllocsPerQuery(advisor(), stream);
    ASSERT_GE(perQuery, 0.0) << "no steady queries in the stream";
    EXPECT_EQ(perQuery, 0.0);
}
