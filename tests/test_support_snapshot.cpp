/**
 * @file
 * support::Snapshot: the one snapshot discipline shared by the
 * dataset cache, the strategy index and the calibration roster —
 * hexfloat round-tripping, header validation, cause-on-reject
 * diagnostics, the warn-and-rebuild cache protocol, and the
 * cross-subsystem property that every loader rejects the other
 * subsystems' snapshots by magic.
 */
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graphport/calib/fitter.hpp"
#include "graphport/serve/index.hpp"
#include "graphport/support/error.hpp"
#include "graphport/support/snapshot.hpp"

using namespace graphport;
using support::SnapshotReader;
using support::SnapshotWriter;

namespace {

constexpr const char *kMagic = "graphport-testsnap";
constexpr unsigned kVersion = 7;
constexpr const char *kHint = "rerun the thing";

SnapshotReader
reader(std::istream &is)
{
    return SnapshotReader(is, kMagic, kVersion, "test snapshot",
                          kHint);
}

/** What a loader rejected @p text with, or "" if it loaded. */
std::string
rejectCause(const std::string &text)
{
    std::istringstream is(text);
    try {
        SnapshotReader r = reader(is);
        r.expectEnd();
        return "";
    } catch (const FatalError &e) {
        return e.what();
    }
}

} // namespace

TEST(SnapshotHexTest, HexDoubleRoundTripsExactly)
{
    for (double v : {0.1, -3.75, 1.0e-300, 6.02214076e23, 0.0}) {
        const std::string s = support::hexDouble(v);
        std::istringstream is(std::string(kMagic) + ",7\nv," + s +
                              "\nend\n");
        SnapshotReader r = reader(is);
        const std::vector<std::string> row = r.expect("v", 2);
        EXPECT_EQ(r.number(row[1]), v) << s;
    }
}

TEST(SnapshotHexTest, HexU64IsPaddedAndRoundTrips)
{
    EXPECT_EQ(support::hexU64(0x1234).size(), 16u);
    const std::uint64_t v = 0xdeadbeefcafef00dull;
    std::istringstream is(std::string(kMagic) + ",7\nh," +
                          support::hexU64(v) + "\nend\n");
    SnapshotReader r = reader(is);
    EXPECT_EQ(r.hash(r.expect("h", 2)[1]), v);
}

TEST(SnapshotRoundTripTest, WriterOutputLoadsBack)
{
    std::ostringstream os;
    SnapshotWriter w(os, kMagic, kVersion);
    w.row({"meta", "3", support::hexDouble(2.5)});
    w.row({"item", "alpha, beta"}); // embedded comma must survive
    w.end();

    std::istringstream is(os.str());
    SnapshotReader r = reader(is);
    const std::vector<std::string> meta = r.expect("meta", 3);
    EXPECT_EQ(r.count(meta[1]), 3u);
    EXPECT_EQ(r.number(meta[2]), 2.5);
    const std::vector<std::string> item = r.expect("item", 2);
    EXPECT_EQ(item[1], "alpha, beta");
    r.expectEnd();
}

TEST(SnapshotRejectTest, BadMagic)
{
    const std::string cause = rejectCause("something-else,7\nend\n");
    EXPECT_NE(cause.find("bad magic"), std::string::npos) << cause;
    EXPECT_NE(cause.find("test snapshot"), std::string::npos)
        << cause;
}

TEST(SnapshotRejectTest, MissingVersion)
{
    const std::string cause =
        rejectCause(std::string(kMagic) + "\nend\n");
    EXPECT_NE(cause.find("missing format version"), std::string::npos)
        << cause;
}

TEST(SnapshotRejectTest, VersionMismatchQuotesBothAndTheHint)
{
    const std::string cause =
        rejectCause(std::string(kMagic) + ",999\nend\n");
    EXPECT_NE(cause.find("format version 999"), std::string::npos)
        << cause;
    EXPECT_NE(cause.find("this build reads 7"), std::string::npos)
        << cause;
    EXPECT_NE(cause.find(kHint), std::string::npos) << cause;
}

TEST(SnapshotRejectTest, TruncationIsDetected)
{
    // "graphport-testsnap,7\n" is 21 bytes; the shortest legal
    // continuation is the 25-byte sum/end trailer, so the reject
    // must report 21 actual vs a 46-byte floor for 1 record read.
    const std::string text = std::string(kMagic) + ",7\n";
    ASSERT_EQ(text.size(), 21u);
    const std::string cause = rejectCause(text);
    EXPECT_NE(cause.find("truncated"), std::string::npos) << cause;
    EXPECT_NE(cause.find("missing 'end' marker"), std::string::npos)
        << cause;
    EXPECT_NE(cause.find("21 bytes present"), std::string::npos)
        << cause;
    EXPECT_NE(cause.find("1 records plus the trailer need at "
                         "least 46"),
              std::string::npos)
        << cause;
}

TEST(SnapshotRejectTest, TruncationCountsRecordsPastTheHeader)
{
    // A record line after the header grows both figures: the byte
    // floor tracks what was consumed, the record count what parsed.
    const std::string text =
        std::string(kMagic) + ",7\nmeta,3\n"; // 21 + 7 = 28 bytes
    ASSERT_EQ(text.size(), 28u);
    std::istringstream is(text);
    SnapshotReader r = reader(is);
    r.expect("meta", 2);
    try {
        r.expectEnd();
        FAIL() << "truncated stream accepted";
    } catch (const FatalError &e) {
        const std::string cause = e.what();
        EXPECT_NE(cause.find("28 bytes present"), std::string::npos)
            << cause;
        EXPECT_NE(cause.find("2 records plus the trailer need at "
                             "least 53"),
                  std::string::npos)
            << cause;
    }
}

TEST(SnapshotRejectTest, WrongKeywordAndShortRecords)
{
    {
        std::istringstream is(std::string(kMagic) +
                              ",7\nwrong,1\nend\n");
        SnapshotReader r = reader(is);
        try {
            r.expect("meta", 2);
            FAIL() << "expected FatalError";
        } catch (const FatalError &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("expected 'meta' record"),
                      std::string::npos)
                << what;
            EXPECT_NE(what.find("got 'wrong'"), std::string::npos)
                << what;
        }
    }
    {
        std::istringstream is(std::string(kMagic) +
                              ",7\nmeta,1\nend\n");
        SnapshotReader r = reader(is);
        try {
            r.expect("meta", 3);
            FAIL() << "expected FatalError";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(
                          "short 'meta' record"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(SnapshotRejectTest, MalformedValuesNameTheOffender)
{
    std::istringstream is(std::string(kMagic) + ",7\nend\n");
    SnapshotReader r = reader(is);
    for (const auto &[parse, needle] :
         std::vector<std::pair<std::function<void()>, std::string>>{
             {[&] { r.number("xyz"); }, "bad number 'xyz'"},
             {[&] { r.hash("nothex"); }, "bad hash 'nothex'"},
             {[&] { r.count("-3"); }, "bad count '-3'"}}) {
        try {
            parse();
            FAIL() << "expected FatalError for " << needle;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(SnapshotCacheTest, LoadOrRebuildWarnsOnceThenCaches)
{
    const std::string path =
        ::testing::TempDir() + "graphport_snapshot_cache_test.snap";
    std::remove(path.c_str());

    unsigned builds = 0;
    const auto loadFn = [](std::ifstream &in) {
        SnapshotReader r(in, kMagic, kVersion, "test snapshot",
                         kHint);
        const int v = static_cast<int>(r.count(r.expect("v", 2)[1]));
        r.expectEnd();
        return v;
    };
    const auto buildFn = [&builds] {
        ++builds;
        return 42;
    };
    const auto saveFn = [&path](int v) {
        std::ofstream out(path);
        SnapshotWriter w(out, kMagic, kVersion);
        w.row({"v", std::to_string(v)});
        w.end();
    };
    const auto roundTrip = [&] {
        return support::loadOrRebuild(path, "test snapshot",
                                      "rebuilding", "will retry",
                                      loadFn, buildFn, saveFn);
    };

    // No file: silent build + save.
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(roundTrip(), 42);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
    EXPECT_EQ(builds, 1u);

    // Cached: load, no rebuild.
    EXPECT_EQ(roundTrip(), 42);
    EXPECT_EQ(builds, 1u);

    // Corrupted: warn with the cause, rebuild, re-save.
    {
        std::ofstream out(path);
        out << "garbage\n";
    }
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(roundTrip(), 42);
    const std::string warning =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(builds, 2u);
    EXPECT_NE(warning.find("graphport: warning:"), std::string::npos)
        << warning;
    EXPECT_NE(warning.find("rejected"), std::string::npos) << warning;
    EXPECT_NE(warning.find("bad magic"), std::string::npos)
        << warning;
    EXPECT_NE(warning.find("rebuilding"), std::string::npos)
        << warning;

    // The re-save healed the cache.
    EXPECT_EQ(roundTrip(), 42);
    EXPECT_EQ(builds, 2u);
    std::remove(path.c_str());
}

TEST(SnapshotCacheTest, FailedSaveDegradesToAWarning)
{
    const std::string path =
        ::testing::TempDir() + "graphport_snapshot_nosave_test.snap";
    std::remove(path.c_str());
    ::testing::internal::CaptureStderr();
    const int got = support::loadOrRebuild(
        path, "test snapshot", "rebuilding", "will retry next run",
        [](std::ifstream &) { return 0; }, [] { return 7; },
        [](int) { fatal("disk full"); });
    const std::string warning =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(got, 7);
    EXPECT_NE(warning.find("disk full"), std::string::npos)
        << warning;
    EXPECT_NE(warning.find("will retry next run"), std::string::npos)
        << warning;
}

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        return "<missing>";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

} // namespace

TEST(AtomicWriteTest, WritesContentAndLeavesNoTempBehind)
{
    const std::string path =
        ::testing::TempDir() + "graphport_atomic_write_test.txt";
    std::remove(path.c_str());
    support::atomicWriteFile(path, "test artefact",
                             [](std::ostream &os) {
                                 os << "payload v1\n";
                             });
    EXPECT_EQ(readFile(path), "payload v1\n");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicWriteTest, ReplacesExistingFileAtomically)
{
    const std::string path =
        ::testing::TempDir() + "graphport_atomic_replace_test.txt";
    support::atomicWriteFile(path, "test artefact",
                             [](std::ostream &os) { os << "old\n"; });
    support::atomicWriteFile(path, "test artefact",
                             [](std::ostream &os) { os << "new\n"; });
    EXPECT_EQ(readFile(path), "new\n");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicWriteTest, ThrowingProducerLeavesPreviousContentsIntact)
{
    const std::string path =
        ::testing::TempDir() + "graphport_atomic_throw_test.txt";
    support::atomicWriteFile(path, "test artefact",
                             [](std::ostream &os) { os << "keep\n"; });
    EXPECT_THROW(support::atomicWriteFile(
                     path, "test artefact",
                     [](std::ostream &os) {
                         os << "half-written";
                         fatal("producer exploded");
                     }),
                 FatalError);
    EXPECT_EQ(readFile(path), "keep\n");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicWriteTest, UnwritableDirectoryNamesTheArtefact)
{
    const std::string path =
        "/nonexistent-graphport-dir/artefact.txt";
    try {
        support::atomicWriteFile(path, "test artefact",
                                 [](std::ostream &os) {
                                     os << "doomed\n";
                                 });
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("test artefact"), std::string::npos)
            << what;
        EXPECT_NE(what.find(path), std::string::npos) << what;
    }
    EXPECT_FALSE(fileExists(path));
}

TEST(SnapshotCrossSubsystemTest, LoadersRejectEachOthersMagic)
{
    // A calib roster is not an index snapshot...
    {
        std::istringstream is("graphport-calib,1\nchips,0\nend\n");
        try {
            serve::StrategyIndex::load(is, "'cross'");
            FAIL() << "expected FatalError";
        } catch (const FatalError &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("not a graphport-index snapshot"),
                      std::string::npos)
                << what;
            EXPECT_NE(what.find("bad magic"), std::string::npos)
                << what;
        }
    }
    // ...and an index snapshot is not a calib roster.
    {
        std::istringstream is("graphport-index,1\ndataset_hash,"
                              "0000000000000000\nend\n");
        try {
            calib::loadRoster(is, "'cross'");
            FAIL() << "expected FatalError";
        } catch (const FatalError &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("not a graphport-calib snapshot"),
                      std::string::npos)
                << what;
            EXPECT_NE(what.find("bad magic"), std::string::npos)
                << what;
        }
    }
}
