/**
 * @file
 * Tests for the zero-allocation serving primitives: StringInterner
 * (dense IDs, allocation-free find), FlatTable (open-addressed
 * u64 -> value, duplicate detection) and EpochPtr (RCU-style pinned
 * reads across hot swaps, including a concurrent stress pass).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graphport/support/epochptr.hpp"
#include "graphport/support/flattable.hpp"
#include "graphport/support/interner.hpp"
#include "graphport/support/error.hpp"

using namespace graphport;

TEST(StringInterner, IdsAreDenseInInsertionOrder)
{
    support::StringInterner in;
    EXPECT_EQ(in.intern("alpha"), 0u);
    EXPECT_EQ(in.intern("beta"), 1u);
    EXPECT_EQ(in.intern("gamma"), 2u);
    EXPECT_EQ(in.size(), 3u);
}

TEST(StringInterner, ReinterningReturnsTheExistingId)
{
    support::StringInterner in;
    const std::uint32_t a = in.intern("alpha");
    in.intern("beta");
    EXPECT_EQ(in.intern("alpha"), a);
    EXPECT_EQ(in.size(), 2u);
}

TEST(StringInterner, FindMatchesInternAndMissesReturnSentinel)
{
    support::StringInterner in;
    in.intern("road");
    in.intern("social");
    EXPECT_EQ(in.find("road"), 0u);
    EXPECT_EQ(in.find("social"), 1u);
    EXPECT_EQ(in.find("intranet"),
              support::StringInterner::kNoSymbol);
    EXPECT_EQ(in.find(""), support::StringInterner::kNoSymbol);
}

TEST(StringInterner, NameRoundTripsAndPanicsOutOfRange)
{
    support::StringInterner in;
    const std::uint32_t id = in.intern("bfs-topo");
    EXPECT_EQ(in.name(id), "bfs-topo");
    EXPECT_THROW(in.name(99), PanicError);
    EXPECT_THROW(in.name(support::StringInterner::kNoSymbol),
                 PanicError);
}

TEST(StringInterner, SurvivesGrowthWithStableIds)
{
    support::StringInterner in;
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < 4096; ++i)
        ids.push_back(in.intern("sym-" + std::to_string(i)));
    for (int i = 0; i < 4096; ++i) {
        EXPECT_EQ(ids[static_cast<std::size_t>(i)],
                  static_cast<std::uint32_t>(i));
        EXPECT_EQ(in.find("sym-" + std::to_string(i)),
                  static_cast<std::uint32_t>(i));
        EXPECT_EQ(in.name(static_cast<std::uint32_t>(i)),
                  "sym-" + std::to_string(i));
    }
}

TEST(StringInterner, HashBytesIsDeterministicAndDiscriminates)
{
    EXPECT_EQ(support::hashBytes("graphport"),
              support::hashBytes("graphport"));
    EXPECT_NE(support::hashBytes("graphport"),
              support::hashBytes("graphporT"));
    EXPECT_NE(support::hashBytes(""), support::hashBytes("a"));
}

TEST(FlatTable, FindsEveryBuiltKeyAndMissesOthers)
{
    support::FlatTable<int> t;
    std::vector<std::pair<std::uint64_t, int>> entries;
    for (std::uint64_t k = 0; k < 1000; ++k)
        entries.push_back({k * 7 + 1, static_cast<int>(k)});
    t.build(entries);
    EXPECT_EQ(t.size(), 1000u);
    for (const auto &[key, value] : entries) {
        const int *v = t.find(key);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, value);
    }
    EXPECT_EQ(t.find(2), nullptr);
    EXPECT_EQ(t.find(999999), nullptr);
}

TEST(FlatTable, EmptyTableFindsNothing)
{
    support::FlatTable<int> t;
    EXPECT_EQ(t.find(0), nullptr);
    t.build({});
    EXPECT_EQ(t.find(0), nullptr);
    EXPECT_EQ(t.size(), 0u);
}

TEST(FlatTable, DuplicateAndSentinelKeysPanic)
{
    support::FlatTable<int> t;
    EXPECT_THROW(t.build({{5, 1}, {5, 2}}), PanicError);
    EXPECT_THROW(
        t.build({{support::FlatTable<int>::kEmptyKey, 1}}),
        PanicError);
}

TEST(EpochPtr, ReadSeesInitialValueAndSwapPublishes)
{
    support::EpochPtr<int> p(std::make_shared<const int>(7));
    EXPECT_EQ(p.epoch(), 0u);
    {
        const auto g = p.read();
        EXPECT_EQ(*g, 7);
    }
    p.swap(std::make_shared<const int>(11));
    EXPECT_EQ(p.epoch(), 1u);
    EXPECT_EQ(*p.read(), 11);
}

TEST(EpochPtr, GuardPinsTheOldValueAcrossASwap)
{
    support::EpochPtr<std::string> p(
        std::make_shared<const std::string>("old"));
    std::optional<support::EpochPtr<std::string>::Guard> pinned(
        p.read());
    // swap() publishes first (epoch bump, new readers see the
    // replacement) and only then waits for the old slot's readers to
    // drain — so it must run on a helper thread while this one holds
    // the pin.
    std::thread writer([&] {
        p.swap(std::make_shared<const std::string>("new"));
    });
    while (p.epoch() == 0)
        std::this_thread::yield();
    EXPECT_EQ(**pinned, "old");
    EXPECT_EQ(*p.read(), "new");
    pinned.reset(); // releases the pin; the writer can now retire
    writer.join();
}

TEST(EpochPtr, ConcurrentReadersNeverObserveATornValue)
{
    // Values are self-consistent pairs (v, v): a reader observing
    // (a, b) with a != b caught a torn publication.
    struct Pair
    {
        int a;
        int b;
    };
    support::EpochPtr<Pair> p(
        std::make_shared<const Pair>(Pair{0, 0}));

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<bool> torn{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto g = p.read();
                if (g->a != g->b)
                    torn.store(true);
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });

    for (int v = 1; v <= 500; ++v)
        p.swap(std::make_shared<const Pair>(Pair{v, v}));
    // On a loaded single-core box the swaps can finish before any
    // reader is scheduled; insist on real read traffic before
    // stopping (readers never block, so this terminates).
    while (reads.load(std::memory_order_relaxed) < 1000)
        std::this_thread::yield();
    stop.store(true);
    for (std::thread &t : readers)
        t.join();

    EXPECT_FALSE(torn.load());
    EXPECT_EQ(p.epoch(), 500u);
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(p.read()->a, 500);
}
