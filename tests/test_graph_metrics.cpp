/**
 * @file
 * Tests for graph metrics (pseudo-diameter, degree statistics,
 * histograms).
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graphport/graph/generators.hpp"
#include "graphport/graph/metrics.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::graph;

TEST(Metrics, PathDiameter)
{
    const GraphMetrics m = computeMetrics(testutil::path(10));
    EXPECT_EQ(m.numNodes, 10u);
    EXPECT_EQ(m.numEdges, 18u);
    EXPECT_EQ(m.pseudoDiameter, 9u);
    EXPECT_DOUBLE_EQ(m.largestComponentFraction, 1.0);
}

TEST(Metrics, StarShape)
{
    const GraphMetrics m = computeMetrics(testutil::star(9));
    EXPECT_EQ(m.maxDegree, 8u);
    EXPECT_EQ(m.pseudoDiameter, 2u);
    EXPECT_NEAR(m.degreeSkew, 8.0 / m.avgDegree, 1e-9);
}

TEST(Metrics, DisconnectedComponents)
{
    const GraphMetrics m = computeMetrics(testutil::twoTriangles());
    EXPECT_DOUBLE_EQ(m.largestComponentFraction, 0.5);
    EXPECT_EQ(m.pseudoDiameter, 1u);
}

TEST(Metrics, EmptyGraph)
{
    const GraphMetrics m = computeMetrics(Csr{});
    EXPECT_EQ(m.numNodes, 0u);
    EXPECT_EQ(m.numEdges, 0u);
}

TEST(Metrics, SingleNodeNoEdges)
{
    graph::Builder b(1);
    const GraphMetrics m = computeMetrics(b.build("one"));
    EXPECT_EQ(m.numNodes, 1u);
    EXPECT_EQ(m.pseudoDiameter, 0u);
    EXPECT_DOUBLE_EQ(m.largestComponentFraction, 1.0);
}

TEST(DegreeHistogram, CountsSumToNodes)
{
    const Csr g = gen::rmat(9, 8.0);
    const auto hist = degreeHistogram(g);
    const std::uint64_t total =
        std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
    EXPECT_EQ(total, g.numNodes());
}

TEST(DegreeHistogram, BucketsArePowersOfTwo)
{
    // Path interior nodes have degree 2 (bucket 1), endpoints degree
    // 1 (bucket 0).
    const auto hist = degreeHistogram(testutil::path(10));
    ASSERT_GE(hist.size(), 2u);
    EXPECT_EQ(hist[0], 2u);
    EXPECT_EQ(hist[1], 8u);
}

TEST(DegreeHistogram, StarHub)
{
    // Star with 9 leaves: hub degree 9 is in bucket 3 ([8,16)).
    const auto hist = degreeHistogram(testutil::star(10));
    ASSERT_GE(hist.size(), 4u);
    EXPECT_EQ(hist[0], 9u);
    EXPECT_EQ(hist[3], 1u);
}

TEST(Metrics, MoreSweepsNeverReduceDiameter)
{
    const Csr g = gen::roadGrid(24, 24, 0.01, 3);
    const GraphMetrics one = computeMetrics(g, 1);
    const GraphMetrics four = computeMetrics(g, 4);
    EXPECT_GE(four.pseudoDiameter, one.pseudoDiameter);
}
