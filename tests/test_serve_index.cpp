/**
 * @file
 * Tests for serve::StrategyIndex: exact snapshot round-trips, the
 * versioned-format and dataset-hash guards, and the warn-and-rebuild
 * caching behaviour.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "graphport/serve/index.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;

namespace {

const serve::StrategyIndex &
smallIndex()
{
    static const serve::StrategyIndex index =
        serve::StrategyIndex::build(testutil::smallDataset());
    return index;
}

std::string
savedSnapshot()
{
    std::ostringstream os;
    smallIndex().save(os);
    return os.str();
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "graphport_" + name;
}

} // namespace

TEST(ServeIndex, BuildCoversAllTenStrategies)
{
    const serve::StrategyIndex &index = smallIndex();
    ASSERT_EQ(index.tables().size(), 10u);
    // Baseline and global collapse to one partition; the oracle and
    // the fully specialised tier have one per test.
    const runner::Dataset &ds = testutil::smallDataset();
    EXPECT_EQ(index.table("global").configByPartition.size(), 1u);
    EXPECT_EQ(
        index.table("chip_app_input").configByPartition.size(),
        ds.numTests());
    EXPECT_EQ(index.apps(), ds.universe().apps);
    EXPECT_EQ(index.chips(), ds.universe().chips);
    EXPECT_EQ(index.examples().size(), ds.numTests());
    EXPECT_GE(index.predictiveGeomean(), 1.0);
    EXPECT_EQ(index.datasetHash(), ds.contentHash());
}

TEST(ServeIndex, FindInputResolvesNameThenClass)
{
    const serve::StrategyIndex &index = smallIndex();
    const runner::InputSpec *byName = index.findInput("road");
    ASSERT_NE(byName, nullptr);
    EXPECT_EQ(byName->name, "road");
    const runner::InputSpec *byClass =
        index.findInput("road network");
    ASSERT_NE(byClass, nullptr);
    EXPECT_EQ(byClass->name, "road");
    EXPECT_EQ(index.findInput("no-such-input"), nullptr);
}

TEST(ServeIndex, SnapshotRoundTripIsExact)
{
    const serve::StrategyIndex &built = smallIndex();
    std::istringstream is(savedSnapshot());
    const serve::StrategyIndex loaded =
        serve::StrategyIndex::load(is);

    EXPECT_EQ(loaded.datasetHash(), built.datasetHash());
    EXPECT_EQ(loaded.alpha(), built.alpha());
    EXPECT_EQ(loaded.knnK(), built.knnK());
    // Hexfloat serialisation: doubles round-trip bit for bit.
    EXPECT_EQ(loaded.predictiveGeomean(), built.predictiveGeomean());
    EXPECT_EQ(loaded.apps(), built.apps());
    EXPECT_EQ(loaded.chips(), built.chips());

    ASSERT_EQ(loaded.inputs().size(), built.inputs().size());
    for (std::size_t i = 0; i < built.inputs().size(); ++i) {
        EXPECT_EQ(loaded.inputs()[i].name, built.inputs()[i].name);
        EXPECT_EQ(loaded.inputs()[i].cls, built.inputs()[i].cls);
        EXPECT_EQ(loaded.inputs()[i].kind, built.inputs()[i].kind);
        EXPECT_EQ(loaded.inputs()[i].sizeParam,
                  built.inputs()[i].sizeParam);
        EXPECT_EQ(loaded.inputs()[i].avgDegree,
                  built.inputs()[i].avgDegree);
        EXPECT_EQ(loaded.inputs()[i].seed, built.inputs()[i].seed);
    }

    ASSERT_EQ(loaded.tables().size(), built.tables().size());
    for (std::size_t t = 0; t < built.tables().size(); ++t) {
        const port::StrategyTable &a = built.tables()[t];
        const port::StrategyTable &b = loaded.tables()[t];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.spec.byApp, b.spec.byApp);
        EXPECT_EQ(a.spec.byInput, b.spec.byInput);
        EXPECT_EQ(a.spec.byChip, b.spec.byChip);
        EXPECT_EQ(a.geomeanVsOracle, b.geomeanVsOracle);
        EXPECT_EQ(a.configByPartition, b.configByPartition);
        EXPECT_EQ(a.slowdownByPartition, b.slowdownByPartition);
    }

    ASSERT_EQ(loaded.examples().size(), built.examples().size());
    for (std::size_t e = 0; e < built.examples().size(); ++e) {
        const serve::PredictorExample &a = built.examples()[e];
        const serve::PredictorExample &b = loaded.examples()[e];
        EXPECT_EQ(a.app, b.app);
        EXPECT_EQ(a.input, b.input);
        EXPECT_EQ(a.chip, b.chip);
        EXPECT_EQ(a.bestConfig, b.bestConfig);
        EXPECT_EQ(a.features, b.features);
    }
}

TEST(ServeIndex, SecondRoundTripIsByteIdentical)
{
    const std::string first = savedSnapshot();
    std::istringstream is(first);
    const serve::StrategyIndex loaded =
        serve::StrategyIndex::load(is);
    std::ostringstream os;
    loaded.save(os);
    EXPECT_EQ(os.str(), first);
}

TEST(ServeIndex, ForeignFileFailsWithBadMagic)
{
    std::istringstream is("hello,world\n1,2,3\n");
    try {
        serve::StrategyIndex::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ServeIndex, VersionMismatchNamesBothVersions)
{
    std::string text = savedSnapshot();
    const std::string header = "graphport-index,2";
    ASSERT_EQ(text.rfind(header, 0), 0u);
    text.replace(0, header.size(), "graphport-index,999");
    std::istringstream is(text);
    try {
        serve::StrategyIndex::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("format version 999"), std::string::npos)
            << what;
        EXPECT_NE(what.find("this build reads 2"), std::string::npos)
            << what;
        EXPECT_NE(what.find("rebuild the index"), std::string::npos)
            << what;
    }
}

TEST(ServeIndex, TruncatedSnapshotFails)
{
    std::string text = savedSnapshot();
    // Drop the trailing "end" marker and the last record.
    const std::size_t cut = text.rfind("example");
    ASSERT_NE(cut, std::string::npos);
    std::istringstream is(text.substr(0, cut));
    try {
        serve::StrategyIndex::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ServeIndex, OutOfRangeConfigFails)
{
    std::string text = savedSnapshot();
    // Corrupt the first partition record's config id.
    const std::size_t pos = text.find("\npartition,");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t line_end = text.find('\n', pos + 1);
    const std::string line =
        text.substr(pos + 1, line_end - pos - 1);
    // partition,<key>,<cfg>,<slowdown> -> force cfg = 9999.
    const std::size_t cfg_start = line.find(',', line.find(',') + 1);
    const std::size_t cfg_end = line.find(',', cfg_start + 1);
    std::string corrupt = line;
    corrupt.replace(cfg_start + 1, cfg_end - cfg_start - 1, "9999");
    text.replace(pos + 1, line.size(), corrupt);
    std::istringstream is(text);
    try {
        serve::StrategyIndex::load(is, "'test'");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ServeIndex, LoadFileMissingFails)
{
    EXPECT_THROW(serve::StrategyIndex::loadFile(
                     tempPath("no_such_index.gpi")),
                 FatalError);
}

TEST(ServeIndex, SaveFileLoadFileRoundTrip)
{
    const std::string path = tempPath("index_roundtrip.gpi");
    smallIndex().saveFile(path);
    const serve::StrategyIndex loaded =
        serve::StrategyIndex::loadFile(path);
    EXPECT_EQ(loaded.datasetHash(), smallIndex().datasetHash());
    std::remove(path.c_str());
}

TEST(ServeIndex, BuildOrLoadCachedReusesMatchingSnapshot)
{
    const std::string path = tempPath("index_cache.gpi");
    std::remove(path.c_str());
    const runner::Dataset &ds = testutil::smallDataset();
    // First call builds and writes the snapshot...
    const serve::StrategyIndex first =
        serve::StrategyIndex::buildOrLoadCached(ds, path);
    std::ifstream exists(path);
    EXPECT_TRUE(exists.good());
    // ...second call loads it and answers identically.
    const serve::StrategyIndex second =
        serve::StrategyIndex::buildOrLoadCached(ds, path);
    EXPECT_EQ(second.datasetHash(), first.datasetHash());
    EXPECT_EQ(second.predictiveGeomean(), first.predictiveGeomean());
    std::remove(path.c_str());
}

TEST(ServeIndex, BuildOrLoadCachedWarnsAndRebuildsOnCorruptFile)
{
    const std::string path = tempPath("index_corrupt.gpi");
    {
        std::ofstream out(path);
        out << "this is not an index\n";
    }
    const runner::Dataset &ds = testutil::smallDataset();
    ::testing::internal::CaptureStderr();
    const serve::StrategyIndex index =
        serve::StrategyIndex::buildOrLoadCached(ds, path);
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("rejected"), std::string::npos) << err;
    EXPECT_NE(err.find("rebuilding"), std::string::npos) << err;
    EXPECT_EQ(index.datasetHash(), ds.contentHash());
    // The rebuilt snapshot replaced the corrupt file.
    const serve::StrategyIndex reloaded =
        serve::StrategyIndex::loadFile(path);
    EXPECT_EQ(reloaded.datasetHash(), ds.contentHash());
    std::remove(path.c_str());
}

TEST(ServeIndex, BuildOrLoadCachedWarnsAndRebuildsOnHashMismatch)
{
    const std::string path = tempPath("index_stale.gpi");
    // A valid snapshot, but from a tampered-hash "other" dataset —
    // resealed so the whole-file checksum passes and the *semantic*
    // staleness guard is what rejects it.
    std::string text = savedSnapshot();
    const std::size_t pos = text.find("dataset_hash,");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t val = pos + std::string("dataset_hash,").size();
    text.replace(val, 16, "deadbeefdeadbeef");
    text = testutil::resealSnapshot(text);
    {
        std::ofstream out(path);
        out << text;
    }
    const runner::Dataset &ds = testutil::smallDataset();
    ::testing::internal::CaptureStderr();
    const serve::StrategyIndex index =
        serve::StrategyIndex::buildOrLoadCached(ds, path);
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("different dataset"), std::string::npos)
        << err;
    EXPECT_NE(err.find("rebuilding"), std::string::npos) << err;
    EXPECT_EQ(index.datasetHash(), ds.contentHash());
    std::remove(path.c_str());
}
