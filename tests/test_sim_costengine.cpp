/**
 * @file
 * Tests for the trace-driven cost engine: structural invariants over
 * the full (chip, config) space and the directional effects each
 * optimisation must have (paper Section V performance
 * considerations).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graphport/dsl/optconfig.hpp"
#include "graphport/dsl/trace.hpp"
#include "graphport/sim/chip.hpp"
#include "graphport/sim/costengine.hpp"

using namespace graphport;
using namespace graphport::sim;
using graphport::dsl::DegreeHist;
using graphport::dsl::FgMode;
using graphport::dsl::KernelLaunch;
using graphport::dsl::OptConfig;

namespace {

/** A skewed neighbour kernel (social-network flavour). */
KernelLaunch
skewedKernel(std::uint64_t items = 4096)
{
    KernelLaunch l;
    l.name = "skewed";
    l.items = items;
    l.hasNeighborLoop = true;
    l.randomAccess = true;
    std::uint64_t edges = 0;
    for (std::uint64_t i = 0; i < items; ++i) {
        const std::uint64_t d = (i % 100 == 0) ? 800 : 8;
        l.hist.add(d);
        edges += d;
    }
    l.edges = edges;
    return l;
}

/** A uniform neighbour kernel (road flavour). */
KernelLaunch
uniformKernel(std::uint64_t items = 4096, std::uint64_t deg = 4)
{
    KernelLaunch l;
    l.name = "uniform";
    l.items = items;
    l.hasNeighborLoop = true;
    l.randomAccess = true;
    for (std::uint64_t i = 0; i < items; ++i)
        l.hist.add(deg);
    l.edges = items * deg;
    return l;
}

/** A worklist kernel with contended pushes. */
KernelLaunch
pushKernel(std::uint64_t pushes)
{
    KernelLaunch l;
    l.name = "push";
    l.items = pushes;
    l.hasNeighborLoop = false;
    l.randomAccess = false;
    l.contendedPushes = pushes;
    return l;
}

dsl::AppTrace
tinyTrace(unsigned launches, bool host_sync)
{
    dsl::AppTrace trace;
    trace.app = "synthetic";
    trace.input = "synthetic";
    trace.hostIterations = launches;
    for (unsigned i = 0; i < launches; ++i) {
        KernelLaunch l = uniformKernel(256);
        l.iteration = i;
        l.hostSyncAfter = host_sync;
        trace.launches.push_back(l);
    }
    return trace;
}

} // namespace

/** Invariants that must hold for every chip and configuration. */
class EngineInvariantTest
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
  protected:
    const ChipModel &chip() const
    {
        return chipByName(std::get<0>(GetParam()));
    }
    OptConfig config() const
    {
        return OptConfig::decode(std::get<1>(GetParam()));
    }
};

TEST_P(EngineInvariantTest, TimesArePositiveAndFinite)
{
    const CostEngine engine(chip(), config());
    for (const KernelLaunch &l :
         {skewedKernel(), uniformKernel(), pushKernel(1000)}) {
        const KernelCost cost = engine.kernelCost(l);
        EXPECT_GT(cost.totalNs, 0.0);
        EXPECT_TRUE(std::isfinite(cost.totalNs));
        EXPECT_GE(cost.atomicNs, 0.0);
        EXPECT_GE(cost.computeNs, 0.0);
    }
}

TEST_P(EngineInvariantTest, MoreItemsNeverCheaper)
{
    const CostEngine engine(chip(), config());
    const double small = engine.kernelTimeNs(uniformKernel(512));
    const double large = engine.kernelTimeNs(uniformKernel(4096));
    EXPECT_LE(small, large * 1.0001);
}

TEST_P(EngineInvariantTest, EmptyKernelHasBaseCostOnly)
{
    const CostEngine engine(chip(), config());
    KernelLaunch l;
    l.items = 0;
    const KernelCost cost = engine.kernelCost(l);
    EXPECT_GT(cost.totalNs, 0.0);
    EXPECT_DOUBLE_EQ(cost.atomicNs, 0.0);
}

TEST_P(EngineInvariantTest, AppCostDecomposes)
{
    const CostEngine engine(chip(), config());
    const dsl::AppTrace trace = tinyTrace(5, true);
    const AppCost app = engine.appCost(trace);
    EXPECT_EQ(app.launches, 5u);
    EXPECT_NEAR(app.totalNs, app.kernelNs + app.overheadNs, 1e-6);
    EXPECT_GT(app.overheadNs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ChipConfigGrid, EngineInvariantTest,
    ::testing::Combine(
        ::testing::Values("M4000", "GTX1080", "HD5500", "IRIS", "R9",
                          "MALI"),
        ::testing::Values(0u, 1u, 2u, 5u, 17u, 40u, 61u, 95u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_cfg" +
               std::to_string(std::get<1>(info.param));
    });

TEST(EngineOitergb, ReplacesLaunchOverheadNotKernelTime)
{
    const ChipModel &chip = chipByName("R9");
    OptConfig oit;
    oit.oitergb = true;
    const CostEngine plain(chip, OptConfig::baseline());
    const CostEngine outlined(chip, oit);
    const KernelLaunch l = uniformKernel();
    EXPECT_DOUBLE_EQ(plain.kernelTimeNs(l),
                     outlined.kernelTimeNs(l));
    EXPECT_NE(plain.launchOverheadNs(l),
              outlined.launchOverheadNs(l));
}

TEST(EngineOitergb, HelpsHighOverheadChipsOnLaunchBoundApps)
{
    const dsl::AppTrace trace = tinyTrace(200, true);
    OptConfig oit;
    oit.oitergb = true;
    for (const char *name : {"HD5500", "IRIS", "R9", "MALI"}) {
        const ChipModel &chip = chipByName(name);
        const double base =
            CostEngine(chip, OptConfig::baseline()).appTimeNs(trace);
        const double outlined =
            CostEngine(chip, oit).appTimeNs(trace);
        EXPECT_LT(outlined, base) << name;
    }
}

TEST(EngineOitergb, DoesNotHelpNvidiaMuch)
{
    const dsl::AppTrace trace = tinyTrace(200, false);
    OptConfig oit;
    oit.oitergb = true;
    for (const char *name : {"M4000", "GTX1080"}) {
        const ChipModel &chip = chipByName(name);
        const double base =
            CostEngine(chip, OptConfig::baseline()).appTimeNs(trace);
        const double outlined =
            CostEngine(chip, oit).appTimeNs(trace);
        EXPECT_GT(outlined, base) << name;
    }
}

TEST(EngineCoopCv, ReducesAtomicsWhereDriverDoesNot)
{
    const KernelLaunch l = pushKernel(20000);
    OptConfig cc;
    cc.coopCv = true;
    const ChipModel &r9 = chipByName("R9");
    const double r9Base =
        CostEngine(r9, OptConfig::baseline()).kernelCost(l).atomicNs;
    const double r9Coop =
        CostEngine(r9, cc).kernelCost(l).atomicNs;
    EXPECT_LT(r9Coop, r9Base / 4.0);
}

TEST(EngineCoopCv, RedundantOnDriverCombiningChips)
{
    const KernelLaunch l = pushKernel(20000);
    OptConfig cc;
    cc.coopCv = true;
    const ChipModel &m4000 = chipByName("M4000");
    const double base =
        CostEngine(m4000, OptConfig::baseline()).kernelTimeNs(l);
    const double coop = CostEngine(m4000, cc).kernelTimeNs(l);
    EXPECT_GT(coop, base); // slight slowdown, never a win
    EXPECT_LT(coop, base * 1.5);
}

TEST(EngineCoopCv, NoEffectWithoutSubgroups)
{
    const KernelLaunch l = pushKernel(20000);
    OptConfig cc;
    cc.coopCv = true;
    const ChipModel &mali = chipByName("MALI");
    const double base =
        CostEngine(mali, OptConfig::baseline()).kernelCost(l).atomicNs;
    const double coop =
        CostEngine(mali, cc).kernelCost(l).atomicNs;
    // Subgroup size 1: atomic count cannot shrink.
    EXPECT_GE(coop, base);
}

TEST(EngineNp, Fg8BeatsSerialOnSkewedWork)
{
    OptConfig fg8;
    fg8.fg = FgMode::Fg8;
    for (const char *name : {"M4000", "R9", "HD5500"}) {
        const ChipModel &chip = chipByName(name);
        const double serial =
            CostEngine(chip, OptConfig::baseline())
                .kernelTimeNs(skewedKernel());
        const double fg =
            CostEngine(chip, fg8).kernelTimeNs(skewedKernel());
        EXPECT_LT(fg, serial) << name;
    }
}

TEST(EngineNp, Fg8CheaperThanFg1)
{
    OptConfig fg8, fg1;
    fg8.fg = FgMode::Fg8;
    fg1.fg = FgMode::Fg1;
    const ChipModel &chip = chipByName("HD5500");
    EXPECT_LT(CostEngine(chip, fg8).kernelTimeNs(skewedKernel()),
              CostEngine(chip, fg1).kernelTimeNs(skewedKernel()));
}

TEST(EngineNp, WgIsPureOverheadOnUniformWork)
{
    OptConfig wg;
    wg.wg = true;
    // Compute-bound kernel so the queue-drain overhead is not hidden
    // behind the DRAM bandwidth floor.
    KernelLaunch l = uniformKernel(4096, 8);
    l.computePerEdge = 60.0;
    for (const char *name : {"M4000", "IRIS", "MALI"}) {
        const ChipModel &chip = chipByName(name);
        const double serial =
            CostEngine(chip, OptConfig::baseline()).kernelTimeNs(l);
        const double withWg =
            CostEngine(chip, wg).kernelTimeNs(l);
        EXPECT_GT(withWg, serial) << name;
    }
}

TEST(EngineSg, CuresDivergenceOnMali)
{
    // The Section VIII-c story: sg helps MALI even with subgroup
    // size 1, through its phase-separating barriers.
    OptConfig sg;
    sg.sg = true;
    const ChipModel &mali = chipByName("MALI");
    const double serial =
        CostEngine(mali, OptConfig::baseline())
            .kernelTimeNs(skewedKernel());
    const double withSg =
        CostEngine(mali, sg).kernelTimeNs(skewedKernel());
    EXPECT_LT(withSg, serial * 0.7);
}

TEST(EngineSz256, CostsOccupancyOnIntegratedChips)
{
    OptConfig sz;
    sz.sz256 = true;
    for (const char *name : {"HD5500", "IRIS", "MALI"}) {
        const ChipModel &chip = chipByName(name);
        const double base =
            CostEngine(chip, OptConfig::baseline())
                .kernelTimeNs(uniformKernel(16384, 8));
        const double at256 =
            CostEngine(chip, sz).kernelTimeNs(uniformKernel(16384, 8));
        EXPECT_GT(at256, base) << name;
    }
}

TEST(EngineNoise, DeterministicPerSeedAndCentred)
{
    const ChipModel &chip = chipByName("R9");
    const dsl::AppTrace trace = tinyTrace(10, true);
    const double a =
        measureAppRunNs(chip, OptConfig::baseline(), trace, 42);
    const double b =
        measureAppRunNs(chip, OptConfig::baseline(), trace, 42);
    EXPECT_DOUBLE_EQ(a, b);
    const double c =
        measureAppRunNs(chip, OptConfig::baseline(), trace, 43);
    EXPECT_NE(a, c);

    const double det =
        CostEngine(chip, OptConfig::baseline()).appTimeNs(trace);
    // Noise is multiplicative and small: within 30% of the
    // deterministic value.
    EXPECT_NEAR(a / det, 1.0, 0.3);
}

TEST(EngineNoise, ZeroSigmaIsExact)
{
    EXPECT_DOUBLE_EQ(noisyTimeNs(1234.5, 0.0, 99), 1234.5);
}

TEST(EngineDivergence, GratuitousBarriersMitigate)
{
    KernelLaunch l = uniformKernel(4096, 64);
    l.divergenceSpread = 3.0;
    KernelLaunch barriered = l;
    barriered.gratuitousBarriers = true;
    const ChipModel &mali = chipByName("MALI");
    const CostEngine engine(mali, OptConfig::baseline());
    EXPECT_LT(engine.kernelTimeNs(barriered),
              engine.kernelTimeNs(l) / 2.0);
}

TEST(EngineWorkgroupSize, ClampedToChipMaximum)
{
    OptConfig sz;
    sz.sz256 = true;
    for (const ChipModel &chip : allChips()) {
        const CostEngine engine(chip, sz);
        EXPECT_LE(engine.workgroupSize(), chip.maxWorkgroupSize);
    }
}
