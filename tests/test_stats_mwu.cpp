/**
 * @file
 * Tests for the Mann-Whitney U test, against hand-computed reference
 * values and structural invariants (the paper's analysis depends on
 * this test being right).
 */
#include <gtest/gtest.h>

#include "graphport/stats/mwu.hpp"
#include "graphport/support/rng.hpp"

using namespace graphport;
using namespace graphport::stats;

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
    EXPECT_NEAR(normalCdf(-5.0), 0.0, 1e-6);
}

TEST(Mwu, FullySeparatedSmallSample)
{
    // a = {1,2,3}, b = {4,5,6}: U_A = 0 (a never beats b),
    // mean U = 4.5, var = 5.25, z = (0 - 4.5 + 0.5)/sqrt(5.25).
    const MwuResult r = mannWhitneyU({1, 2, 3}, {4, 5, 6});
    EXPECT_DOUBLE_EQ(r.uA, 0.0);
    EXPECT_DOUBLE_EQ(r.uB, 9.0);
    EXPECT_DOUBLE_EQ(r.clEffectSize, 1.0); // P(a < b) = 1
    EXPECT_NEAR(r.z, -1.7457, 1e-3);
    EXPECT_NEAR(r.p, 0.0809, 1e-3);
    EXPECT_FALSE(r.significant());
}

TEST(Mwu, LargerSeparatedSampleIsSignificant)
{
    std::vector<double> a, b;
    for (int i = 0; i < 20; ++i) {
        a.push_back(i);        // 0..19
        b.push_back(100 + i);  // 100..119
    }
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_TRUE(r.significant());
    EXPECT_LT(r.p, 1e-6);
    EXPECT_DOUBLE_EQ(r.clEffectSize, 1.0);
}

TEST(Mwu, IdenticalConstantSamplesNotSignificant)
{
    const std::vector<double> a(10, 1.0);
    const std::vector<double> b(10, 1.0);
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_DOUBLE_EQ(r.p, 1.0);
    EXPECT_DOUBLE_EQ(r.clEffectSize, 0.5);
    EXPECT_FALSE(r.significant());
}

TEST(Mwu, EmptyGroupsAreDegenerate)
{
    EXPECT_FALSE(mannWhitneyU({}, {1.0}).significant());
    EXPECT_FALSE(mannWhitneyU({1.0}, {}).significant());
    EXPECT_FALSE(mannWhitneyU({}, {}).significant());
}

TEST(Mwu, PaperShapeRatiosAgainstOnes)
{
    // The Algorithm 1 shape: A holds normalised runtimes, B all 1.0.
    // Clear speedups (ratios < 1) must reject the null with
    // clEffectSize near 1 (P(A < B) high).
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 30; ++i) {
        a.push_back(0.5 + 0.01 * i); // 0.5..0.79
        b.push_back(1.0);
    }
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_TRUE(r.significant());
    EXPECT_GT(r.clEffectSize, 0.95);
}

TEST(Mwu, MixedRatiosNotSignificant)
{
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 30; ++i) {
        a.push_back(i % 2 == 0 ? 0.9 : 1.1);
        b.push_back(1.0);
    }
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_FALSE(r.significant());
    EXPECT_NEAR(r.clEffectSize, 0.5, 0.05);
}

TEST(Mwu, HandlesHeavyTies)
{
    // Half of A ties with B's constant value.
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 40; ++i) {
        a.push_back(i % 2 == 0 ? 1.0 : 0.8);
        b.push_back(1.0);
    }
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_GT(r.clEffectSize, 0.5);
    EXPECT_TRUE(r.significant());
}

TEST(Mwu, SymmetryOfGroups)
{
    const std::vector<double> a{1.0, 3.0, 5.0, 7.0};
    const std::vector<double> b{2.0, 4.0, 6.0};
    const MwuResult ab = mannWhitneyU(a, b);
    const MwuResult ba = mannWhitneyU(b, a);
    EXPECT_DOUBLE_EQ(ab.uA, ba.uB);
    EXPECT_DOUBLE_EQ(ab.uB, ba.uA);
    EXPECT_NEAR(ab.p, ba.p, 1e-12);
    EXPECT_NEAR(ab.clEffectSize, 1.0 - ba.clEffectSize, 1e-12);
}

/** Parameterized invariants over random inputs. */
class MwuPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(MwuPropertyTest, StructuralInvariants)
{
    Rng rng(GetParam());
    const std::size_t nA = 5 + rng.nextBelow(50);
    const std::size_t nB = 5 + rng.nextBelow(50);
    std::vector<double> a, b;
    for (std::size_t i = 0; i < nA; ++i)
        a.push_back(rng.nextDouble() * 2.0);
    for (std::size_t i = 0; i < nB; ++i)
        b.push_back(rng.nextDouble() * 2.0);
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_NEAR(r.uA + r.uB, static_cast<double>(nA * nB), 1e-9);
    EXPECT_GE(r.p, 0.0);
    EXPECT_LE(r.p, 1.0);
    EXPECT_GE(r.clEffectSize, 0.0);
    EXPECT_LE(r.clEffectSize, 1.0);
    EXPECT_LE(r.z, 0.0); // z of min(U) with continuity correction
}

TEST_P(MwuPropertyTest, SameDistributionRarelySignificant)
{
    // Under the null, p < 0.05 should be rare; with a handful of
    // seeds we just check it is not systematically significant.
    Rng rng(GetParam() * 7919 + 1);
    std::vector<double> a, b;
    for (int i = 0; i < 40; ++i) {
        a.push_back(rng.nextGaussian());
        b.push_back(rng.nextGaussian());
    }
    const MwuResult r = mannWhitneyU(a, b);
    EXPECT_GT(r.p, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwuPropertyTest,
                         ::testing::Range(1, 13));
