/**
 * @file
 * Tests for DIMACS and edge-list graph I/O.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graphport/graph/generators.hpp"
#include "graphport/graph/io.hpp"
#include "graphport/support/error.hpp"
#include "testutil.hpp"

using namespace graphport;
using namespace graphport::graph;

TEST(DimacsRead, ParsesSmallGraph)
{
    std::stringstream ss("c a comment\n"
                         "p sp 3 2\n"
                         "a 1 2 5\n"
                         "a 2 3 7\n");
    const Csr g = io::readDimacs(ss, "tiny");
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 4u); // symmetrised
    EXPECT_EQ(g.name(), "tiny");
    EXPECT_EQ(g.edgeWeights(0)[0], 5u);
}

TEST(DimacsRead, IgnoresCommentsAndBlankLines)
{
    std::stringstream ss("c header\n\n"
                         "p sp 2 1\n"
                         "c mid comment\n"
                         "a 1 2 3\n\n");
    EXPECT_EQ(io::readDimacs(ss).numEdges(), 2u);
}

TEST(DimacsRead, RejectsMalformedInput)
{
    {
        std::stringstream ss("a 1 2 3\n"); // arc before header
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
    {
        std::stringstream ss("p sp 2 1\np sp 2 1\na 1 2 1\n");
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
    {
        std::stringstream ss("p max 2 1\na 1 2 1\n"); // wrong kind
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
    {
        std::stringstream ss("p sp 2 1\na 1 5 1\n"); // out of range
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
    {
        std::stringstream ss("p sp 2 2\na 1 2 1\n"); // count mismatch
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
    {
        std::stringstream ss("x what\n");
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
    {
        std::stringstream ss(""); // empty file
        EXPECT_THROW(io::readDimacs(ss), FatalError);
    }
}

TEST(DimacsRoundTrip, PreservesStructure)
{
    const Csr original = gen::roadGrid(8, 8, 0.01, 5);
    std::stringstream ss;
    io::writeDimacs(ss, original);
    const Csr loaded = io::readDimacs(ss, original.name());
    EXPECT_EQ(loaded.rowStarts(), original.rowStarts());
    EXPECT_EQ(loaded.columns(), original.columns());
    for (NodeId u = 0; u < original.numNodes(); ++u) {
        const auto a = original.edgeWeights(u);
        const auto b = loaded.edgeWeights(u);
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]);
    }
}

TEST(EdgeListRead, ParsesWithAndWithoutWeights)
{
    std::stringstream ss("# comment\n"
                         "0 1 4\n"
                         "1 2\n");
    const Csr g = io::readEdgeList(ss, "el");
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.edgeWeights(0)[0], 4u);
    EXPECT_EQ(g.edgeWeights(2)[0], 1u); // defaulted weight
}

TEST(EdgeListRead, InfersNodeCount)
{
    std::stringstream ss("0 9\n");
    EXPECT_EQ(io::readEdgeList(ss).numNodes(), 10u);
}

TEST(EdgeListRead, RejectsGarbage)
{
    {
        std::stringstream ss("not numbers\n");
        EXPECT_THROW(io::readEdgeList(ss), FatalError);
    }
    {
        std::stringstream ss("");
        EXPECT_THROW(io::readEdgeList(ss), FatalError);
    }
    {
        std::stringstream ss("1 2 3x\n");
        EXPECT_THROW(io::readEdgeList(ss), FatalError);
    }
}

TEST(EdgeListRoundTrip, PreservesStructure)
{
    const Csr original = gen::rmat(7, 6.0, 9);
    std::stringstream ss;
    io::writeEdgeList(ss, original);
    const Csr loaded = io::readEdgeList(ss, original.name());
    // Node count can shrink if the top ids are isolated; compare
    // edges instead.
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    for (NodeId u = 0; u < loaded.numNodes(); ++u) {
        const auto a = original.neighbors(u);
        const auto b = loaded.neighbors(u);
        ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
                  std::vector<NodeId>(b.begin(), b.end()));
    }
}

TEST(LoadFile, DispatchesOnExtensionAndNamesByStem)
{
    const Csr g = testutil::triangle();
    {
        std::ofstream out("/tmp/graphport_test.gr");
        io::writeDimacs(out, g);
    }
    const Csr viaDimacs = io::loadFile("/tmp/graphport_test.gr");
    EXPECT_EQ(viaDimacs.name(), "graphport_test");
    EXPECT_EQ(viaDimacs.numEdges(), g.numEdges());

    {
        std::ofstream out("/tmp/graphport_test.el");
        io::writeEdgeList(out, g);
    }
    const Csr viaEl = io::loadFile("/tmp/graphport_test.el");
    EXPECT_EQ(viaEl.numEdges(), g.numEdges());
}

TEST(LoadFile, MissingFileIsFatal)
{
    EXPECT_THROW(io::loadFile("/nonexistent/nope.gr"), FatalError);
}

TEST(IoGraphsRunThroughApps, LoadedGraphIsUsable)
{
    // End-to-end: a round-tripped graph feeds an application.
    const Csr original = gen::roadGrid(10, 10, 0.0, 4);
    std::stringstream ss;
    io::writeDimacs(ss, original);
    const Csr loaded = io::readDimacs(ss, "road-file");
    loaded.validate();
    EXPECT_EQ(loaded.numNodes(), original.numNodes());
}
